"""Phase timers with a zero-overhead-when-disabled switch.

The harvesting hot paths (selection loops, split preparation, sweep cells)
are exactly the code whose cost we want to measure, so the instrumentation
must cost nothing when profiling is off.  The contract every instrumented
site follows::

    from repro import perf

    rec = perf.recorder()          # None unless profiling is enabled
    if rec is not None:
        with rec.phase("split-prepare", split=index):
            ...                     # timed
    else:
        ...                         # identical code, untimed

    # or, for code that already measured a duration itself:
    if rec is not None:
        rec.record("selection", elapsed, method=name)

When disabled (the default), the only overhead is one module-global read
and a ``None`` check — no object allocation, no dictionary work, no clock
call.  Profiling is enabled explicitly with :func:`enable` (optionally
passing a recorder to collect into) or ambiently with the ``REPRO_PERF``
environment variable, which the CLI and benchmark entry points honour.

Samples are wall-clock (``time.perf_counter``) phase durations with
optional metadata, aggregated per phase name.  A recorder is process-local,
but worker processes are not a blind spot: a worker with an active recorder
ships per-phase ``{count, total_seconds}`` aggregates home with each batch
outcome (see :func:`repro.eval.runner.execute_harvest_batch`), and the
orchestrator folds them into its recorder as aggregate samples
(:meth:`PerfRecorder.record_aggregate`) tagged with the worker pid.  Worker
seconds remain worker CPU time — they are *summed alongside*, never
conflated with, orchestrator wall-clock dispatch phases.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional


@dataclass(frozen=True)
class PhaseSample:
    """One timed phase: name, elapsed seconds, optional metadata.

    ``count`` is how many phase occurrences this sample stands for:
    1 for a directly timed phase, more for an aggregate folded in from a
    worker process — ``seconds`` is then the summed duration of all of
    them.  Aggregation (:meth:`PerfRecorder.count` / ``mean``) weights by
    ``count`` so folded-in samples contribute exactly like their original
    per-occurrence samples would have.
    """

    name: str
    seconds: float
    meta: tuple = ()
    count: int = 1

    def meta_dict(self) -> Dict[str, object]:
        """Metadata as a plain dict (stored as items for hashability)."""
        return dict(self.meta)


class Timer:
    """Context manager timing one phase into a recorder.

    Returned by :meth:`PerfRecorder.phase`; usable standalone as a plain
    stopwatch (``Timer(None, "x")`` records nowhere but still measures).
    """

    __slots__ = ("_recorder", "name", "meta", "elapsed", "_start")

    def __init__(self, recorder: Optional["PerfRecorder"], name: str,
                 **meta: object) -> None:
        self._recorder = recorder
        self.name = name
        self.meta = meta
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self._recorder is not None:
            self._recorder.record(self.name, self.elapsed, **self.meta)


class PerfRecorder:
    """Collects named phase durations and aggregates them per phase.

    Instances are cheap and independent; the module-level switch
    (:func:`enable` / :func:`recorder`) only decides whether hot paths
    *reach* a shared one.  Code that always wants timings (e.g. the
    Fig. 14 efficiency measurement) constructs its own recorder and passes
    it around explicitly.
    """

    def __init__(self) -> None:
        self.samples: List[PhaseSample] = []

    # -- Recording ----------------------------------------------------------
    def phase(self, name: str, **meta: object) -> Timer:
        """A context manager timing one phase into this recorder."""
        return Timer(self, name, **meta)

    def record(self, name: str, seconds: float, **meta: object) -> None:
        """Record one already-measured phase duration."""
        self.samples.append(PhaseSample(name=name, seconds=float(seconds),
                                        meta=tuple(sorted(meta.items()))))

    def record_aggregate(self, name: str, total_seconds: float, count: int,
                         **meta: object) -> None:
        """Record ``count`` phase occurrences totalling ``total_seconds``.

        This is how worker-side timings cross a process boundary: the
        worker's per-phase aggregate becomes one weighted sample here, and
        :meth:`count` / :meth:`mean` treat it as ``count`` occurrences.
        """
        if count <= 0:
            return
        self.samples.append(PhaseSample(name=name, seconds=float(total_seconds),
                                        meta=tuple(sorted(meta.items())),
                                        count=int(count)))

    def record_aggregates(self, aggregates: Dict[str, Dict[str, float]],
                          **meta: object) -> None:
        """Fold an :meth:`aggregates_since`-shaped mapping in, one sample
        per phase name (e.g. the ``perf_phases`` a batch outcome shipped
        home)."""
        for name in sorted(aggregates):
            entry = aggregates[name]
            self.record_aggregate(name, float(entry["total_seconds"]),
                                  int(entry["count"]), **meta)

    # -- Aggregation --------------------------------------------------------
    def mark(self) -> int:
        """A position marker for :meth:`aggregates_since` (samples so far)."""
        return len(self.samples)

    def aggregates_since(self, mark: int = 0) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{count, total_seconds}`` over samples from ``mark`` on.

        The plain-data shape that travels across process boundaries; feed
        it to :meth:`record_aggregates` on the receiving recorder.
        """
        aggregates: Dict[str, Dict[str, float]] = {}
        for sample in self.samples[mark:]:
            entry = aggregates.setdefault(
                sample.name, {"count": 0, "total_seconds": 0.0})
            entry["count"] += sample.count
            entry["total_seconds"] += sample.seconds
        return aggregates

    def count(self, name: str) -> int:
        """Number of phase occurrences recorded for ``name``."""
        return sum(s.count for s in self.samples if s.name == name)

    def total(self, name: str) -> float:
        """Summed seconds of all samples for ``name``."""
        return sum(s.seconds for s in self.samples if s.name == name)

    def mean(self, name: str) -> float:
        """Mean seconds per phase occurrence for ``name`` (0.0 if none)."""
        seconds = 0.0
        occurrences = 0
        for sample in self.samples:
            if sample.name == name:
                seconds += sample.seconds
                occurrences += sample.count
        return seconds / occurrences if occurrences else 0.0

    def phases(self) -> List[str]:
        """Recorded phase names, sorted."""
        return sorted({s.name for s in self.samples})

    def samples_for(self, name: str) -> List[PhaseSample]:
        """All samples of one phase, in recording order."""
        return [s for s in self.samples if s.name == name]

    def as_dict(self) -> Dict[str, object]:
        """A plain-JSON aggregate: per-phase count / total / mean seconds."""
        return {
            "phases": {
                name: {
                    "count": self.count(name),
                    "total_seconds": self.total(name),
                    "mean_seconds": self.mean(name),
                }
                for name in self.phases()
            },
        }

    def write(self, path) -> Path:
        """Write the aggregate report as JSON and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
        return path

    def clear(self) -> None:
        """Drop all recorded samples."""
        self.samples.clear()


#: The module-global recorder; ``None`` means profiling is off and every
#: instrumented site skips its bookkeeping entirely.
_RECORDER: Optional[PerfRecorder] = None

#: Environment variable that enables ambient profiling ("", "0" = off).
PERF_ENV_VAR = "REPRO_PERF"

if os.environ.get(PERF_ENV_VAR, "") not in ("", "0"):
    _RECORDER = PerfRecorder()


def recorder() -> Optional[PerfRecorder]:
    """The active global recorder, or ``None`` when profiling is disabled.

    This is the hot-path check: one global read, one ``None`` compare.
    """
    return _RECORDER


def enable(target: Optional[PerfRecorder] = None) -> PerfRecorder:
    """Enable global profiling, collecting into ``target`` (or a fresh one)."""
    global _RECORDER
    _RECORDER = target if target is not None else PerfRecorder()
    return _RECORDER


def disable() -> None:
    """Disable global profiling (instrumented sites go back to zero cost)."""
    global _RECORDER
    _RECORDER = None


def is_enabled() -> bool:
    """Whether a global recorder is active."""
    return _RECORDER is not None
