"""Unified performance subsystem: phase timers, manifest, reports.

Three layers, each usable on its own:

* :mod:`repro.perf.timer` — a :class:`PerfRecorder` that collects named
  phase durations (``harvest``, ``selection``, ``sweep-cell``,
  ``split-prepare``) behind a zero-overhead-when-disabled module switch.
  Hot paths call :func:`recorder`, get ``None`` unless profiling was
  explicitly enabled (:func:`enable` or the ``REPRO_PERF`` environment
  variable), and skip all bookkeeping otherwise.
* :mod:`repro.perf.manifest` — one schema over every
  ``benchmarks/results/BENCH_*.json`` artifact: versions, scale, backend,
  wall-clock, pages/sec, speedup-vs-serial.  Deterministic given the
  artifact files, so CI regenerates the committed ``BENCH_manifest.json``
  byte-identically.
* :mod:`repro.perf.report` — human-readable renderings: per-backend
  speedup tables and deltas vs the committed manifest (the
  ``repro.cli perf report`` command).
"""

from repro.perf.manifest import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    build_manifest,
    load_manifest,
    manifest_entries,
    render_manifest_json,
    throughput_entries,
    write_manifest,
)
from repro.perf.report import format_manifest, format_manifest_delta
from repro.perf.timer import (
    PerfRecorder,
    PhaseSample,
    Timer,
    disable,
    enable,
    is_enabled,
    recorder,
)

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "PerfRecorder",
    "PhaseSample",
    "Timer",
    "build_manifest",
    "disable",
    "enable",
    "format_manifest",
    "format_manifest_delta",
    "is_enabled",
    "load_manifest",
    "manifest_entries",
    "recorder",
    "render_manifest_json",
    "throughput_entries",
    "write_manifest",
]
