"""Human-readable renderings of the perf manifest.

Backs ``repro.cli perf report``: a per-backend speedup table over the
manifest's throughput entries, and a delta table comparing a freshly built
manifest against the committed one (the same comparison the CI perf gate
makes, minus the exit code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.perf.manifest import throughput_entries


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [max(len(str(cell)) for cell in column)
              for column in zip(*([headers] + rows))]
    lines = ["  ".join(str(cell).ljust(width)
                       for cell, width in zip(row, widths))
             for row in [headers, ["-" * w for w in widths]] + rows]
    return "\n".join(lines)


def _fmt(value: Optional[float], pattern: str = "{:.2f}") -> str:
    return pattern.format(value) if value is not None else "-"


def format_manifest(manifest: Dict[str, object]) -> str:
    """Per-backend speedup table plus an index of the other entries."""
    sections: List[str] = [f"Perf manifest ({manifest.get('schema')})"]

    backends = throughput_entries(manifest)
    if backends:
        rows = [[key,
                 str(entry.get("scale")),
                 _fmt(entry.get("wall_seconds"), "{:.3f}"),
                 _fmt(entry.get("pages_per_second"), "{:.1f}"),
                 _fmt(entry.get("speedup_vs_serial"), "{:.2f}x"),
                 str(entry.get("metrics", {}).get("workers", "-"))]
                for key, entry in sorted(backends.items())]
        sections.append(_format_table(
            ["Benchmark/backend", "Scale", "Wall s", "Pages/s", "Speedup",
             "Workers"], rows))

    serving = [entry for entry in manifest.get("entries", [])
               if entry.get("benchmark") == "serving"]
    if serving:
        rows = []
        for entry in sorted(serving, key=lambda e: str(e.get("backend"))):
            metrics = entry.get("metrics", {})
            rows.append([
                str(entry.get("backend")),
                _fmt(entry.get("pages_per_second"), "{:.1f}"),
                _fmt(entry.get("speedup_vs_serial"), "{:.2f}x"),
                _fmt(metrics.get("session_latency_p50"), "{:.3f}"),
                _fmt(metrics.get("session_latency_p99"), "{:.3f}"),
                str(metrics.get("retries", "-")),
                str(metrics.get("timeouts", "-")),
                str(metrics.get("exhausted_requests", "-")),
            ])
        sections.append("Serving (simulated search service; latencies are "
                        "deterministic simulated seconds)\n" + _format_table(
                            ["Concurrency", "Sessions/s", "Speedup",
                             "p50 lat s", "p99 lat s", "Retries", "Timeouts",
                             "Exhausted"], rows))

    others = [entry for entry in manifest.get("entries", [])
              if entry.get("kind") != "backend-throughput"]
    if others:
        rows = [[entry["source"], entry["kind"],
                 str(entry.get("scale")),
                 str(entry.get("method") or "-"),
                 _fmt(entry.get("wall_seconds"), "{:.4f}")]
                for entry in others]
        sections.append(_format_table(
            ["Source", "Kind", "Scale", "Method", "Wall s"], rows))

    return "\n\n".join(sections)


@dataclass(frozen=True)
class ThroughputDelta:
    """One backend's fresh-vs-committed pages/sec comparison.

    ``change`` is the relative change (positive = faster), or ``None``
    when either side has no usable throughput number.  ``collapsed`` marks
    the pathological case the perf gate must treat as a regression: the
    committed baseline had real throughput but the fresh run reports none
    (``None`` or ``0.0`` pages/sec — a backend that gathered nothing).
    """

    key: str
    committed: Optional[float]
    fresh: Optional[float]
    change: Optional[float]
    collapsed: bool


def throughput_deltas(fresh: Dict[str, object],
                      committed: Dict[str, object]
                      ) -> Tuple[List[ThroughputDelta], List[str], List[str]]:
    """Compare two manifests' throughput entries.

    Returns ``(deltas, new_keys, missing_keys)``: one delta per shared
    backend, plus the backends only the fresh / only the committed
    manifest knows.  The single comparison both the CLI report and the CI
    gate consume, so their semantics cannot diverge.
    """
    fresh_entries = throughput_entries(fresh)
    committed_entries = throughput_entries(committed)
    deltas = []
    for key in sorted(set(fresh_entries) & set(committed_entries)):
        before = committed_entries[key].get("pages_per_second")
        now = fresh_entries[key].get("pages_per_second")
        if before and now:
            deltas.append(ThroughputDelta(key=key, committed=before, fresh=now,
                                          change=(now - before) / before,
                                          collapsed=False))
        else:
            deltas.append(ThroughputDelta(key=key, committed=before, fresh=now,
                                          change=None,
                                          collapsed=bool(before) and not now))
    new_keys = sorted(set(fresh_entries) - set(committed_entries))
    missing_keys = sorted(set(committed_entries) - set(fresh_entries))
    return deltas, new_keys, missing_keys


def format_manifest_delta(fresh: Dict[str, object],
                          committed: Dict[str, object]) -> str:
    """Throughput deltas of a fresh manifest vs the committed baseline.

    Positive change = faster than the committed trajectory.  Entries only
    one side knows are listed, not compared.
    """
    deltas, new_keys, missing_keys = throughput_deltas(fresh, committed)
    rows = [[d.key, _fmt(d.committed, "{:.1f}"), _fmt(d.fresh, "{:.1f}"),
             f"{d.change:+.1%}" if d.change is not None else "-"]
            for d in deltas]
    lines = []
    if rows:
        lines.append(_format_table(
            ["Benchmark/backend", "Committed pages/s", "Fresh pages/s",
             "Change"], rows))
    else:
        lines.append("no throughput entries shared with the baseline")
    for key in new_keys:
        lines.append(f"note: {key} is new (no committed baseline)")
    for key in missing_keys:
        lines.append(f"note: {key} disappeared from the fresh manifest")
    return "\n".join(lines)
