"""One schema over every committed benchmark artifact.

``benchmarks/results/`` accumulates one ``BENCH_*.json`` per benchmark
family, each with its own ad-hoc layout (per-backend throughput, per-method
selection latency, robustness matrices).  The *manifest* folds them all
into a single machine-readable index — ``BENCH_manifest.json`` — with one
flat entry list under one schema:

``source``
    The artifact file the entry was extracted from.
``benchmark`` / ``kind``
    Benchmark family (``harvest``, ``selection``, ``scenarios`` ...) and
    entry kind (``backend-throughput``, ``selection-latency``,
    ``robustness-matrix``, ``unclassified``).
``scale`` / ``backend`` / ``method``
    Where the number came from (``backend``/``method`` are ``None`` where
    not applicable).
``versions``
    Toolchain versions recorded *in the artifact* (never the regenerating
    interpreter's — the manifest must be a pure function of the files).
``wall_seconds`` / ``pages_per_second`` / ``speedup_vs_serial``
    The unified performance axis; ``None`` where the artifact has no
    wall-clock dimension (robustness matrices are deliberately
    wall-clock-free).
``metrics``
    Whatever else the family reports, carried through untruncated.

Determinism is the design constraint: :func:`build_manifest` reads files
and emits sorted JSON — no timestamps, no environment probes — so CI can
regenerate the committed manifest and ``git diff --exit-code`` it as a
freshness gate.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

#: Identifier of the manifest layout (bump on breaking changes).
MANIFEST_SCHEMA = "BENCH_manifest/v1"

#: Canonical file name of the committed manifest.
MANIFEST_NAME = "BENCH_manifest.json"

KIND_BACKEND_THROUGHPUT = "backend-throughput"
KIND_SELECTION_LATENCY = "selection-latency"
KIND_ROBUSTNESS_MATRIX = "robustness-matrix"
KIND_CAMPAIGN_RUN = "campaign-run"
KIND_UNCLASSIFIED = "unclassified"


def _entry(source: str, benchmark: str, kind: str,
           scale: Optional[str] = None, backend: Optional[str] = None,
           method: Optional[str] = None,
           versions: Optional[Dict[str, str]] = None,
           wall_seconds: Optional[float] = None,
           pages_per_second: Optional[float] = None,
           speedup_vs_serial: Optional[float] = None,
           metrics: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """One manifest entry with every unified field present (None-padded)."""
    return {
        "source": source,
        "benchmark": benchmark,
        "kind": kind,
        "scale": scale,
        "backend": backend,
        "method": method,
        "versions": versions or {},
        "wall_seconds": wall_seconds,
        "pages_per_second": pages_per_second,
        "speedup_vs_serial": speedup_vs_serial,
        "metrics": metrics or {},
    }


def _harvest_entries(source: str, report: Dict[str, object]) -> List[Dict[str, object]]:
    """Per-backend throughput entries from ``BENCH_harvest.json``."""
    versions = {"python": report.get("python")}
    preparation = report.get("preparation", {})
    entries = []
    for backend in sorted(report.get("backends", {})):
        stats = report["backends"][backend]
        metrics = {
            "jobs": report.get("jobs"),
            "jobs_per_second": stats.get("jobs_per_second"),
            "pages_gathered": stats.get("pages_gathered"),
            "workers": report.get("workers"),
        }
        if backend in preparation:
            # Corpus-store preparation cost (attach vs rebuild seconds per
            # worker pool, publish cost, attach probes) rides along
            # untruncated for the backends that measured it — as does the
            # classifier train-vs-attach section measured on that backend.
            metrics["preparation"] = preparation[backend]
            if backend == "process" and "classifier" in preparation:
                metrics["classifier_preparation"] = preparation["classifier"]
        entries.append(_entry(
            source=source,
            benchmark="harvest",
            kind=KIND_BACKEND_THROUGHPUT,
            scale=report.get("scale"),
            backend=backend,
            versions=versions,
            wall_seconds=stats.get("wall_seconds"),
            pages_per_second=stats.get("pages_per_second"),
            speedup_vs_serial=stats.get("speedup_vs_serial"),
            metrics=metrics,
        ))
    return entries


def _fig09_entries(source: str, report: Dict[str, object]) -> List[Dict[str, object]]:
    """Classifier-throughput entries from ``BENCH_fig09.json``.

    Three entries per domain — suite training, the batched page-scoring
    kernel, and its scalar oracle — on the unified throughput axis
    (``pages_per_second`` carries paragraphs/second here).
    """
    versions = {"python": report.get("python"),
                "numpy": report.get("numpy"),
                "scipy": report.get("scipy")}
    entries = []
    for domain in sorted(report.get("domains", {})):
        stats = report["domains"][domain]
        metrics = {
            "paragraphs": stats.get("paragraphs"),
            "scored_paragraph_assessments":
                stats.get("scored_paragraph_assessments"),
            "mean_accuracy": stats.get("mean_accuracy"),
        }
        for backend, seconds_key, rate_key, speedup in (
                ("train", "train_seconds",
                 "train_paragraphs_per_second", None),
                ("batched", "batched_score_seconds",
                 "batched_paragraphs_per_second",
                 stats.get("speedup_vs_scalar")),
                ("scalar", "scalar_score_seconds",
                 "scalar_paragraphs_per_second", None)):
            entries.append(_entry(
                source=source,
                benchmark="fig09",
                kind=KIND_BACKEND_THROUGHPUT,
                scale=report.get("scale"),
                backend=f"{domain}/{backend}",
                versions=versions,
                wall_seconds=stats.get(seconds_key),
                pages_per_second=stats.get(rate_key),
                speedup_vs_serial=speedup,
                metrics=metrics,
            ))
    return entries


def _selection_entries(source: str, report: Dict[str, object]) -> List[Dict[str, object]]:
    """Per-method selection-latency entries from ``BENCH_selection.json``."""
    versions = {"python": report.get("python"),
                "numpy": report.get("numpy"),
                "scipy": report.get("scipy")}
    entries = []
    for method in sorted(report.get("methods", {})):
        stats = report["methods"][method]
        entries.append(_entry(
            source=source,
            benchmark="selection",
            kind=KIND_SELECTION_LATENCY,
            scale=report.get("scale"),
            method=method,
            versions=versions,
            wall_seconds=stats.get("mean_selection_seconds"),
            metrics={
                "cache_hit_rate": report.get("cache_hit_rate"),
                "queries_measured": stats.get("queries_measured"),
                "selection_queries_per_second":
                    stats.get("selection_queries_per_second"),
                "selection_to_fetch_ratio":
                    stats.get("selection_to_fetch_ratio"),
            },
        ))
    return entries


def _serving_entries(source: str, report: Dict[str, object]) -> List[Dict[str, object]]:
    """Per-concurrency serving-throughput entries from ``BENCH_serving.json``.

    ``pages_per_second`` carries sessions/second here — the serving
    workload's unit of work is a whole harvest session — so the serving
    levels ride the same gated throughput axis as every other backend.
    The deterministic metrics block (latency percentiles from *simulated*
    clocks, retry/timeout counts) travels untruncated in ``metrics``;
    only the wall-clock block feeds the unified timing fields.
    """
    versions = {"python": report.get("python")}
    speedups = report.get("speedup_vs_baseline", {})
    entries = []
    for level in sorted(report.get("concurrency", {}), key=int):
        stats = report["concurrency"][level]
        wall = stats.get("wall_clock", {})
        metrics = dict(stats.get("metrics", {}))
        metrics.update({
            "sessions": report.get("sessions"),
            "client": report.get("client", {}).get("kind"),
            "time_scale": report.get("time_scale"),
        })
        entries.append(_entry(
            source=source,
            benchmark="serving",
            kind=KIND_BACKEND_THROUGHPUT,
            scale=report.get("scale"),
            backend=f"concurrency-{level}",
            versions=versions,
            wall_seconds=wall.get("wall_seconds"),
            pages_per_second=wall.get("sessions_per_second"),
            speedup_vs_serial=speedups.get(level),
            metrics=metrics,
        ))
    return entries


def _scenario_entries(source: str, report: Dict[str, object]) -> List[Dict[str, object]]:
    """One robustness-matrix entry per scenario-matrix artifact.

    These artifacts are deliberately wall-clock-free (byte-for-byte
    reproducible), so the unified timing fields stay ``None``; the summary
    deltas ride along as metrics.
    """
    benchmark = Path(source).stem.replace("BENCH_", "")
    return [_entry(
        source=source,
        benchmark=benchmark,
        kind=KIND_ROBUSTNESS_MATRIX,
        scale=report.get("scale"),
        metrics={
            "schema": report.get("schema"),
            "methods": report.get("methods"),
            "scenarios": report.get("scenarios"),
            "summary": report.get("summary"),
        },
    )]


def _campaign_entries(source: str, report: Dict[str, object]) -> List[Dict[str, object]]:
    """One campaign-run entry per ``BENCH_campaign*.json`` artifact.

    Campaign summaries carry checkpoint/resume counters (cells total /
    skipped / executed / remaining, journal anomalies) plus the
    campaign-level perf phase aggregates when profiling was on.  The
    unified timing fields stay ``None`` — the resume ledger, not a
    throughput number, is the signal here; phase wall-clock rides along
    in ``metrics``.
    """
    return [_entry(
        source=source,
        benchmark=Path(source).stem.replace("BENCH_", ""),
        kind=KIND_CAMPAIGN_RUN,
        scale=report.get("scale"),
        backend=report.get("backend"),
        versions={},
        metrics={
            "campaign": report.get("campaign"),
            "workers": report.get("workers"),
            "domains": report.get("domains"),
            "scenarios": report.get("scenarios"),
            "methods": report.get("methods"),
            "seeds": report.get("seeds"),
            "cells": report.get("cells"),
            "journal": report.get("journal"),
            "complete": report.get("complete"),
            "phases": report.get("phases"),
        },
    )]


def _unclassified_entry(source: str, report: object) -> List[Dict[str, object]]:
    """Forward-compatible fallback for artifact families this version
    predates: the manifest indexes them without interpreting them."""
    metrics: Dict[str, object] = {}
    if isinstance(report, dict):
        metrics = {"schema": report.get("schema"),
                   "top_level_keys": sorted(report)}
    return [_entry(source=source,
                   benchmark=Path(source).stem.replace("BENCH_", ""),
                   kind=KIND_UNCLASSIFIED,
                   scale=report.get("scale") if isinstance(report, dict) else None,
                   metrics=metrics)]


def manifest_entries(results_dir) -> List[Dict[str, object]]:
    """Extract unified entries from every ``BENCH_*.json`` in a directory.

    Files are visited in sorted order and the manifest itself is skipped,
    so the entry list is a deterministic function of the artifact files.
    """
    results_dir = Path(results_dir)
    entries: List[Dict[str, object]] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if path.name == MANIFEST_NAME:
            continue
        report = json.loads(path.read_text(encoding="utf-8"))
        if path.name == "BENCH_harvest.json":
            entries.extend(_harvest_entries(path.name, report))
        elif path.name == "BENCH_fig09.json":
            entries.extend(_fig09_entries(path.name, report))
        elif path.name == "BENCH_selection.json":
            entries.extend(_selection_entries(path.name, report))
        elif path.name == "BENCH_serving.json":
            entries.extend(_serving_entries(path.name, report))
        elif isinstance(report, dict) and \
                str(report.get("schema", "")).startswith("BENCH_scenarios/"):
            entries.extend(_scenario_entries(path.name, report))
        elif isinstance(report, dict) and \
                str(report.get("schema", "")).startswith("BENCH_campaign/"):
            entries.extend(_campaign_entries(path.name, report))
        else:
            entries.extend(_unclassified_entry(path.name, report))
    return entries


def campaigns_block(entries: List[Dict[str, object]]) -> Dict[str, object]:
    """The ``campaigns`` block: resume ledgers keyed by campaign name.

    One compact record per campaign-run entry, so checkpoint/resume
    health (cells skipped vs executed, journal anomalies, completion) is
    readable straight off the manifest without digging through entries.
    """
    campaigns: Dict[str, object] = {}
    for entry in entries:
        if entry.get("kind") != KIND_CAMPAIGN_RUN:
            continue
        metrics = entry.get("metrics", {})
        name = metrics.get("campaign") or entry["benchmark"]
        campaigns[str(name)] = {
            "source": entry["source"],
            "scale": entry.get("scale"),
            "backend": entry.get("backend"),
            "cells": metrics.get("cells"),
            "journal": metrics.get("journal"),
            "complete": metrics.get("complete"),
        }
    return campaigns


def build_manifest(results_dir) -> Dict[str, object]:
    """The full manifest document for one results directory."""
    entries = manifest_entries(results_dir)
    return {
        "schema": MANIFEST_SCHEMA,
        "entries": entries,
        "sources": sorted({entry["source"] for entry in entries}),
        "campaigns": campaigns_block(entries),
    }


def render_manifest_json(manifest: Dict[str, object]) -> str:
    """Canonical JSON text (sorted keys, trailing newline)."""
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def write_manifest(results_dir, output=None) -> Path:
    """Build and write the manifest; returns the written path.

    ``output`` defaults to ``<results_dir>/BENCH_manifest.json``.
    """
    results_dir = Path(results_dir)
    output = Path(output) if output is not None else results_dir / MANIFEST_NAME
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(render_manifest_json(build_manifest(results_dir)),
                      encoding="utf-8")
    return output


def load_manifest(path) -> Dict[str, object]:
    """Read a manifest document from disk."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def throughput_entries(manifest: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    """Backend-throughput entries keyed ``benchmark/backend``.

    The view the perf gate and the delta report compare on: only these
    entries carry a meaningful ``pages_per_second``.
    """
    out: Dict[str, Dict[str, object]] = {}
    for entry in manifest.get("entries", []):
        if entry.get("kind") == KIND_BACKEND_THROUGHPUT:
            out[f"{entry['benchmark']}/{entry['backend']}"] = entry
    return out
