"""repro — a reproduction of "Learning to Query: Focused Web Page Harvesting
for Entity Aspects" (Fang, Zheng, Chang; ICDE 2016).

The package is organised as:

* :mod:`repro.corpus` — offline web-corpus substrate (documents, domains,
  knowledge base, synthetic generation);
* :mod:`repro.search` — search-engine substrate (inverted index, Dirichlet
  language model, BM25, entity-scoped engine);
* :mod:`repro.aspects` — per-aspect paragraph classifiers and relevance
  functions ``Y``;
* :mod:`repro.graph` — page/query/template reinforcement graph and the
  random-walk utility solver;
* :mod:`repro.core` — the paper's contribution: utility inference,
  domain-aware templates, context-aware collective utilities, the query
  selection strategies and the harvesting loop;
* :mod:`repro.baselines` — LM, AQ, HR, MQ and the ideal (oracle) strategy;
* :mod:`repro.eval` — evaluation metrics, splits, the experiment runner,
  one entry point per paper figure, and the scenario robustness sweep;
* :mod:`repro.scenarios` — hostile-corpus scenarios: deterministic corpus
  perturbations behind a declarative spec + registry.

Quickstart::

    from repro import build_corpus, ExperimentRunner

    corpus = build_corpus("researcher", num_entities=30, pages_per_entity=10)
    runner = ExperimentRunner(corpus)
    series = runner.evaluate_methods(["L2QBAL", "MQ"], num_queries_list=(3,),
                                     max_test_entities=2,
                                     aspects=corpus.aspects[:2])
    print(series["L2QBAL"].f_score)
"""

from repro.aspects import AspectClassifierSuite, ClassifierRelevance, OracleRelevance
from repro.core import (
    DomainModel,
    DomainPhase,
    EntityPhase,
    HarvestResult,
    Harvester,
    L2QConfig,
    make_selector,
    selector_names,
)
from repro.corpus import Corpus, CorpusConfig, CorpusGenerator, build_corpus, get_domain
from repro.eval import (
    ExperimentRunner,
    ExperimentScale,
    ScenarioSweep,
    compute_metrics,
    headline_summary,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_scenario_sweep,
)
from repro.scenarios import ScenarioSpec, make_scenario, register_scenario, scenario_names
from repro.search import SearchEngine

__version__ = "1.0.0"

__all__ = [
    "AspectClassifierSuite",
    "ClassifierRelevance",
    "Corpus",
    "CorpusConfig",
    "CorpusGenerator",
    "DomainModel",
    "DomainPhase",
    "EntityPhase",
    "ExperimentRunner",
    "ExperimentScale",
    "HarvestResult",
    "Harvester",
    "L2QConfig",
    "OracleRelevance",
    "ScenarioSpec",
    "ScenarioSweep",
    "SearchEngine",
    "__version__",
    "build_corpus",
    "compute_metrics",
    "get_domain",
    "headline_summary",
    "make_scenario",
    "make_selector",
    "register_scenario",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_scenario_sweep",
    "scenario_names",
    "selector_names",
]
