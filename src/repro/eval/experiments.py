"""One entry point per table / figure of the paper's evaluation (Sect. VI).

Every ``run_figNN`` function regenerates the corresponding experiment:

* Fig. 9  — tested aspects, paragraph frequency and aspect-classifier accuracy;
* Fig. 10 — validation of domain and context awareness (strategy ladder);
* Fig. 11 — effect of domain size on the full approaches;
* Fig. 12 — precision and recall vs. number of queries against baselines;
* Fig. 13 — F-score of the balanced strategy against baselines;
* Fig. 14 — per-query selection time vs. fetch time.

Experiments accept an :class:`ExperimentScale`, so the same code runs at a
laptop-friendly smoke scale, the default benchmark scale, or the paper's
full scale (996 researchers / 143 cars, 10 repeated splits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aspects.classifier import AspectAccuracy, AspectClassifierSuite
from repro.core.config import L2QConfig
from repro.corpus.corpus import Corpus
from repro.corpus.synthetic import BaseCorpus, build_base, build_corpus
from repro.eval.metrics import MetricSeries, relative_improvement
from repro.eval.runner import EfficiencyReport, ExperimentRunner
from repro.exec.backends import ExecutionBackend
from repro.exec.specs import CorpusSpec

#: Backend argument accepted by the harvesting experiments: a registered
#: backend name, a ready instance, or None for the workers-based default.
BackendArg = Union[None, str, ExecutionBackend]

DOMAINS = ("researcher", "car")

#: Methods compared in Fig. 10 (precision panel / recall panel).
FIG10_PRECISION_METHODS = ("RND", "P", "P+q", "P+t", "L2QP")
FIG10_RECALL_METHODS = ("RND", "R", "R+q", "R+t", "L2QR")
#: Methods compared in Fig. 12 and Fig. 13.
FIG12_METHODS = ("L2QP", "L2QR", "LM", "AQ", "HR", "MQ")
FIG13_METHODS = ("L2QBAL", "LM", "AQ", "HR", "MQ")
#: Domain fractions swept in Fig. 11.
FIG11_FRACTIONS = (0.0, 0.05, 0.10, 0.25, 1.0)


@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment run should be."""

    name: str
    num_entities: Dict[str, int]
    pages_per_entity: int
    num_splits: int
    max_test_entities: Optional[int]
    max_aspects: Optional[int]
    num_queries_list: Tuple[int, ...]
    corpus_seed: int = 7

    def corpus_for(self, domain: str, scenario=None) -> Corpus:
        """Build the synthetic corpus of one domain at this scale.

        ``scenario`` is an optional :class:`~repro.scenarios.ScenarioSpec`;
        when given, its perturbation pipeline and config overrides are
        applied at this scale's sizes and seed (same seed ⇒ byte-identical
        corpus, clean or perturbed).
        """
        if scenario is not None:
            return scenario.corpus_for(domain,
                                       num_entities=self.num_entities[domain],
                                       pages_per_entity=self.pages_per_entity,
                                       seed=self.corpus_seed)
        return build_corpus(domain=domain,
                            num_entities=self.num_entities[domain],
                            pages_per_entity=self.pages_per_entity,
                            seed=self.corpus_seed)

    def base_corpus_for(self, domain: str) -> BaseCorpus:
        """Generate the shareable base corpus of one domain at this scale.

        Scenario pipelines realise against this base byte-identically to a
        full generation (perturbation RNGs are label-derived), so callers
        evaluating many scenarios per domain pay base generation once.
        """
        return build_base(domain=domain,
                          num_entities=self.num_entities[domain],
                          pages_per_entity=self.pages_per_entity,
                          seed=self.corpus_seed)

    def corpus_spec_for(self, domain: str, scenario=None) -> CorpusSpec:
        """The picklable spec a worker process rebuilds this corpus from."""
        return CorpusSpec(domain=domain,
                          num_entities=self.num_entities[domain],
                          pages_per_entity=self.pages_per_entity,
                          seed=self.corpus_seed,
                          scenario=scenario)

    def aspects_for(self, corpus: Corpus) -> List[str]:
        """The aspects evaluated at this scale (possibly a prefix)."""
        aspects = list(corpus.aspects)
        if self.max_aspects is not None:
            aspects = aspects[: self.max_aspects]
        return aspects


#: Tiny scale for unit tests and quick smoke runs.
SMOKE_SCALE = ExperimentScale(
    name="smoke",
    num_entities={"researcher": 20, "car": 16},
    pages_per_entity=10,
    num_splits=1,
    max_test_entities=2,
    max_aspects=2,
    num_queries_list=(2, 3),
)

#: Default benchmark scale: every figure regenerates in minutes on a laptop.
DEFAULT_SCALE = ExperimentScale(
    name="default",
    num_entities={"researcher": 24, "car": 20},
    pages_per_entity=16,
    num_splits=1,
    max_test_entities=3,
    max_aspects=4,
    num_queries_list=(2, 3, 4, 5),
    corpus_seed=3,
)

#: The paper's scale (for completeness; hours of compute).
PAPER_SCALE = ExperimentScale(
    name="paper",
    num_entities={"researcher": 996, "car": 143},
    pages_per_entity=50,
    num_splits=10,
    max_test_entities=None,
    max_aspects=None,
    num_queries_list=(2, 3, 4, 5),
)

_SCALES = {scale.name: scale for scale in (SMOKE_SCALE, DEFAULT_SCALE, PAPER_SCALE)}


def get_scale(name: str) -> ExperimentScale:
    """Look up a named scale preset."""
    try:
        return _SCALES[name]
    except KeyError as exc:
        raise KeyError(f"unknown scale {name!r}; available: {sorted(_SCALES)}") from exc


# ---------------------------------------------------------------------------
# Fig. 9 — aspects and classifier accuracy
# ---------------------------------------------------------------------------

@dataclass
class Fig9Result:
    """Per-domain aspect-classifier accuracy table."""

    rows_by_domain: Dict[str, List[AspectAccuracy]]

    def accuracy(self, domain: str, aspect: str) -> float:
        """Accuracy of one aspect's classifier."""
        for row in self.rows_by_domain[domain]:
            if row.aspect == aspect:
                return row.accuracy
        raise KeyError(f"aspect {aspect!r} not found for domain {domain!r}")

    def mean_accuracy(self, domain: str) -> float:
        """Mean classifier accuracy over the domain's aspects."""
        rows = self.rows_by_domain[domain]
        return sum(r.accuracy for r in rows) / len(rows) if rows else 0.0


def run_fig09(scale: ExperimentScale = DEFAULT_SCALE,
              domains: Sequence[str] = DOMAINS) -> Fig9Result:
    """Train the per-aspect classifiers and report frequency + accuracy."""
    rows: Dict[str, List[AspectAccuracy]] = {}
    for domain in domains:
        corpus = scale.corpus_for(domain)
        suite = AspectClassifierSuite.train_on_corpus(corpus)
        rows[domain] = suite.accuracy_report()
    return Fig9Result(rows_by_domain=rows)


# ---------------------------------------------------------------------------
# Fig. 10 — validation of domain and context awareness
# ---------------------------------------------------------------------------

@dataclass
class Fig10Result:
    """Normalised precision / recall of the strategy ladder per domain."""

    precision_by_domain: Dict[str, Dict[str, float]]
    recall_by_domain: Dict[str, Dict[str, float]]
    num_queries: int


def run_fig10(scale: ExperimentScale = DEFAULT_SCALE,
              domains: Sequence[str] = DOMAINS,
              config: Optional[L2QConfig] = None,
              num_queries: int = 3,
              workers: int = 1,
              backend: BackendArg = None,
              corpus_store: str = "auto") -> Fig10Result:
    """Compare {RND, P, P+q, P+t, L2QP} on precision and the recall ladder on recall."""
    precision_results: Dict[str, Dict[str, float]] = {}
    recall_results: Dict[str, Dict[str, float]] = {}
    for domain in domains:
        corpus = scale.corpus_for(domain)
        runner = ExperimentRunner(corpus, config=config, workers=workers,
                                  backend=backend,
                                  corpus_spec=scale.corpus_spec_for(domain),
                                  corpus_store=corpus_store)
        aspects = scale.aspects_for(corpus)
        methods = sorted(set(FIG10_PRECISION_METHODS) | set(FIG10_RECALL_METHODS))
        try:
            series = runner.evaluate_methods(
                methods, num_queries_list=(num_queries,),
                num_splits=scale.num_splits,
                max_test_entities=scale.max_test_entities,
                aspects=aspects,
            )
        finally:
            runner.release_store()
        precision_results[domain] = {
            m: series[m].precision[num_queries] for m in FIG10_PRECISION_METHODS
        }
        recall_results[domain] = {
            m: series[m].recall[num_queries] for m in FIG10_RECALL_METHODS
        }
    return Fig10Result(precision_by_domain=precision_results,
                       recall_by_domain=recall_results,
                       num_queries=num_queries)


# ---------------------------------------------------------------------------
# Fig. 11 — effect of domain size
# ---------------------------------------------------------------------------

@dataclass
class Fig11Result:
    """Precision of L2QP and recall of L2QR as the domain fraction grows."""

    precision_by_domain: Dict[str, Dict[float, float]]
    recall_by_domain: Dict[str, Dict[float, float]]
    fractions: Tuple[float, ...]


def run_fig11(scale: ExperimentScale = DEFAULT_SCALE,
              domains: Sequence[str] = DOMAINS,
              fractions: Sequence[float] = FIG11_FRACTIONS,
              config: Optional[L2QConfig] = None,
              num_queries: int = 3,
              workers: int = 1,
              backend: BackendArg = None,
              corpus_store: str = "auto") -> Fig11Result:
    """Sweep the fraction of domain entities available to the domain phase."""
    precision_results: Dict[str, Dict[float, float]] = {}
    recall_results: Dict[str, Dict[float, float]] = {}
    for domain in domains:
        corpus = scale.corpus_for(domain)
        runner = ExperimentRunner(corpus, config=config, workers=workers,
                                  backend=backend,
                                  corpus_spec=scale.corpus_spec_for(domain),
                                  corpus_store=corpus_store)
        aspects = scale.aspects_for(corpus)
        precision_results[domain] = {}
        recall_results[domain] = {}
        try:
            for fraction in fractions:
                series = runner.evaluate_methods(
                    ("L2QP", "L2QR"), num_queries_list=(num_queries,),
                    num_splits=scale.num_splits,
                    domain_fraction=fraction,
                    max_test_entities=scale.max_test_entities,
                    aspects=aspects,
                )
                precision_results[domain][fraction] = series["L2QP"].precision[num_queries]
                recall_results[domain][fraction] = series["L2QR"].recall[num_queries]
        finally:
            runner.release_store()
    return Fig11Result(precision_by_domain=precision_results,
                       recall_by_domain=recall_results,
                       fractions=tuple(fractions))


# ---------------------------------------------------------------------------
# Fig. 12 / Fig. 13 — comparison against the baselines
# ---------------------------------------------------------------------------

@dataclass
class ComparisonResult:
    """Per-domain metric series of several methods over query budgets."""

    series_by_domain: Dict[str, Dict[str, MetricSeries]]
    num_queries_list: Tuple[int, ...]

    def series(self, domain: str, method: str) -> MetricSeries:
        """The metric series of one method in one domain."""
        return self.series_by_domain[domain][method]

    def to_json_dict(self) -> Dict[str, object]:
        """A plain-JSON rendering (string budget keys, sorted domains).

        Used by the golden-snapshot regression test: the rendering is fully
        deterministic, so two runs at the same scale must compare equal.
        """
        return {
            "num_queries_list": list(self.num_queries_list),
            "series_by_domain": {
                domain: {
                    method: {
                        "precision": {str(k): v for k, v in sorted(s.precision.items())},
                        "recall": {str(k): v for k, v in sorted(s.recall.items())},
                        "f_score": {str(k): v for k, v in sorted(s.f_score.items())},
                    }
                    for method, s in sorted(series.items())
                }
                for domain, series in sorted(self.series_by_domain.items())
            },
        }

    def mean_over_domains(self, method: str, metric: str = "f_score") -> float:
        """Average of a method's mean metric over all domains."""
        values = []
        for domain_series in self.series_by_domain.values():
            series = domain_series[method]
            values.append({"precision": series.mean_precision(),
                           "recall": series.mean_recall(),
                           "f_score": series.mean_f_score()}[metric])
        return sum(values) / len(values) if values else 0.0


def _run_comparison(methods: Sequence[str], scale: ExperimentScale,
                    domains: Sequence[str], config: Optional[L2QConfig],
                    workers: int = 1,
                    backend: BackendArg = None,
                    corpus_store: str = "auto") -> ComparisonResult:
    series_by_domain: Dict[str, Dict[str, MetricSeries]] = {}
    for domain in domains:
        corpus = scale.corpus_for(domain)
        runner = ExperimentRunner(corpus, config=config, workers=workers,
                                  backend=backend,
                                  corpus_spec=scale.corpus_spec_for(domain),
                                  corpus_store=corpus_store)
        aspects = scale.aspects_for(corpus)
        try:
            series_by_domain[domain] = runner.evaluate_methods(
                methods, num_queries_list=scale.num_queries_list,
                num_splits=scale.num_splits,
                max_test_entities=scale.max_test_entities,
                aspects=aspects,
            )
        finally:
            runner.release_store()
    return ComparisonResult(series_by_domain=series_by_domain,
                            num_queries_list=tuple(scale.num_queries_list))


def run_fig12(scale: ExperimentScale = DEFAULT_SCALE,
              domains: Sequence[str] = DOMAINS,
              config: Optional[L2QConfig] = None,
              workers: int = 1,
              backend: BackendArg = None,
              corpus_store: str = "auto") -> ComparisonResult:
    """Precision and recall of L2QP / L2QR vs LM, AQ, HR, MQ (Fig. 12)."""
    return _run_comparison(FIG12_METHODS, scale, domains, config,
                           workers=workers, backend=backend,
                           corpus_store=corpus_store)


def run_fig13(scale: ExperimentScale = DEFAULT_SCALE,
              domains: Sequence[str] = DOMAINS,
              config: Optional[L2QConfig] = None,
              workers: int = 1,
              backend: BackendArg = None,
              corpus_store: str = "auto") -> ComparisonResult:
    """F-score of the balanced strategy L2QBAL vs the baselines (Fig. 13)."""
    return _run_comparison(FIG13_METHODS, scale, domains, config,
                           workers=workers, backend=backend,
                           corpus_store=corpus_store)


@dataclass
class HeadlineSummary:
    """The paper's headline claim: F-score gains of L2QBAL over the baselines."""

    l2qbal_f_score: float
    best_algorithmic_baseline: str
    best_algorithmic_f_score: float
    manual_f_score: float
    improvement_over_algorithmic: float
    improvement_over_manual: float


def headline_summary(result: ComparisonResult,
                     algorithmic_baselines: Sequence[str] = ("LM", "AQ", "HR"),
                     manual_baseline: str = "MQ") -> HeadlineSummary:
    """Summarise Fig. 13 into the paper's headline improvement percentages."""
    l2qbal = result.mean_over_domains("L2QBAL", "f_score")
    baseline_scores = {m: result.mean_over_domains(m, "f_score")
                       for m in algorithmic_baselines}
    best_baseline = max(baseline_scores, key=lambda m: baseline_scores[m])
    manual = result.mean_over_domains(manual_baseline, "f_score")
    return HeadlineSummary(
        l2qbal_f_score=l2qbal,
        best_algorithmic_baseline=best_baseline,
        best_algorithmic_f_score=baseline_scores[best_baseline],
        manual_f_score=manual,
        improvement_over_algorithmic=relative_improvement(l2qbal, baseline_scores[best_baseline]),
        improvement_over_manual=relative_improvement(l2qbal, manual),
    )


# ---------------------------------------------------------------------------
# Fig. 14 — efficiency
# ---------------------------------------------------------------------------

@dataclass
class Fig14Result:
    """Per-domain selection vs fetch time (seconds per query)."""

    reports_by_domain: Dict[str, EfficiencyReport]


def run_fig14(scale: ExperimentScale = DEFAULT_SCALE,
              domains: Sequence[str] = DOMAINS,
              config: Optional[L2QConfig] = None,
              methods: Sequence[str] = ("L2QP", "L2QR", "L2QBAL"),
              workers: int = 1) -> Fig14Result:
    """Measure the per-query selection time of the full approaches."""
    reports: Dict[str, EfficiencyReport] = {}
    for domain in domains:
        corpus = scale.corpus_for(domain)
        runner = ExperimentRunner(corpus, config=config, workers=workers)
        aspects = scale.aspects_for(corpus)[:2]
        reports[domain] = runner.measure_efficiency(
            methods=methods, num_queries=3,
            max_test_entities=min(scale.max_test_entities or 2, 2),
            aspects=aspects,
        )
    return Fig14Result(reports_by_domain=reports)
