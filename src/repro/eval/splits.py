"""Entity splits for the evaluation protocol.

Sect. VI-A: *"In each domain, we randomly reserved half of the entities as
domain entities, and the remaining as target entities ... Target entities
were further divided into two equal splits, such that one of the splits is
reserved for parameter validation, and the other for testing.  We repeated
the split randomly for 10 times."*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.utils.rng import SeededRandom


@dataclass(frozen=True)
class EntitySplit:
    """One random split of the entities of a domain."""

    domain_entities: tuple
    validation_entities: tuple
    test_entities: tuple
    seed: int

    def all_target_entities(self) -> List[str]:
        """Validation plus test entities."""
        return list(self.validation_entities) + list(self.test_entities)

    def __post_init__(self) -> None:
        overlap = (set(self.domain_entities) & set(self.validation_entities)
                   | set(self.domain_entities) & set(self.test_entities)
                   | set(self.validation_entities) & set(self.test_entities))
        if overlap:
            raise ValueError(f"entity splits overlap: {sorted(overlap)}")


def split_entities(entity_ids: Sequence[str], seed: int = 0,
                   domain_fraction: float = 0.5) -> EntitySplit:
    """Split entities into domain / validation / test sets.

    ``domain_fraction`` of the entities become domain entities; the rest is
    divided equally into validation and test.
    """
    if not entity_ids:
        raise ValueError("cannot split an empty entity collection")
    if not 0.0 <= domain_fraction < 1.0:
        raise ValueError("domain_fraction must be in [0, 1)")
    rng = SeededRandom(seed).spawn("entity-split")
    shuffled = rng.shuffled(sorted(entity_ids))
    num_domain = int(round(len(shuffled) * domain_fraction))
    num_domain = min(num_domain, len(shuffled) - 2) if len(shuffled) > 2 else num_domain
    domain = shuffled[:num_domain]
    remaining = shuffled[num_domain:]
    half = len(remaining) // 2
    validation = remaining[:half]
    test = remaining[half:]
    return EntitySplit(
        domain_entities=tuple(sorted(domain)),
        validation_entities=tuple(sorted(validation)),
        test_entities=tuple(sorted(test)),
        seed=seed,
    )


def repeated_splits(entity_ids: Sequence[str], num_repeats: int = 10,
                    base_seed: int = 0, domain_fraction: float = 0.5) -> List[EntitySplit]:
    """The paper's repeated random splits (10 by default)."""
    if num_repeats < 1:
        raise ValueError("num_repeats must be >= 1")
    return [split_entities(entity_ids, seed=base_seed + i, domain_fraction=domain_fraction)
            for i in range(num_repeats)]


def subsample_entities(entity_ids: Sequence[str], fraction: float,
                       seed: int = 0) -> List[str]:
    """Deterministically subsample a fraction of entities (used by Fig. 11)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(entity_ids)
    if fraction >= 1.0:
        return ordered
    count = int(round(len(ordered) * fraction))
    if fraction > 0.0 and count == 0:
        count = 1
    rng = SeededRandom(seed).spawn("domain-subsample", fraction)
    return sorted(rng.sample(ordered, count))
