"""Evaluation metrics: precision, recall, F-score and ideal-normalisation.

The paper evaluates the cumulatively gathered pages of each (entity, aspect)
pair by their actual precision and recall w.r.t. the ground truth, then
normalises both against an *ideal* solution so that results are comparable
across entities of different difficulty (Sect. VI-A, *Evaluation
methodology*).  The same normalisation factor is applied to every method for
a given entity, so relative comparisons are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set


@dataclass(frozen=True)
class HarvestMetrics:
    """Precision / recall / F-score of one gathered page set."""

    precision: float
    recall: float

    @property
    def f_score(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall <= 0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)

    def normalized_by(self, ideal: "HarvestMetrics",
                      cap: Optional[float] = 1.0) -> "HarvestMetrics":
        """Normalise against an ideal upper bound (component-wise ratio).

        When the ideal component is 0 the normalised value is defined as 1.0
        if this metric is also 0 (both achieved nothing achievable) and 1.0
        otherwise capped — in practice the ideal is never 0 when relevant
        pages exist.  ``cap`` bounds the ratio (the ideal is greedy, so a
        method can occasionally edge past it on one component).
        """
        precision = _safe_ratio(self.precision, ideal.precision)
        recall = _safe_ratio(self.recall, ideal.recall)
        if cap is not None:
            precision = min(precision, cap)
            recall = min(recall, cap)
        return HarvestMetrics(precision=precision, recall=recall)


def _safe_ratio(value: float, reference: float) -> float:
    if reference <= 0:
        return 1.0 if value <= 0 else 1.0
    return value / reference


def compute_metrics(gathered_page_ids: Iterable[str],
                    relevant_page_ids: Iterable[str]) -> HarvestMetrics:
    """Actual precision and recall of a gathered page set."""
    gathered: Set[str] = set(gathered_page_ids)
    relevant: Set[str] = set(relevant_page_ids)
    if not gathered:
        return HarvestMetrics(precision=0.0, recall=0.0)
    hits = len(gathered & relevant)
    precision = hits / len(gathered)
    recall = hits / len(relevant) if relevant else 0.0
    return HarvestMetrics(precision=precision, recall=recall)


def average_metrics(metrics: Sequence[HarvestMetrics]) -> HarvestMetrics:
    """Component-wise mean of a collection of metrics (zero if empty)."""
    if not metrics:
        return HarvestMetrics(precision=0.0, recall=0.0)
    precision = sum(m.precision for m in metrics) / len(metrics)
    recall = sum(m.recall for m in metrics) / len(metrics)
    return HarvestMetrics(precision=precision, recall=recall)


def average_f_score(metrics: Sequence[HarvestMetrics]) -> float:
    """Mean F-score of a collection of metrics."""
    if not metrics:
        return 0.0
    return sum(m.f_score for m in metrics) / len(metrics)


@dataclass
class MetricSeries:
    """Normalised metrics of one method across query budgets (one figure line)."""

    method: str
    precision: Dict[int, float]
    recall: Dict[int, float]
    f_score: Dict[int, float]

    def budgets(self) -> List[int]:
        """Query budgets present in the series, sorted."""
        return sorted(self.precision)

    def mean_precision(self) -> float:
        """Average precision over all budgets."""
        return _mean(self.precision.values())

    def mean_recall(self) -> float:
        """Average recall over all budgets."""
        return _mean(self.recall.values())

    def mean_f_score(self) -> float:
        """Average F-score over all budgets."""
        return _mean(self.f_score.values())


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def relative_improvement(value: float, reference: float) -> float:
    """Relative improvement of ``value`` over ``reference`` (0 when reference is 0)."""
    if reference <= 0:
        return 0.0
    return (value - reference) / reference
