"""Robustness sweep: selectors × scenarios → F-score deltas vs clean.

The paper's comparisons run on clean synthetic corpora only.
:class:`ScenarioSweep` re-runs the evaluation protocol under every requested
scenario (see :mod:`repro.scenarios`) and reports, per domain and per
method, how far the ideal-normalised precision / recall / F-score move from
the clean baseline.  The output is a machine-readable *robustness matrix*
(``BENCH_scenarios.json``) that successive PRs can diff.

Everything in the result is deterministic: corpora are seeded, harvest
seeds derive from ``(base_seed, split, method, entity, aspect)``, and no
wall-clock values are recorded — so the same seed reproduces the JSON
byte-for-byte (the acceptance bar for the scenario subsystem).  Each
corpus's :meth:`~repro.corpus.corpus.Corpus.content_digest` is embedded so
a drifting corpus generator is distinguishable from a drifting selector.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.config import L2QConfig
from repro.core.selection import selector_names
from repro.corpus.corpus import Corpus
from repro.eval.experiments import DOMAINS, SMOKE_SCALE, ExperimentScale
from repro.eval.runner import BASELINE_METHODS, ExperimentRunner
from repro.scenarios import ScenarioSpec, make_scenario, scenario_names

#: Selectors swept by default: the paper's three full approaches.
DEFAULT_SWEEP_METHODS = ("L2QP", "L2QR", "L2QBAL")

#: Identifier of the serialisation layout (bump on breaking changes).
SCHEMA = "BENCH_scenarios/v1"


@dataclass
class ScenarioCell:
    """One (domain, scenario) cell of the robustness matrix."""

    scenario: str
    description: str
    corpus_digest: str
    metrics: Dict[str, Dict[str, float]]
    f_delta: Dict[str, float]


@dataclass
class ScenarioSweepResult:
    """The full robustness matrix plus everything needed to reproduce it."""

    scale: str
    seed: int
    num_queries: int
    methods: List[str]
    scenarios: List[str]
    clean_by_domain: Dict[str, Dict[str, object]] = field(default_factory=dict)
    cells_by_domain: Dict[str, Dict[str, ScenarioCell]] = field(default_factory=dict)

    def f_delta(self, domain: str, scenario: str, method: str) -> float:
        """F-score delta (scenario − clean) of one method in one domain."""
        return self.cells_by_domain[domain][scenario].f_delta[method]

    def mean_f_delta(self, scenario: str) -> float:
        """Mean F-score delta of a scenario over all domains and methods."""
        deltas = [cells[scenario].f_delta[method]
                  for cells in self.cells_by_domain.values()
                  for method in self.methods]
        return sum(deltas) / len(deltas) if deltas else 0.0

    def to_json_dict(self) -> Dict[str, object]:
        """A plain-JSON rendering of the matrix (deterministic content)."""
        domains: Dict[str, object] = {}
        for domain in sorted(self.cells_by_domain):
            cells = self.cells_by_domain[domain]
            domains[domain] = {
                "clean": self.clean_by_domain[domain],
                "scenarios": {
                    name: {
                        "description": cell.description,
                        "corpus_digest": cell.corpus_digest,
                        "metrics": cell.metrics,
                        "f_delta": cell.f_delta,
                    }
                    for name, cell in sorted(cells.items())
                },
            }
        return {
            "schema": SCHEMA,
            "scale": self.scale,
            "seed": self.seed,
            "num_queries": self.num_queries,
            "methods": list(self.methods),
            "scenarios": list(self.scenarios),
            "domains": domains,
            "summary": {name: {"mean_f_delta": self.mean_f_delta(name)}
                        for name in self.scenarios},
        }

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, trailing newline)."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path) -> Path:
        """Write ``BENCH_scenarios.json`` (or any path) and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path


class ScenarioSweep:
    """Runs selectors × scenarios through the evaluation protocol.

    Parameters
    ----------
    scale:
        Corpus / split sizing preset (``smoke`` by default: a sweep touches
        ``(1 + len(scenarios)) × len(domains)`` corpora).
    scenarios:
        Scenario names to sweep (default: every registered scenario) or
        pre-built :class:`~repro.scenarios.ScenarioSpec` instances.
    methods:
        Selector / baseline names understood by
        :meth:`ExperimentRunner.create_selector`.
    num_queries:
        Query budget evaluated (one budget keeps the matrix 2-D).
    workers:
        Parallel harvesting workers per evaluation (results identical for
        any value).
    """

    def __init__(self, scale: ExperimentScale = SMOKE_SCALE,
                 scenarios: Optional[Sequence[object]] = None,
                 methods: Sequence[str] = DEFAULT_SWEEP_METHODS,
                 domains: Sequence[str] = DOMAINS,
                 num_queries: int = 3,
                 config: Optional[L2QConfig] = None,
                 workers: int = 1) -> None:
        # All inputs are validated eagerly: a sweep cell is expensive, so a
        # typo must fail here, not mid-run after the clean baseline.
        if not methods:
            raise ValueError("at least one method is required")
        harvestable = set(selector_names()) | (BASELINE_METHODS - {"IDEAL"})
        bad_methods = [m for m in methods if m not in harvestable]
        if bad_methods:
            raise ValueError(f"unknown methods {bad_methods}; "
                             f"available: {sorted(harvestable)} "
                             f"(IDEAL is the normalisation denominator and "
                             f"cannot be swept)")
        self.scale = scale
        self.specs: List[ScenarioSpec] = [
            spec if isinstance(spec, ScenarioSpec) else make_scenario(spec)
            for spec in (scenarios if scenarios is not None else scenario_names())
        ]
        if not self.specs:
            raise ValueError("at least one scenario is required")
        seen: Dict[str, int] = {}
        for spec in self.specs:
            seen[spec.name] = seen.get(spec.name, 0) + 1
        duplicates = sorted(name for name, count in seen.items() if count > 1)
        if duplicates:
            raise ValueError(f"duplicate scenarios: {duplicates}")
        bad_domains = [d for d in domains if d not in scale.num_entities]
        if bad_domains:
            raise ValueError(f"unknown domains {bad_domains}; this scale "
                             f"sizes: {sorted(scale.num_entities)}")
        self.methods = list(methods)
        self.domains = list(domains)
        self.num_queries = num_queries
        self.config = config
        self.workers = workers

    def run(self) -> ScenarioSweepResult:
        """Evaluate every (domain, scenario) cell and fold in the deltas."""
        result = ScenarioSweepResult(
            scale=self.scale.name,
            seed=self.scale.corpus_seed,
            num_queries=self.num_queries,
            methods=list(self.methods),
            scenarios=[spec.name for spec in self.specs],
        )
        for domain in self.domains:
            clean_corpus = self.scale.corpus_for(domain)
            clean_metrics = self._evaluate(clean_corpus)
            result.clean_by_domain[domain] = {
                "corpus_digest": clean_corpus.content_digest(),
                "metrics": clean_metrics,
            }
            cells: Dict[str, ScenarioCell] = {}
            for spec in self.specs:
                corpus = self.scale.corpus_for(domain, scenario=spec)
                metrics = self._evaluate(corpus)
                cells[spec.name] = ScenarioCell(
                    scenario=spec.name,
                    description=spec.description,
                    corpus_digest=corpus.content_digest(),
                    metrics=metrics,
                    f_delta={
                        method: metrics[method]["f_score"]
                        - clean_metrics[method]["f_score"]
                        for method in self.methods
                    },
                )
            result.cells_by_domain[domain] = cells
        return result

    def _evaluate(self, corpus: Corpus) -> Dict[str, Dict[str, float]]:
        """Ideal-normalised metrics of every method on one corpus."""
        runner = ExperimentRunner(corpus, config=self.config,
                                  workers=self.workers)
        series = runner.evaluate_methods(
            self.methods,
            num_queries_list=(self.num_queries,),
            num_splits=self.scale.num_splits,
            max_test_entities=self.scale.max_test_entities,
            aspects=self.scale.aspects_for(corpus),
        )
        return {
            method: {
                "precision": series[method].precision[self.num_queries],
                "recall": series[method].recall[self.num_queries],
                "f_score": series[method].f_score[self.num_queries],
            }
            for method in self.methods
        }


def run_scenario_sweep(scale: ExperimentScale = SMOKE_SCALE,
                       scenarios: Optional[Sequence[object]] = None,
                       methods: Sequence[str] = DEFAULT_SWEEP_METHODS,
                       domains: Sequence[str] = DOMAINS,
                       num_queries: int = 3,
                       config: Optional[L2QConfig] = None,
                       workers: int = 1) -> ScenarioSweepResult:
    """Convenience wrapper: build a :class:`ScenarioSweep` and run it."""
    return ScenarioSweep(scale=scale, scenarios=scenarios, methods=methods,
                         domains=domains, num_queries=num_queries,
                         config=config, workers=workers).run()
