"""Robustness sweep: selectors × scenarios → F-score deltas vs clean.

The paper's comparisons run on clean synthetic corpora only.
:class:`ScenarioSweep` re-runs the evaluation protocol under every requested
scenario (see :mod:`repro.scenarios`) and reports, per domain and per
method, how far the ideal-normalised precision / recall / F-score move from
the clean baseline — alongside the *absolute* (un-normalised) F-scores, so
a scenario that "improves" only because the IDEAL denominator degrades is
visible.  Since schema v3 every cell also carries the per-method
``duplicate_waste`` metric (near-duplicate fetch waste, see
:mod:`repro.dedup.waste`) and a merged ``fetch`` accounting block, and a
sweep can vary *learner* parameters per cell (``config_by_scenario`` /
:func:`expand_config_grid`, e.g. a ``dedup_penalty`` grid).  The output is
a machine-readable *robustness matrix* (``BENCH_scenarios.json``) that
successive PRs can diff.

Corpus generation is shared: each domain's *base* corpus is generated once
and every scenario's perturbation pipeline is realised against it
(byte-identical to per-scenario generation, because perturbation RNGs are
label-derived — see :class:`~repro.corpus.synthetic.BaseCorpus`).  A sweep
therefore performs exactly one base generation per domain instead of
``1 + len(scenarios)``.

Execution is pluggable: the sweep accepts any
:class:`~repro.exec.backends.ExecutionBackend`.  Serial and thread backends
evaluate cells in-process (threads parallelise the harvesting runs inside a
cell); the sharded process backend ships picklable
:class:`~repro.exec.specs.SweepCellSpec` payloads, one per (domain,
scenario) cell, and workers rebuild corpora against a process-local shared
base.  Every backend produces the same JSON byte-for-byte.

Everything in the result is deterministic: corpora are seeded, harvest
seeds derive from ``(base_seed, split, method, entity, aspect)``, and no
wall-clock values are recorded — so the same seed reproduces the JSON
byte-for-byte (the acceptance bar for the scenario subsystem).  Each
corpus's :meth:`~repro.corpus.corpus.Corpus.content_digest` is embedded so
a drifting corpus generator is distinguishable from a drifting selector.
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aspects.classifier import AspectClassifierSuite
from repro.core.config import L2QConfig
from repro.core.selection import selector_names
from repro.corpus.corpus import Corpus
from repro.corpus.synthetic import CorpusConfig, CorpusGenerator, realise_base
from repro.eval.experiments import DOMAINS, SMOKE_SCALE, ExperimentScale
from repro.eval.runner import BASELINE_METHODS, ExperimentRunner
from repro.eval.splits import split_entities
from repro.exec.backends import ExecutionBackend, resolve_backend
from repro.exec.specs import SweepCellResult, SweepCellSpec, reserve_base_slots
from repro.perf import recorder as perf_recorder
from repro.scenarios import ScenarioSpec, make_scenario, scenario_names
from repro.store import MODE_OFF, CorpusStoreWriter, StoreError, StoreHandle
from repro.store import release
from repro.store import resolve_mode as resolve_store_mode
from repro.utils.rng import derive_seed

#: Selectors swept by default: the paper's three full approaches.
DEFAULT_SWEEP_METHODS = ("L2QP", "L2QR", "L2QBAL")

#: Identifier of the serialisation layout (bump on breaking changes).
#: v2 adds absolute (un-normalised) metrics alongside the normalised ones.
#: v3 adds per-method ``duplicate_waste``, per-cell merged ``fetch``
#: accounting, and per-scenario L2Q config overrides (dedup-penalty grids).
SCHEMA = "BENCH_scenarios/v3"

#: Base seed of the evaluation runners inside sweep cells (the
#: :class:`ExperimentRunner` default, pinned so spec payloads are explicit).
RUNNER_BASE_SEED = 99


@dataclass
class ScenarioCell:
    """One (domain, scenario) cell of the robustness matrix."""

    scenario: str
    description: str
    corpus_digest: str
    metrics: Dict[str, Dict[str, float]]
    f_delta: Dict[str, float]
    absolute_metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    absolute_f_delta: Dict[str, float] = field(default_factory=dict)
    #: Per-method mean fraction of fetched pages that were duplicate or
    #: near-duplicate re-fetches (lower is better; see repro.dedup.waste).
    duplicate_waste: Dict[str, float] = field(default_factory=dict)
    #: Merged fetch accounting of every harvest run in this cell
    #: (queries_fired / pages_fetched / cache_hits / cache_misses) —
    #: identical across execution backends by construction.
    fetch: Dict[str, object] = field(default_factory=dict)


@dataclass
class ScenarioSweepResult:
    """The full robustness matrix plus everything needed to reproduce it."""

    scale: str
    seed: int
    num_queries: int
    methods: List[str]
    scenarios: List[str]
    clean_by_domain: Dict[str, Dict[str, object]] = field(default_factory=dict)
    cells_by_domain: Dict[str, Dict[str, ScenarioCell]] = field(default_factory=dict)
    param_grid: Optional[Dict[str, object]] = None

    def f_delta(self, domain: str, scenario: str, method: str) -> float:
        """F-score delta (scenario − clean) of one method in one domain."""
        return self.cells_by_domain[domain][scenario].f_delta[method]

    def mean_f_delta(self, scenario: str) -> float:
        """Mean F-score delta of a scenario over all domains and methods."""
        deltas = [cells[scenario].f_delta[method]
                  for cells in self.cells_by_domain.values()
                  for method in self.methods]
        return sum(deltas) / len(deltas) if deltas else 0.0

    def mean_absolute_f_delta(self, scenario: str) -> float:
        """Mean *absolute* F-score delta over all domains and methods.

        The un-normalised companion of :meth:`mean_f_delta`: immune to the
        IDEAL denominator moving under a scenario.
        """
        deltas = [cells[scenario].absolute_f_delta[method]
                  for cells in self.cells_by_domain.values()
                  for method in self.methods]
        return sum(deltas) / len(deltas) if deltas else 0.0

    def mean_duplicate_waste(self, scenario: str) -> float:
        """Mean duplicate-fetch waste of a scenario over domains and methods."""
        values = [cells[scenario].duplicate_waste[method]
                  for cells in self.cells_by_domain.values()
                  for method in self.methods]
        return sum(values) / len(values) if values else 0.0

    def to_json_dict(self) -> Dict[str, object]:
        """A plain-JSON rendering of the matrix (deterministic content)."""
        domains: Dict[str, object] = {}
        for domain in sorted(self.cells_by_domain):
            cells = self.cells_by_domain[domain]
            domains[domain] = {
                "clean": self.clean_by_domain[domain],
                "scenarios": {
                    name: {
                        "description": cell.description,
                        "corpus_digest": cell.corpus_digest,
                        "metrics": cell.metrics,
                        "absolute_metrics": cell.absolute_metrics,
                        "f_delta": cell.f_delta,
                        "absolute_f_delta": cell.absolute_f_delta,
                        "duplicate_waste": cell.duplicate_waste,
                        "fetch": cell.fetch,
                    }
                    for name, cell in sorted(cells.items())
                },
            }
        report: Dict[str, object] = {
            "schema": SCHEMA,
            "scale": self.scale,
            "seed": self.seed,
            "num_queries": self.num_queries,
            "methods": list(self.methods),
            "scenarios": list(self.scenarios),
            "domains": domains,
            "summary": {
                name: {
                    "mean_f_delta": self.mean_f_delta(name),
                    "mean_absolute_f_delta": self.mean_absolute_f_delta(name),
                    "mean_duplicate_waste": self.mean_duplicate_waste(name),
                }
                for name in self.scenarios
            },
        }
        if self.param_grid is not None:
            report["param_grid"] = dict(self.param_grid)
        return report

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, trailing newline)."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path) -> Path:
        """Write ``BENCH_scenarios.json`` (or any path) and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path


def expand_severity_grid(scenarios: Sequence[str], param: str,
                         values: Sequence[object]
                         ) -> Tuple[List[ScenarioSpec], Dict[str, object]]:
    """Expand scenarios × parameter values into a severity grid.

    Each named scenario factory is instantiated once per value with
    ``param=value`` and renamed ``"{name}@{param}={value}"``, so one sweep
    produces a degradation *curve* per selector instead of a single point.
    Returns the expanded specs plus the grid metadata embedded in the
    result JSON.
    """
    if not values:
        raise ValueError("severity grid needs at least one value")
    specs: List[ScenarioSpec] = []
    for name in scenarios:
        for value in values:
            try:
                spec = make_scenario(name, **{param: value})
            except TypeError as error:
                # A rejected keyword means the factory lacks the parameter;
                # any other TypeError comes from inside the factory (e.g. a
                # perturbation comparing a string severity) and is a bad
                # *value*, not a bad parameter name.
                if "unexpected keyword argument" in str(error):
                    raise ValueError(
                        f"scenario {name!r} does not accept parameter "
                        f"{param!r}: {error}") from None
                raise ValueError(
                    f"invalid value {value!r} for parameter {param!r} of "
                    f"scenario {name!r}: {error}") from None
            except ValueError as error:
                raise ValueError(
                    f"invalid value {value!r} for parameter {param!r} of "
                    f"scenario {name!r}: {error}") from None
            specs.append(replace(spec, name=f"{name}@{param}={value}"))
    grid = {"param": param, "values": list(values), "scenarios": list(scenarios)}
    return specs, grid


#: L2QConfig fields the sweep's evaluation path never reads: the budget
#: comes from ``ScenarioSweep.num_queries`` and every harvest seed derives
#: from the runner's ``base_seed`` (job specs), so grids over these would
#: produce byte-identical cells.
_SWEEP_IGNORED_CONFIG_FIELDS = {
    "num_queries": "the budget comes from --queries / ScenarioSweep.num_queries",
    "random_seed": "harvest seeds derive from the runner's base_seed",
}


def expand_config_grid(scenarios: Sequence[str], param: str,
                       values: Sequence[object],
                       base_config: Optional[L2QConfig] = None
                       ) -> Tuple[List[ScenarioSpec], Dict[str, object],
                                  Dict[str, L2QConfig]]:
    """Expand scenarios × :class:`L2QConfig` values into a severity grid.

    The companion of :func:`expand_severity_grid` for *learner* parameters
    (e.g. ``dedup_penalty``): every cell keeps its scenario's perturbation
    pipeline untouched and instead overrides one config field, so one sweep
    shows how a knob moves F-score and duplicate waste under a fixed
    hostile condition.  Returns the renamed specs, the grid metadata and
    the per-cell config mapping for :class:`ScenarioSweep`'s
    ``config_by_scenario``.
    """
    if param not in L2QConfig.__dataclass_fields__:
        raise ValueError(f"{param!r} is not an L2QConfig field; config grids "
                         f"sweep learner parameters (e.g. dedup_penalty)")
    if param in _SWEEP_IGNORED_CONFIG_FIELDS:
        # Sweeping a field the evaluation path never reads would emit
        # differently-labelled but byte-identical cells — a flat "curve"
        # that measured nothing.
        raise ValueError(
            f"config parameter {param!r} is ignored by the sweep "
            f"({_SWEEP_IGNORED_CONFIG_FIELDS[param]}); a grid over it "
            f"would produce identical cells")
    if not values:
        raise ValueError("severity grid needs at least one value")
    base = base_config if base_config is not None else L2QConfig()
    specs: List[ScenarioSpec] = []
    configs: Dict[str, L2QConfig] = {}
    for name in scenarios:
        spec = make_scenario(name)
        for value in values:
            config = replace(base, **{param: value})
            try:
                config.validate()
            except (TypeError, ValueError) as error:
                raise ValueError(
                    f"invalid value {value!r} for config parameter "
                    f"{param!r}: {error}") from None
            label = f"{name}@{param}={value}"
            specs.append(replace(spec, name=label))
            configs[label] = config
    grid = {"param": param, "values": list(values),
            "scenarios": list(scenarios), "target": "config"}
    return specs, grid, configs


def _metrics_block(series: Dict[str, object], methods: Sequence[str],
                   num_queries: int) -> Dict[str, Dict[str, float]]:
    """Extract the per-method {precision, recall, f_score} block."""
    return {
        method: {
            "precision": series[method].precision[num_queries],
            "recall": series[method].recall[num_queries],
            "f_score": series[method].f_score[num_queries],
        }
        for method in methods
    }


def _evaluate_corpus(corpus: Corpus, methods: Sequence[str], num_queries: int,
                     num_splits: int, max_test_entities: Optional[int],
                     max_aspects: Optional[int], config: Optional[L2QConfig],
                     base_seed: int,
                     backend: Union[None, str, ExecutionBackend] = None,
                     workers: int = 1
                     ) -> Tuple[Dict[str, Dict[str, float]],
                                Dict[str, Dict[str, float]],
                                Dict[str, float],
                                Dict[str, object]]:
    """Metrics, duplicate waste and fetch accounting of one corpus.

    Returns ``(normalised metrics, absolute metrics, duplicate_waste,
    fetch)``.  The single evaluation routine shared by the in-process sweep
    path and the process-backend worker path, so both fold identical floats
    in identical order — the byte-for-byte equality across backends rests
    on this sharing.
    """
    runner = ExperimentRunner(corpus, config=config, base_seed=base_seed,
                              workers=workers, backend=backend)
    aspects = list(corpus.aspects)
    if max_aspects is not None:
        aspects = aspects[:max_aspects]
    evaluation = runner.evaluate_methods_detailed(
        methods,
        num_queries_list=(num_queries,),
        num_splits=num_splits,
        max_test_entities=max_test_entities,
        aspects=aspects,
    )
    return (_metrics_block(evaluation.normalized, methods, num_queries),
            _metrics_block(evaluation.absolute, methods, num_queries),
            {method: evaluation.duplicate_waste[method][num_queries]
             for method in methods},
            evaluation.fetch_statistics.as_dict())


def assemble_sweep_result(*, scale_name: str, seed: int, num_queries: int,
                          methods: Sequence[str], domains: Sequence[str],
                          specs: Sequence[ScenarioSpec],
                          cell_results: Sequence[SweepCellResult],
                          param_grid: Optional[Dict[str, object]] = None
                          ) -> ScenarioSweepResult:
    """Fold executed cells into the robustness matrix (pure function).

    The aggregation half of the sweep, fully separated from execution:
    given the plain-data cell results — fresh from workers or replayed
    from a campaign's on-disk artifacts — the same inputs produce the
    same :class:`ScenarioSweepResult` (and hence the same JSON bytes).
    This is what lets a resumed campaign emit output byte-identical to an
    uninterrupted run.
    """
    result = ScenarioSweepResult(
        scale=scale_name,
        seed=seed,
        num_queries=num_queries,
        methods=list(methods),
        scenarios=[spec.name for spec in specs],
        param_grid=param_grid,
    )
    by_domain: Dict[str, Dict[Optional[str], SweepCellResult]] = {}
    for cell in cell_results:
        by_domain.setdefault(cell.domain, {})[cell.scenario] = cell
    descriptions = {spec.name: spec.description for spec in specs}
    for domain in domains:
        cells = by_domain[domain]
        clean = cells[None]
        result.clean_by_domain[domain] = {
            "corpus_digest": clean.corpus_digest,
            "metrics": clean.metrics,
            "absolute_metrics": clean.absolute_metrics,
            "duplicate_waste": clean.duplicate_waste,
            "fetch": clean.fetch,
        }
        folded: Dict[str, ScenarioCell] = {}
        for spec in specs:
            cell = cells[spec.name]
            folded[spec.name] = ScenarioCell(
                scenario=spec.name,
                description=descriptions[spec.name],
                corpus_digest=cell.corpus_digest,
                metrics=cell.metrics,
                absolute_metrics=cell.absolute_metrics,
                duplicate_waste=cell.duplicate_waste,
                fetch=cell.fetch,
                f_delta={
                    method: cell.metrics[method]["f_score"]
                    - clean.metrics[method]["f_score"]
                    for method in methods
                },
                absolute_f_delta={
                    method: cell.absolute_metrics[method]["f_score"]
                    - clean.absolute_metrics[method]["f_score"]
                    for method in methods
                },
            )
        result.cells_by_domain[domain] = folded
    return result


def publish_domain_store(scale: ExperimentScale, domain: str,
                         mode: str, rec=None) -> StoreHandle:
    """Publish one domain's clean base store plus its per-split suites.

    Pages flow straight from the generator into the store writer, so the
    publishing process never materialises the domain's full page set.
    The store also carries the clean cell's trained aspect-classifier
    suites (one per evaluation split, keyed exactly as
    :meth:`~repro.eval.runner.ExperimentRunner._classifier_key` derives
    them), so worker clean cells attach trained models instead of
    retraining per worker; only the pages of split training entities are
    retained in this process to train those suites.  Shared by
    :class:`ScenarioSweep` and the campaign runner — one publish path,
    one store format.
    """
    config = CorpusConfig(domain=domain,
                          num_entities=scale.num_entities[domain],
                          pages_per_entity=scale.pages_per_entity,
                          seed=scale.corpus_seed)
    generator = CorpusGenerator(config.base_config())
    entities = generator.generate_entities()
    writer = CorpusStoreWriter(config, entities)
    # The clean cell's runner derives one split per index from the same
    # base seed; training entities are the split's domain entities
    # (test entities only in the degenerate no-domain-half case).
    splits = [split_entities(sorted(entities),
                             seed=derive_seed(RUNNER_BASE_SEED,
                                              "split", index))
              for index in range(scale.num_splits)]
    needed = set()
    for split in splits:
        needed.update(split.domain_entities or split.test_entities)
    retained = {}
    with (rec.phase("store-publish", domain=domain)
          if rec else nullcontext()):
        for page in generator.generate_pages(entities):
            writer.add_page(page)
            if page.entity_id in needed:
                retained[page.page_id] = page
    training_corpus = Corpus(generator.domain_spec, entities, retained,
                             type_system=generator.type_system)
    for split in splits:
        suite_seed = derive_seed(RUNNER_BASE_SEED, "classifier",
                                 split.seed)
        with (rec.phase("classifier-train", split_seed=split.seed)
              if rec else nullcontext()):
            suite = AspectClassifierSuite.train_on_corpus(
                training_corpus.subset(
                    split.domain_entities or split.test_entities),
                seed=suite_seed)
        writer.add_classifier_suite(str(suite_seed), suite)
    with (rec.phase("store-publish", domain=domain)
          if rec else nullcontext()):
        return writer.publish(mode=mode)


def publish_domain_stores(scale: ExperimentScale, domains: Sequence[str],
                          mode: str) -> Dict[str, StoreHandle]:
    """Stream-publish one clean base store per domain for workers.

    A publish failure stops publishing (already-published domains stay
    usable); affected cells simply rebuild.  With the store off, no
    domain publishes and every cell rebuilds.
    """
    handles: Dict[str, StoreHandle] = {}
    if mode == MODE_OFF:
        return handles
    rec = perf_recorder()
    for domain in domains:
        try:
            handles[domain] = publish_domain_store(scale, domain, mode, rec)
        except StoreError:
            break
    return handles


def execute_sweep_cell(spec: SweepCellSpec) -> SweepCellResult:
    """Worker entry point: evaluate one (domain, scenario) cell from its spec.

    The corpus is rebuilt from the spec (scenario pipelines realise against
    a process-locally cached shared base), evaluated serially, and only the
    plain-data result crosses back — config in, result dataclass out.
    """
    rec = perf_recorder()
    if rec is None:
        return _execute_sweep_cell(spec)
    with rec.phase("sweep-cell", domain=spec.domain,
                   scenario=spec.scenario_name or "clean"):
        return _execute_sweep_cell(spec)


def _execute_sweep_cell(spec: SweepCellSpec) -> SweepCellResult:
    # Room in the worker's base/corpus caches for every base in the sweep,
    # so interleaved work-stolen cells cannot thrash into regeneration.
    reserve_base_slots(spec.base_slots)
    corpus = spec.corpus.build()
    metrics, absolute, waste, fetch = _evaluate_corpus(
        corpus, spec.methods, spec.num_queries, spec.num_splits,
        spec.max_test_entities, spec.max_aspects, spec.config, spec.base_seed)
    # Store-attached corpora carry their publish-time content digest (the
    # same canonical hash), sparing a full lazy-page realisation pass.
    digest = getattr(corpus, "store_digest", None)
    return SweepCellResult(
        domain=spec.domain,
        scenario=spec.scenario_name,
        corpus_digest=digest if digest is not None else corpus.content_digest(),
        metrics=metrics,
        absolute_metrics=absolute,
        duplicate_waste=waste,
        fetch=fetch,
    )


class ScenarioSweep:
    """Runs selectors × scenarios through the evaluation protocol.

    Parameters
    ----------
    scale:
        Corpus / split sizing preset (``smoke`` by default; a sweep
        generates one *base* corpus per domain and realises every scenario
        pipeline against it).
    scenarios:
        Scenario names to sweep (default: every registered scenario) or
        pre-built :class:`~repro.scenarios.ScenarioSpec` instances.
    methods:
        Selector / baseline names understood by
        :meth:`ExperimentRunner.create_selector`.
    num_queries:
        Query budget evaluated (one budget keeps the matrix 2-D).
    workers:
        Degree of parallelism handed to the backend (results identical for
        any value).
    backend:
        Execution backend name or instance (``serial`` / ``thread`` /
        ``process``; default ``None`` = historical workers semantics).
        Serial and thread evaluate cells in-process; the process backend
        shards whole cells across worker processes.
    param_grid:
        Optional grid metadata from :func:`expand_severity_grid` or
        :func:`expand_config_grid`, embedded verbatim in the result.
    config_by_scenario:
        Optional per-scenario :class:`L2QConfig` overrides (scenario name →
        config), as produced by :func:`expand_config_grid`.  Cells without
        an entry — including the clean baseline — use ``config``.
    """

    def __init__(self, scale: ExperimentScale = SMOKE_SCALE,
                 scenarios: Optional[Sequence[object]] = None,
                 methods: Sequence[str] = DEFAULT_SWEEP_METHODS,
                 domains: Sequence[str] = DOMAINS,
                 num_queries: int = 3,
                 config: Optional[L2QConfig] = None,
                 workers: int = 1,
                 backend: Union[None, str, ExecutionBackend] = None,
                 param_grid: Optional[Dict[str, object]] = None,
                 config_by_scenario: Optional[Dict[str, L2QConfig]] = None,
                 corpus_store: str = "auto") -> None:
        # All inputs are validated eagerly: a sweep cell is expensive, so a
        # typo must fail here, not mid-run after the clean baseline.
        if not methods:
            raise ValueError("at least one method is required")
        harvestable = set(selector_names()) | (BASELINE_METHODS - {"IDEAL"})
        bad_methods = [m for m in methods if m not in harvestable]
        if bad_methods:
            raise ValueError(f"unknown methods {bad_methods}; "
                             f"available: {sorted(harvestable)} "
                             f"(IDEAL is the normalisation denominator and "
                             f"cannot be swept)")
        self.scale = scale
        self.specs: List[ScenarioSpec] = [
            spec if isinstance(spec, ScenarioSpec) else make_scenario(spec)
            for spec in (scenarios if scenarios is not None else scenario_names())
        ]
        if not self.specs:
            raise ValueError("at least one scenario is required")
        seen: Dict[str, int] = {}
        for spec in self.specs:
            seen[spec.name] = seen.get(spec.name, 0) + 1
        duplicates = sorted(name for name, count in seen.items() if count > 1)
        if duplicates:
            raise ValueError(f"duplicate scenarios: {duplicates}")
        bad_domains = [d for d in domains if d not in scale.num_entities]
        if bad_domains:
            raise ValueError(f"unknown domains {bad_domains}; this scale "
                             f"sizes: {sorted(scale.num_entities)}")
        self.methods = list(methods)
        self.domains = list(domains)
        self.num_queries = num_queries
        self.config = config
        self.workers = workers
        self.backend = resolve_backend(backend, workers=workers)
        self.param_grid = param_grid
        #: Shared corpus store policy for the distributed path (one
        #: published base per domain; workers attach instead of
        #: regenerating).  ``auto`` / ``off`` / ``shm`` / ``mmap``.
        self.corpus_store = corpus_store
        resolve_store_mode(corpus_store)  # validate eagerly
        self.config_by_scenario = dict(config_by_scenario or {})
        known = {spec.name for spec in self.specs}
        orphans = sorted(set(self.config_by_scenario) - known)
        if orphans:
            raise ValueError(f"config_by_scenario names unknown scenarios "
                             f"{orphans}; swept: {sorted(known)}")

    def _config_for(self, scenario_name: Optional[str]) -> Optional[L2QConfig]:
        """The L2Q config one cell evaluates with (clean cell: the base)."""
        if scenario_name is None:
            return self.config
        return self.config_by_scenario.get(scenario_name, self.config)

    def run(self) -> ScenarioSweepResult:
        """Evaluate every (domain, scenario) cell and fold in the deltas."""
        if self.backend.distributed:
            cell_results = self._run_distributed()
        else:
            cell_results = self._run_local()
        return assemble_sweep_result(
            scale_name=self.scale.name,
            seed=self.scale.corpus_seed,
            num_queries=self.num_queries,
            methods=self.methods,
            domains=self.domains,
            specs=self.specs,
            cell_results=cell_results,
            param_grid=self.param_grid,
        )

    # -- Execution paths -------------------------------------------------------
    def _run_local(self) -> List[SweepCellResult]:
        """In-process path: one shared base per domain, cells in order.

        The thread backend (if configured) parallelises the harvesting runs
        *inside* each cell's evaluation; cells run sequentially so the
        shared base and engine caches stay warm.
        """
        rec = perf_recorder()
        out: List[SweepCellResult] = []
        for domain in self.domains:
            base = self.scale.base_corpus_for(domain)
            for scenario, corpus in self._domain_corpora(base):
                name = scenario.name if scenario else None
                with (rec.phase("sweep-cell", domain=domain,
                                scenario=name or "clean")
                      if rec else nullcontext()):
                    metrics, absolute, waste, fetch = _evaluate_corpus(
                        corpus, self.methods, self.num_queries,
                        self.scale.num_splits, self.scale.max_test_entities,
                        self.scale.max_aspects, self._config_for(name),
                        RUNNER_BASE_SEED,
                        backend=self.backend, workers=self.workers)
                out.append(SweepCellResult(
                    domain=domain,
                    scenario=name,
                    corpus_digest=corpus.content_digest(),
                    metrics=metrics,
                    absolute_metrics=absolute,
                    duplicate_waste=waste,
                    fetch=fetch,
                ))
        return out

    def _domain_corpora(self, base):
        """Yield (scenario-or-None, corpus) pairs realised from one base."""
        yield None, realise_base(base)
        for spec in self.specs:
            if spec.shares_base:
                yield spec, spec.corpus_from_base(base)
            else:
                # Config overrides change the base generation itself; this
                # scenario pays for its own full generation.
                yield spec, self.scale.corpus_for(base.domain, scenario=spec)

    def _publish_domain_stores(self) -> Dict[str, StoreHandle]:
        """One clean base store per domain (see :func:`publish_domain_stores`).

        Scenario cells perturb the base, so their runners always retrain
        classifiers — attached suites would describe the wrong corpus.
        """
        return publish_domain_stores(self.scale, self.domains,
                                     self.corpus_store)

    def _run_distributed(self) -> List[SweepCellResult]:
        """Process path: shard whole (domain, scenario) cells across workers.

        Cells are ordered domain-major, so contiguous shards keep a
        domain's cells together and the workers' process-local base-corpus
        caches amortise generation the same way the in-process path does.
        Unless the store is off, each domain's clean base is published to a
        shared corpus store first and every cell spec carries its handle:
        workers attach (clean cells zero-copy, base-sharing scenarios
        perturb the attached base) instead of regenerating, and fall back
        to generation if a segment vanishes.  Stores are unlinked once the
        dispatch returns — attached workers keep their mappings.
        """
        handles = self._publish_domain_stores()
        cell_specs = [
            SweepCellSpec(
                corpus=replace(
                    self.scale.corpus_spec_for(domain, scenario=scenario),
                    store_handle=handles.get(domain)),
                methods=tuple(self.methods),
                num_queries=self.num_queries,
                num_splits=self.scale.num_splits,
                max_test_entities=self.scale.max_test_entities,
                max_aspects=self.scale.max_aspects,
                config=self._config_for(scenario.name if scenario else None),
                base_seed=RUNNER_BASE_SEED,
            )
            for domain in self.domains
            for scenario in [None] + list(self.specs)
        ]
        base_slots = len({spec.corpus.base_key() for spec in cell_specs})
        cell_specs = [replace(spec, base_slots=base_slots)
                      for spec in cell_specs]
        rec = perf_recorder()
        try:
            with (rec.phase("sweep-dispatch", cells=len(cell_specs),
                            workers=self.backend.workers)
                  if rec else nullcontext()):
                return self.backend.map(execute_sweep_cell, cell_specs)
        finally:
            for handle in handles.values():
                release(handle)

def run_scenario_sweep(scale: ExperimentScale = SMOKE_SCALE,
                       scenarios: Optional[Sequence[object]] = None,
                       methods: Sequence[str] = DEFAULT_SWEEP_METHODS,
                       domains: Sequence[str] = DOMAINS,
                       num_queries: int = 3,
                       config: Optional[L2QConfig] = None,
                       workers: int = 1,
                       backend: Union[None, str, ExecutionBackend] = None,
                       corpus_store: str = "auto"
                       ) -> ScenarioSweepResult:
    """Convenience wrapper: build a :class:`ScenarioSweep` and run it."""
    return ScenarioSweep(scale=scale, scenarios=scenarios, methods=methods,
                         domains=domains, num_queries=num_queries,
                         config=config, workers=workers, backend=backend,
                         corpus_store=corpus_store).run()
