"""Plain-text reporting of experiment results, matching the paper's rows."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.eval.experiments import (
    ComparisonResult,
    Fig9Result,
    Fig10Result,
    Fig11Result,
    Fig14Result,
    HeadlineSummary,
)
from repro.eval.metrics import MetricSeries


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a simple aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_fig09(result: Fig9Result) -> str:
    """Fig. 9: tested aspects, paragraph frequency and classifier accuracy."""
    sections: List[str] = []
    for domain, rows in result.rows_by_domain.items():
        table_rows = [
            [row.aspect, str(row.paragraph_frequency), f"{row.accuracy:.2f}"]
            for row in rows
        ]
        sections.append(f"[{domain}]")
        sections.append(_format_table(["Aspect", "Frequency", "Accuracy"], table_rows))
        sections.append("")
    return "\n".join(sections).rstrip()


def format_fig10(result: Fig10Result) -> str:
    """Fig. 10: normalised precision / recall of the strategy ladder."""
    sections: List[str] = ["(a) Comparison of precision"]
    for domain, values in result.precision_by_domain.items():
        rows = [[method, f"{value:.3f}"] for method, value in values.items()]
        sections.append(f"[{domain}]  ({result.num_queries} queries)")
        sections.append(_format_table(["Method", "Precision"], rows))
        sections.append("")
    sections.append("(b) Comparison of recall")
    for domain, values in result.recall_by_domain.items():
        rows = [[method, f"{value:.3f}"] for method, value in values.items()]
        sections.append(f"[{domain}]  ({result.num_queries} queries)")
        sections.append(_format_table(["Method", "Recall"], rows))
        sections.append("")
    return "\n".join(sections).rstrip()


def format_fig11(result: Fig11Result) -> str:
    """Fig. 11: effect of domain size on the full approaches."""
    sections: List[str] = ["(a) Precision for L2QP"]
    for domain, values in result.precision_by_domain.items():
        rows = [[f"{int(fraction * 100)}%", f"{values[fraction]:.3f}"]
                for fraction in result.fractions]
        sections.append(f"[{domain}]")
        sections.append(_format_table(["Domain entities used", "Precision"], rows))
        sections.append("")
    sections.append("(b) Recall for L2QR")
    for domain, values in result.recall_by_domain.items():
        rows = [[f"{int(fraction * 100)}%", f"{values[fraction]:.3f}"]
                for fraction in result.fractions]
        sections.append(f"[{domain}]")
        sections.append(_format_table(["Domain entities used", "Recall"], rows))
        sections.append("")
    return "\n".join(sections).rstrip()


def _format_series_table(series_by_method: Mapping[str, MetricSeries],
                         metric: str) -> str:
    methods = list(series_by_method)
    budgets = sorted(next(iter(series_by_method.values())).precision) if series_by_method else []
    headers = ["Method"] + [f"{k} queries" for k in budgets]
    rows = []
    for method in methods:
        series = series_by_method[method]
        values = {"precision": series.precision, "recall": series.recall,
                  "f_score": series.f_score}[metric]
        rows.append([method] + [f"{values[k]:.3f}" for k in budgets])
    return _format_table(headers, rows)


def format_fig12(result: ComparisonResult) -> str:
    """Fig. 12: precision and recall vs number of queries against baselines."""
    sections: List[str] = ["(a) Comparison of precision"]
    for domain, series in result.series_by_domain.items():
        sections.append(f"[{domain}]")
        sections.append(_format_series_table(series, "precision"))
        sections.append("")
    sections.append("(b) Comparison of recall")
    for domain, series in result.series_by_domain.items():
        sections.append(f"[{domain}]")
        sections.append(_format_series_table(series, "recall"))
        sections.append("")
    return "\n".join(sections).rstrip()


def format_fig13(result: ComparisonResult) -> str:
    """Fig. 13: F-score of the balanced strategy against baselines."""
    sections: List[str] = ["Comparison of F-scores with balanced strategy"]
    for domain, series in result.series_by_domain.items():
        sections.append(f"[{domain}]")
        sections.append(_format_series_table(series, "f_score"))
        sections.append("")
    return "\n".join(sections).rstrip()


def format_fig14(result: Fig14Result) -> str:
    """Fig. 14: average time cost per query (seconds).

    Each method is timed against cold engine caches; the per-method engine
    cache hit rate (the method's own query repetition) is shown alongside
    when the report carries one.
    """
    first = next(iter(result.reports_by_domain.values()))
    show_hit_rates = bool(first.cache_hit_rates)
    rows = []
    for domain, report in result.reports_by_domain.items():
        row = [domain]
        for method in sorted(report.selection_seconds):
            row.append(f"{report.selection_seconds[method]:.3f}")
        row.append(f"~{report.fetch_seconds:.1f}")
        if show_hit_rates:
            for method in sorted(report.selection_seconds):
                rate = report.cache_hit_rates.get(method)
                row.append(f"{rate:.0%}" if rate is not None else "-")
        rows.append(row)
    headers = ["Domain"] + [f"{m} (selection)"
                            for m in sorted(first.selection_seconds)] + ["Fetch"]
    if show_hit_rates:
        headers += [f"{m} (cache hits)" for m in sorted(first.selection_seconds)]
    return _format_table(headers, rows)


def format_scenarios(result) -> str:
    """Robustness matrix: per-domain F-scores and deltas vs the clean run.

    ``result`` is a :class:`~repro.eval.scenario_sweep.ScenarioSweepResult`
    (imported lazily to keep reporting free of the scenarios dependency).
    """
    sections: List[str] = [
        f"Robustness matrix (scale={result.scale}, seed={result.seed}, "
        f"{result.num_queries} queries; F-score, Δ vs clean)"
    ]
    for domain in sorted(result.cells_by_domain):
        clean = result.clean_by_domain[domain]["metrics"]
        rows = [["clean"] + [f"{clean[m]['f_score']:.3f}" for m in result.methods]]
        cells = result.cells_by_domain[domain]
        for name in result.scenarios:
            cell = cells[name]
            rows.append([name] + [
                f"{cell.metrics[m]['f_score']:.3f} ({cell.f_delta[m]:+.3f})"
                for m in result.methods
            ])
        sections.append(f"[{domain}]")
        sections.append(_format_table(["Scenario"] + list(result.methods), rows))
        sections.append("")
    summary_rows = [[name, f"{result.mean_f_delta(name):+.3f}",
                     f"{result.mean_absolute_f_delta(name):+.3f}",
                     f"{result.mean_duplicate_waste(name):.3f}"]
                    for name in result.scenarios]
    sections.append("Mean F-score delta over domains and methods "
                    "(normalised and absolute) and duplicate-fetch waste")
    sections.append(_format_table(["Scenario", "Mean ΔF", "Mean Δabs-F",
                                   "Mean waste"],
                                  summary_rows))
    return "\n".join(sections).rstrip()


def format_headline(summary: HeadlineSummary) -> str:
    """The paper's headline claim, measured on this reproduction."""
    return "\n".join([
        f"L2QBAL mean normalised F-score          : {summary.l2qbal_f_score:.3f}",
        (f"Best algorithmic baseline ({summary.best_algorithmic_baseline})"
         f"          : {summary.best_algorithmic_f_score:.3f}"),
        f"Manual baseline (MQ)                     : {summary.manual_f_score:.3f}",
        (f"Improvement over best algorithmic       : "
         f"{summary.improvement_over_algorithmic * 100:.1f}% (paper: ~16%)"),
        (f"Improvement over manual                 : "
         f"{summary.improvement_over_manual * 100:.1f}% (paper: ~10%)"),
    ])
