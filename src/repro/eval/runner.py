"""Experiment orchestration: splits, domain preparation, harvesting, scoring.

:class:`ExperimentRunner` reproduces the paper's evaluation protocol
(Sect. VI-A):

1. split the entities of a domain into domain / validation / test sets;
2. train the per-aspect classifiers (whose output the learner treats as the
   relevance function ``Y``);
3. run the one-off domain phase per aspect on the domain entities' pages;
4. for every test entity and aspect, run the harvesting loop with each
   method and with the infeasible *ideal* upper bound;
5. report precision / recall / F-score normalised against the ideal,
   averaged over entities, aspects and repeated splits.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aspects.classifier import AspectClassifierSuite
from repro.aspects.relevance import ClassifierRelevance, OracleRelevance, RelevanceFunction
from repro.baselines.adaptive_querying import AdaptiveQueryingSelection
from repro.baselines.harvest_rate import HarvestRateSelection, HarvestRateStatistics
from repro.baselines.lm_feedback import LanguageModelFeedbackSelection
from repro.baselines.manual import ManualQuerySelection
from repro.baselines.oracle import IdealSelection
from repro.core.config import L2QConfig
from repro.core.domain_phase import DomainModel, DomainPhase
from repro.core.harvester import HarvestJob, HarvestResult, Harvester
from repro.core.selection import QuerySelector, make_selector, selector_names
from repro.corpus.corpus import Corpus
from repro.dedup.waste import DuplicateWasteScorer
from repro.eval.metrics import HarvestMetrics, MetricSeries, compute_metrics
from repro.eval.splits import EntitySplit, split_entities, subsample_entities
from repro.exec.backends import ExecutionBackend, resolve_backend
from repro.exec.specs import (
    CorpusSpec,
    HarvestBatchOutcome,
    HarvestBatchSpec,
    HarvestJobSpec,
    HarvestTaskContext,
    _ProcessLocalCache,
    reserve_base_slots,
)
from repro.perf import recorder as perf_recorder
from repro.perf.timer import PerfRecorder
from repro.search.engine import FetchStatistics, SearchEngine, merge_run_accounting
from repro.store import (
    MODE_OFF,
    CorpusStoreWriter,
    StoreError,
    StoreHandle,
    release,
)
from repro.store import resolve_mode as resolve_store_mode
from repro.corpus.synthetic import CorpusConfig
from repro.utils.rng import derive_seed

#: Methods that consume the domain phase output.
DOMAIN_AWARE_METHODS = frozenset({"P+q", "R+q", "P+t", "R+t", "L2QP", "L2QR", "L2QBAL", "HR"})
#: Baseline method names handled outside the core selector registry.
BASELINE_METHODS = frozenset({"LM", "AQ", "HR", "MQ", "IDEAL"})


@dataclass
class PreparedSplit:
    """Everything derived from one entity split, ready for harvesting."""

    split: EntitySplit
    corpus: Corpus
    domain_corpus: Corpus
    classifier_suite: AspectClassifierSuite
    relevance_by_aspect: Dict[str, RelevanceFunction]
    ground_truth_by_aspect: Dict[str, RelevanceFunction]
    engine: SearchEngine
    config: L2QConfig
    domain_fraction: float = 1.0
    #: True when the classifier suite was attached from a published store
    #: instead of trained (the zero-retrain guarantee probed by outcomes).
    classifier_attached: bool = False
    _domain_models: Dict[str, DomainModel] = field(default_factory=dict)
    _hr_statistics: Dict[str, HarvestRateStatistics] = field(default_factory=dict)

    def domain_model(self, aspect: str) -> DomainModel:
        """Lazily learn (and cache) the domain model for one aspect."""
        model = self._domain_models.get(aspect)
        if model is None:
            phase = DomainPhase(self.domain_corpus, self.config)
            model = phase.learn(aspect, self.relevance_by_aspect[aspect])
            self._domain_models[aspect] = model
        return model

    def hr_statistics(self, aspect: str) -> HarvestRateStatistics:
        """Lazily compute (and cache) the HR baseline statistics for one aspect."""
        stats = self._hr_statistics.get(aspect)
        if stats is None:
            stats = HarvestRateStatistics.from_corpus(
                self.domain_corpus, self.relevance_by_aspect[aspect], self.config)
            self._hr_statistics[aspect] = stats
        return stats


@dataclass
class EfficiencyReport:
    """Per-method selection time vs fetch time (the Fig. 14 rows).

    ``cache_hit_rates`` reports, per method, the fraction of engine-cache
    lookups the method's own runs answered from cache.  Every method is
    timed against *cold* caches (a fresh prepared split per method), so a
    method's hit rate reflects only its own query-repetition behaviour —
    not what an earlier-measured method happened to warm.
    """

    selection_seconds: Dict[str, float]
    fetch_seconds: float
    queries_measured: Dict[str, int]
    cache_hit_rates: Dict[str, float] = field(default_factory=dict)


@dataclass
class EvaluationSeries:
    """Both views of one evaluation: ideal-normalised and absolute.

    ``normalized`` divides each metric by the infeasible ideal selector's
    score (the paper's presentation); ``absolute`` is the raw metric.  A
    scenario can *raise* a normalised score purely because the ideal
    denominator degrades — the absolute view makes that visible.  Both are
    folded from the same harvest runs, so asking for both costs nothing
    extra.

    ``duplicate_waste`` maps method → budget → mean fraction of fetched
    pages that were exact or near-duplicate re-fetches (see
    :class:`~repro.dedup.waste.DuplicateWasteScorer`); lower is better.
    ``fetch_statistics`` is the batch-level fetch accounting merged from
    every harvest run's own records — identical across execution backends
    by construction (it reads result payloads, never live engines).
    """

    normalized: Dict[str, MetricSeries]
    absolute: Dict[str, MetricSeries]
    duplicate_waste: Dict[str, Dict[int, float]] = field(default_factory=dict)
    fetch_statistics: FetchStatistics = field(default_factory=FetchStatistics)


class ExperimentRunner:
    """Runs the paper's evaluation protocol over one corpus.

    ``backend`` picks the execution engine for the harvesting runs (a
    registered name, an :class:`ExecutionBackend` instance, or ``None`` for
    the historical ``workers`` semantics: 1 = serial, N = thread pool).
    Per-run seeds are derived from ``(base_seed, split, method, entity,
    aspect)`` and never from execution order, so every backend and worker
    count yields identical results.

    Distributed (process) backends shard **split-first** when
    ``corpus_spec`` describes how workers can rebuild the corpus: every
    split's job specs travel as one
    :class:`~repro.exec.specs.HarvestBatchSpec`, so each worker prepares
    and trains classifiers for exactly one split per batch (see
    :func:`plan_harvest_batches` for the ``workers > num_splits``
    page-batch fallback).  Without a spec they fall back to pickling the
    live harvester and jobs, which is correct but heavier.
    """

    def __init__(self, corpus: Corpus, config: Optional[L2QConfig] = None,
                 base_seed: int = 99, workers: int = 1,
                 backend: Union[None, str, ExecutionBackend] = None,
                 corpus_spec: Optional[CorpusSpec] = None,
                 corpus_store: str = "auto") -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.corpus = corpus
        self.config = config if config is not None else L2QConfig()
        self.config.validate()
        self.base_seed = base_seed
        self.workers = workers
        self.backend = resolve_backend(backend, workers=workers)
        self.corpus_spec = corpus_spec
        #: Shared corpus store policy for distributed dispatches:
        #: ``auto`` (probe shm, else mmap), ``off``, ``shm`` or ``mmap``.
        self.corpus_store = corpus_store
        if corpus_store != MODE_OFF:
            resolve_store_mode(corpus_store)  # validate eagerly
        self._store_handle: Optional[StoreHandle] = None
        self._store_failed = False
        self._corpus_digest: Optional[str] = None
        #: Probes of the last distributed dispatch (split-first sharding):
        #: one :class:`~repro.exec.specs.HarvestBatchOutcome` per executed
        #: batch, carrying worker pid, split index and how many prepared
        #: runtimes the batch built.  Instrumentation for tests and perf
        #: accounting; empty until a distributed evaluation ran.
        self.last_batch_outcomes: List[HarvestBatchOutcome] = []

    # -- Preparation ------------------------------------------------------------
    def prepare(self, split: EntitySplit, domain_fraction: float = 1.0) -> PreparedSplit:
        """Prepare one split: train classifiers and set up the engine.

        ``domain_fraction`` subsamples the entities visible to the *domain
        phase* only (Fig. 11); the aspect classifiers are always trained on
        the full domain half, mirroring the paper where the classifier is a
        fixed, pre-trained component.
        """
        rec = perf_recorder()
        if rec is None:
            return self._prepare(split, domain_fraction)
        with rec.phase("split-prepare", split_seed=split.seed,
                       domain_fraction=domain_fraction):
            return self._prepare(split, domain_fraction)

    def _prepare(self, split: EntitySplit, domain_fraction: float) -> PreparedSplit:
        suite, classifier_attached = self._classifier_suite(split)

        if domain_fraction >= 1.0:
            domain_entity_ids: Sequence[str] = split.domain_entities
        else:
            domain_entity_ids = subsample_entities(
                split.domain_entities, domain_fraction,
                seed=derive_seed(self.base_seed, "domain-fraction", split.seed))
        domain_corpus = self.corpus.subset(domain_entity_ids) if domain_entity_ids \
            else self.corpus.subset([])

        relevance = {aspect: ClassifierRelevance(aspect, suite)
                     for aspect in self.corpus.aspects}
        ground_truth = {aspect: OracleRelevance(aspect) for aspect in self.corpus.aspects}
        engine = SearchEngine(self.corpus, ranker=self.config.ranker,
                              top_k=self.config.top_k, mu=self.config.dirichlet_mu)
        return PreparedSplit(
            split=split,
            corpus=self.corpus,
            domain_corpus=domain_corpus,
            classifier_suite=suite,
            relevance_by_aspect=relevance,
            ground_truth_by_aspect=ground_truth,
            engine=engine,
            config=self.config,
            domain_fraction=domain_fraction,
            classifier_attached=classifier_attached,
        )

    def _classifier_key(self, split: EntitySplit) -> str:
        """Store key of this split's trained suite (shared orchestrator/worker)."""
        return str(derive_seed(self.base_seed, "classifier", split.seed))

    def _classifier_suite(self, split: EntitySplit
                          ) -> Tuple[AspectClassifierSuite, bool]:
        """Attach the split's trained suite from the store, else train it.

        A store-backed corpus may carry suites published at dispatch
        (:meth:`_ensure_store`); attaching one is zero-copy and skips both
        the training pass *and* realising the classifier corpus subset.
        Any :class:`~repro.store.StoreError` — no classifier block, unknown
        key, failed digest check — falls back to the bit-identical retrain
        path.  Returns ``(suite, attached)``.
        """
        rec = perf_recorder()
        attach_source = getattr(self.corpus, "classifier_suite", None)
        if attach_source is not None:
            try:
                if rec is None:
                    return attach_source(self._classifier_key(split)), True
                with rec.phase("classifier-attach", split_seed=split.seed):
                    return attach_source(self._classifier_key(split)), True
            except StoreError:
                pass
        if rec is None:
            return self._train_classifier_suite(split), False
        with rec.phase("classifier-train", split_seed=split.seed):
            return self._train_classifier_suite(split), False

    def _train_classifier_suite(self, split: EntitySplit) -> AspectClassifierSuite:
        """Train the split's suite on the domain half (the reference path)."""
        global _CLASSIFIER_TRAININGS
        _CLASSIFIER_TRAININGS += 1
        classifier_corpus = self.corpus.subset(split.domain_entities) \
            if split.domain_entities else self.corpus.subset(split.test_entities)
        return AspectClassifierSuite.train_on_corpus(
            classifier_corpus,
            seed=derive_seed(self.base_seed, "classifier", split.seed))

    def default_split(self, split_seed: int = 0) -> EntitySplit:
        """The canonical 50/25/25 split of this corpus's entities."""
        return split_entities(self.corpus.entity_ids(),
                              seed=derive_seed(self.base_seed, "split", split_seed))

    # -- Selector creation ----------------------------------------------------------
    def create_selector(self, method: str, prepared: PreparedSplit,
                        aspect: str) -> QuerySelector:
        """Create a fresh selector instance for one harvesting run."""
        if method in selector_names():
            return make_selector(method, self.config)
        if method == "LM":
            return LanguageModelFeedbackSelection()
        if method == "AQ":
            return AdaptiveQueryingSelection()
        if method == "HR":
            return HarvestRateSelection(prepared.hr_statistics(aspect))
        if method == "MQ":
            return ManualQuerySelection(self.corpus.domain_spec)
        if method == "IDEAL":
            return IdealSelection(prepared.ground_truth_by_aspect[aspect])
        raise KeyError(f"unknown method {method!r}")

    def job_spec(self, split: EntitySplit, method: str, entity_id: str,
                 aspect: str, num_queries: int) -> HarvestJobSpec:
        """The picklable configuration of one harvesting run.

        The seed derives from ``(base_seed, split, method, entity, aspect)``
        — never from execution order — so the spec reproduces the same run
        in this process or any worker.
        """
        return HarvestJobSpec(
            method=method,
            entity_id=entity_id,
            aspect=aspect,
            num_queries=num_queries,
            seed=derive_seed(self.base_seed, "harvest", split.seed,
                             method, entity_id, aspect),
        )

    def job_from_spec(self, prepared: PreparedSplit,
                      spec: HarvestJobSpec) -> HarvestJob:
        """Resolve a :class:`HarvestJobSpec` into a live, single-use job.

        Everything a job needs — selector instance, domain model, HR
        statistics — is resolved here, on the calling thread, so executing
        the job later on a worker pool touches no lazily-built shared state.
        """
        selector = self.create_selector(spec.method, prepared, spec.aspect)
        domain_model = (prepared.domain_model(spec.aspect)
                        if spec.method in DOMAIN_AWARE_METHODS else None)
        relevance = (prepared.ground_truth_by_aspect[spec.aspect]
                     if spec.method == "IDEAL"
                     else prepared.relevance_by_aspect[spec.aspect])
        return HarvestJob(
            entity_id=spec.entity_id,
            aspect=spec.aspect,
            selector=selector,
            relevance=relevance,
            num_queries=spec.num_queries,
            domain_model=domain_model,
            seed=spec.seed,
        )

    def build_job(self, prepared: PreparedSplit, method: str, entity_id: str,
                  aspect: str, num_queries: int) -> HarvestJob:
        """Assemble one single-use harvesting job for (method, entity, aspect)."""
        return self.job_from_spec(
            prepared,
            self.job_spec(prepared.split, method, entity_id, aspect, num_queries))

    def harvester_for(self, prepared: PreparedSplit) -> Harvester:
        """A harvester over this corpus and the split's engine."""
        return Harvester(self.corpus, prepared.engine, self.config)

    # -- Single harvest -------------------------------------------------------------
    def harvest_once(self, prepared: PreparedSplit, method: str, entity_id: str,
                     aspect: str, num_queries: int) -> HarvestResult:
        """Run one harvesting loop for (method, entity, aspect)."""
        job = self.build_job(prepared, method, entity_id, aspect, num_queries)
        return self.harvester_for(prepared).harvest_job(job)

    # -- Full evaluation ----------------------------------------------------------------
    def evaluate_methods(self, methods: Sequence[str],
                         num_queries_list: Sequence[int] = (2, 3, 4, 5),
                         num_splits: int = 1,
                         domain_fraction: float = 1.0,
                         max_test_entities: Optional[int] = None,
                         aspects: Optional[Sequence[str]] = None,
                         normalize: bool = True) -> Dict[str, MetricSeries]:
        """Evaluate methods over test entities, aspects and repeated splits.

        Returns one :class:`MetricSeries` per method with ideal-normalised
        (or, with ``normalize=False``, absolute) precision, recall and
        F-score per query budget.
        """
        primary, _, _, _ = self._evaluate_collect(
            methods, num_queries_list=num_queries_list, num_splits=num_splits,
            domain_fraction=domain_fraction, max_test_entities=max_test_entities,
            aspects=aspects, normalize=normalize)
        return primary

    def evaluate_methods_detailed(self, methods: Sequence[str],
                                  num_queries_list: Sequence[int] = (2, 3, 4, 5),
                                  num_splits: int = 1,
                                  domain_fraction: float = 1.0,
                                  max_test_entities: Optional[int] = None,
                                  aspects: Optional[Sequence[str]] = None
                                  ) -> EvaluationSeries:
        """Evaluate methods and return normalised *and* absolute series.

        Both views — plus the ``duplicate_waste`` metric and the merged
        fetch accounting — are folded from the same harvest runs (no extra
        harvesting over :meth:`evaluate_methods`).
        """
        normalized, absolute, waste, fetch = self._evaluate_collect(
            methods, num_queries_list=num_queries_list, num_splits=num_splits,
            domain_fraction=domain_fraction, max_test_entities=max_test_entities,
            aspects=aspects, normalize=True, collect_waste=True)
        return EvaluationSeries(normalized=normalized, absolute=absolute,
                                duplicate_waste=waste, fetch_statistics=fetch)

    def _evaluate_collect(self, methods: Sequence[str],
                          num_queries_list: Sequence[int],
                          num_splits: int, domain_fraction: float,
                          max_test_entities: Optional[int],
                          aspects: Optional[Sequence[str]],
                          normalize: bool,
                          collect_waste: bool = False
                          ) -> Tuple[Dict[str, MetricSeries],
                                     Dict[str, MetricSeries],
                                     Dict[str, Dict[int, float]],
                                     FetchStatistics]:
        """Shared evaluation loop; returns ``(primary, absolute, waste, fetch)``.

        ``primary`` is ideal-normalised when ``normalize`` is set,
        otherwise identical to ``absolute``.  ``waste`` is the per-method
        mean duplicate-waste per budget (empty unless ``collect_waste``,
        which the figure paths skip — fingerprinting pages is pure
        overhead there).  ``fetch`` merges every run's own accounting.
        """
        if not methods:
            raise ValueError("at least one method is required")
        budgets = sorted(set(num_queries_list))
        max_budget = budgets[-1]
        aspect_list = list(aspects) if aspects is not None else list(self.corpus.aspects)

        primary: Dict[str, Dict[int, List[HarvestMetrics]]] = {
            method: {k: [] for k in budgets} for method in methods
        }
        absolute: Dict[str, Dict[int, List[HarvestMetrics]]] = {
            method: {k: [] for k in budgets} for method in methods
        }
        waste: Dict[str, Dict[int, List[float]]] = {
            method: {k: [] for k in budgets} for method in methods
        }
        scorer = DuplicateWasteScorer(self.corpus, self.config) \
            if collect_waste else None
        accountings: List = []

        # Pass 1 — build every split's job specs up front.  One batch per
        # split: every (method, entity, aspect) run plus the ideal
        # upper-bound runs.  Specs and results stay in the same
        # deterministic order, so metric folding is independent of
        # scheduling.
        split_batches: List[Tuple[EntitySplit,
                                  List[Tuple[str, str, List[str]]],
                                  List[HarvestJobSpec]]] = []
        for split_index in range(num_splits):
            split = self.default_split(split_index)
            test_entities = list(split.test_entities)
            if max_test_entities is not None:
                test_entities = test_entities[:max_test_entities]

            targets: List[Tuple[str, str, List[str]]] = []
            specs: List[HarvestJobSpec] = []
            for aspect in aspect_list:
                for entity_id in test_entities:
                    relevant = [p.page_id
                                for p in self.corpus.relevant_pages(entity_id, aspect)]
                    if not relevant:
                        continue
                    targets.append((aspect, entity_id, relevant))
                    if normalize:
                        specs.append(self.job_spec(split, "IDEAL", entity_id,
                                                   aspect, max_budget))
                    for method in methods:
                        specs.append(self.job_spec(split, method, entity_id,
                                                   aspect, max_budget))
            split_batches.append((split, targets, specs))

        # Pass 2 — dispatch all splits at once (split-first on distributed
        # backends: each worker prepares a split at most once), then fold.
        results_per_split = self._run_all_splits(
            [(split, specs) for split, _, specs in split_batches],
            domain_fraction)

        for (split, targets, specs), split_results in zip(split_batches,
                                                          results_per_split):
            accountings.extend(run.fetch_accounting for run in split_results)
            results = iter(split_results)

            for aspect, entity_id, relevant in targets:
                ideal_by_budget: Dict[int, HarvestMetrics] = {}
                if normalize:
                    ideal_run = next(results)
                    ideal_by_budget = {
                        k: compute_metrics(ideal_run.gathered_after(k), relevant)
                        for k in budgets
                    }
                for method in methods:
                    run = next(results)
                    run_waste = (scorer.waste_by_budget(run, budgets)
                                 if scorer is not None else None)
                    for k in budgets:
                        metrics = compute_metrics(run.gathered_after(k), relevant)
                        absolute[method][k].append(metrics)
                        if run_waste is not None:
                            waste[method][k].append(run_waste[k])
                        if normalize:
                            metrics = metrics.normalized_by(ideal_by_budget[k])
                        primary[method][k].append(metrics)

        waste_series = {
            method: {k: (sum(values) / len(values) if values else 0.0)
                     for k, values in waste[method].items()}
            for method in methods
        } if collect_waste else {}
        return ({method: _series_from(method, primary[method]) for method in methods},
                {method: _series_from(method, absolute[method]) for method in methods},
                waste_series,
                merge_run_accounting(accountings))

    # -- Shared corpus store --------------------------------------------------------
    def _ensure_store(self, splits: Sequence[EntitySplit] = ()
                      ) -> Optional[StoreHandle]:
        """Publish this runner's corpus once for workers to attach.

        Only meaningful when the dispatch is distributed, a ``corpus_spec``
        exists and it describes the *clean* corpus (a scenario spec's store
        would have to hold the unperturbed base, which this runner does not
        have).  Publishing streams the live corpus — entities plus pages in
        sorted id order — through a store writer whose incremental digest is
        checked against :attr:`_corpus_digest`, so the published bytes are
        provably the corpus the metrics fold against.

        ``splits`` are the entity splits of the imminent dispatch: each
        split's aspect-classifier suite is trained **once** here (the
        train-once/attach-many side of the classifier vectorization) and
        published alongside the corpus, so workers attach trained suites
        zero-copy instead of retraining per (worker, split).  Publish
        failures latch: the run silently continues on the rebuild path.
        """
        if self._store_handle is not None:
            return self._store_handle
        if (self._store_failed or self.corpus_store == MODE_OFF
                or self.corpus_spec is None
                or self.corpus_spec.scenario is not None):
            return None
        spec = self.corpus_spec
        config = CorpusConfig(domain=spec.domain,
                              num_entities=spec.num_entities,
                              pages_per_entity=spec.pages_per_entity,
                              seed=spec.seed)
        rec = perf_recorder()
        try:
            suites = []
            for split in splits:
                if rec is None:
                    suite = self._train_classifier_suite(split)
                else:
                    with rec.phase("classifier-train", split_seed=split.seed):
                        suite = self._train_classifier_suite(split)
                suites.append((self._classifier_key(split), suite))

            def publish() -> StoreHandle:
                writer = CorpusStoreWriter(config, self.corpus.entities)
                writer.add_pages(self.corpus.iter_pages())
                for key, suite in suites:
                    writer.add_classifier_suite(key, suite)
                handle = writer.publish(mode=self.corpus_store)
                if (self._corpus_digest is not None
                        and handle.digest != self._corpus_digest):
                    release(handle)
                    raise StoreError(
                        f"published digest {handle.digest} does not match "
                        f"the runner's corpus digest {self._corpus_digest}")
                return handle

            if rec is None:
                self._store_handle = publish()
            else:
                with rec.phase("store-publish", domain=spec.domain):
                    self._store_handle = publish()
        except StoreError:
            self._store_failed = True
            return None
        return self._store_handle

    def _dispatch_spec(self, splits: Sequence[EntitySplit] = ()
                       ) -> Optional[CorpusSpec]:
        """The corpus spec workers receive: with a store handle when published."""
        handle = self._ensure_store(splits)
        if handle is None:
            return self.corpus_spec
        return replace(self.corpus_spec, store_handle=handle)

    def release_store(self) -> None:
        """Unlink the published store, if any (idempotent).

        Attached workers keep their mappings; only new attaches stop
        resolving (and fall back to rebuilding).  Also called automatically
        at interpreter exit via the store module's cleanup hook.
        """
        if self._store_handle is not None:
            release(self._store_handle)
            self._store_handle = None
            self._store_failed = False

    def _run_all_splits(self, split_specs: List[Tuple[EntitySplit,
                                                      List[HarvestJobSpec]]],
                        domain_fraction: float) -> List[List[HarvestResult]]:
        """Execute every split's job specs; returns results grouped by split.

        On a distributed backend with a known ``corpus_spec``, the batches
        are sharded **split-first**: :func:`plan_harvest_batches` emits one
        :class:`~repro.exec.specs.HarvestBatchSpec` per split (each worker
        prepares and trains classifiers for exactly one split at a time),
        falling back to cutting splits into contiguous page batches when
        ``workers > num_splits`` so no worker idles.  Batches are
        dispatched with work-stealing scheduling
        (:meth:`~repro.exec.backends.ExecutionBackend.map_tasks`) and the
        executed :class:`~repro.exec.specs.HarvestBatchOutcome` probes are
        kept on :attr:`last_batch_outcomes` for preparation accounting.

        In-process backends (and distributed ones without a spec, which
        fall back to pickling live jobs) prepare each split locally and
        delegate its batch to :meth:`Harvester.harvest_many`, exactly one
        preparation per split.
        """
        if self.backend.distributed and self.corpus_spec is not None:
            if self._corpus_digest is None:
                # Computed once per runner and shipped with every context:
                # workers refuse to harvest a rebuilt corpus that does not
                # match the corpus the metrics will be folded against.
                self._corpus_digest = self.corpus.content_digest()
            dispatch_spec = self._dispatch_spec(
                [split for split, _ in split_specs])
            payloads = plan_harvest_batches(
                [(HarvestTaskContext(
                    corpus=dispatch_spec,
                    config=self.config,
                    base_seed=self.base_seed,
                    split_index=split_index,
                    domain_fraction=domain_fraction,
                    corpus_digest=self._corpus_digest,
                ), specs) for split_index, (_, specs) in enumerate(split_specs)],
                self.backend.workers)
            outcomes = self.backend.map_tasks(execute_harvest_batch, payloads)
            self.last_batch_outcomes = list(outcomes)
            rec = perf_recorder()
            if rec is not None:
                # Fold each worker's shipped-home phase aggregates into the
                # active recorder: one weighted sample per (batch, phase),
                # tagged with its origin.
                for outcome in self.last_batch_outcomes:
                    if outcome.perf_phases:
                        rec.record_aggregates(outcome.perf_phases,
                                              worker_pid=outcome.worker_pid,
                                              split=outcome.split_index)
            per_split: List[List[HarvestResult]] = [[] for _ in split_specs]
            for payload, outcome in zip(payloads, outcomes):
                # Payloads are split-major and in-order, so extending per
                # split reassembles each split's results in spec order.
                per_split[payload.context.split_index].extend(outcome.results)
            return per_split
        out: List[List[HarvestResult]] = []
        for split, specs in split_specs:
            prepared = self.prepare(split, domain_fraction=domain_fraction)
            jobs = [self.job_from_spec(prepared, spec) for spec in specs]
            out.append(self.harvester_for(prepared).harvest_many(
                jobs, backend=self.backend))
        return out

    # -- Efficiency (Fig. 14) --------------------------------------------------------------
    def measure_efficiency(self, methods: Sequence[str] = ("L2QP", "L2QR", "L2QBAL"),
                           num_queries: int = 3,
                           max_test_entities: int = 2,
                           aspects: Optional[Sequence[str]] = None,
                           recorder: Optional[PerfRecorder] = None
                           ) -> EfficiencyReport:
        """Measure per-query selection time and (simulated) fetch time.

        Always runs serially regardless of the configured backend or worker
        count: the wall-clock selection times *are* the result here, and
        concurrent runs contending for the interpreter (or a cold per-worker
        engine) would inflate them.

        Every method is measured against **cold** engine state: a freshly
        prepared split (fresh engine, result cache and classifier-relevance
        memos) per method, so no method is timed against caches an
        earlier-measured method warmed.  All samples route through a
        :class:`~repro.perf.PerfRecorder` — pass ``recorder`` to keep the
        raw phase samples (``selection`` / ``fetch`` per query,
        ``fig14-method`` per method batch) — and each method's engine-cache
        hit rate, merged from its runs' own fetch accounting, is reported
        alongside the timings.
        """
        split = self.default_split(0)
        aspect_list = list(aspects) if aspects is not None else list(self.corpus.aspects)[:2]
        test_entities = list(split.test_entities)[:max_test_entities]
        rec = recorder if recorder is not None else PerfRecorder()

        # The report folds only *this call's* samples (a reused recorder
        # may already hold another corpus's fig14 samples under the same
        # method names); ``rec`` additionally keeps every raw sample.
        selection: Dict[str, List[float]] = {m: [] for m in methods}
        queries: Dict[str, int] = {m: 0 for m in methods}
        hit_rates: Dict[str, float] = {}
        fetch: List[float] = []
        for method in methods:
            # A fresh preparation per method: cold engine caches and memos.
            # Harvest results are identical either way (seeds derive from
            # the spec, never from cache state); only the timings differ.
            prepared = self.prepare(split)
            jobs = [self.build_job(prepared, method, entity_id, aspect, num_queries)
                    for aspect in aspect_list
                    for entity_id in test_entities]
            with rec.phase("fig14-method", method=method):
                runs = self.harvester_for(prepared).harvest_many(jobs, workers=1)
            merged = merge_run_accounting([r.fetch_accounting for r in runs])
            hit_rates[method] = merged.cache_hit_rate
            for run in runs:
                for record in run.iterations:
                    rec.record("selection", record.selection_seconds,
                               method=method)
                    rec.record("fetch", record.simulated_fetch_seconds,
                               method=method)
                    selection[method].append(record.selection_seconds)
                    fetch.append(record.simulated_fetch_seconds)
                    queries[method] += 1

        return EfficiencyReport(
            selection_seconds={m: (sum(v) / len(v) if v else 0.0)
                               for m, v in selection.items()},
            fetch_seconds=(sum(fetch) / len(fetch) if fetch else 0.0),
            queries_measured=queries,
            cache_hit_rates=hit_rates,
        )

    # -- Parameter validation --------------------------------------------------------------------
    def validate_seed_recall(self, candidates: Sequence[float] = (0.1, 0.3, 0.5, 0.7),
                             method: str = "L2QBAL", num_queries: int = 3,
                             max_validation_entities: int = 3,
                             aspects: Optional[Sequence[str]] = None) -> Tuple[float, Dict[float, float]]:
        """Choose the seed-recall parameter ``r0`` on the validation entities.

        Mirrors the paper's cross-validation of ``r0`` (Sect. V-A).  Returns
        the best value and the mean F-score of every candidate.
        """
        split = self.default_split(0)
        prepared = self.prepare(split)
        aspect_list = list(aspects) if aspects is not None else list(self.corpus.aspects)[:2]
        validation = list(split.validation_entities)[:max_validation_entities]
        scores: Dict[float, float] = {}
        original = self.config.seed_recall_r0
        try:
            for r0 in candidates:
                self.config.seed_recall_r0 = r0
                relevant_sets: List[List[str]] = []
                jobs: List[HarvestJob] = []
                for aspect in aspect_list:
                    for entity_id in validation:
                        relevant = [p.page_id
                                    for p in self.corpus.relevant_pages(entity_id, aspect)]
                        if not relevant:
                            continue
                        relevant_sets.append(relevant)
                        jobs.append(self.build_job(prepared, method, entity_id,
                                                   aspect, num_queries))
                runs = self.harvester_for(prepared).harvest_many(
                    jobs, backend=self.backend)
                per_run = [compute_metrics(run.gathered_after(num_queries),
                                           relevant).f_score
                           for relevant, run in zip(relevant_sets, runs)]
                scores[r0] = sum(per_run) / len(per_run) if per_run else 0.0
        finally:
            self.config.seed_recall_r0 = original
        best = max(scores, key=lambda r: (scores[r], -r))
        return best, scores


# -- Split-first batch planning ----------------------------------------------------
def plan_harvest_batches(split_payloads: Sequence[Tuple[HarvestTaskContext,
                                                        Sequence[HarvestJobSpec]]],
                         workers: int) -> List[HarvestBatchSpec]:
    """Cut per-split spec lists into split-first batch payloads.

    The sharding policy of the distributed evaluation path:

    * ``workers <= num_splits`` — one batch per split.  Every split is
      prepared exactly once in the whole cluster, by whichever worker
      steals its batch.
    * ``workers > num_splits`` — each split is cut into
      ``ceil(workers / num_splits)`` contiguous *page batches* so every
      worker has work to steal; the split's context travels with every
      batch, so a worker executing several batches of one split still
      prepares it only once (process-local runtime cache).

    Batches are emitted split-major and in spec order, so concatenating
    result lists per ``context.split_index`` reproduces each split's spec
    order regardless of scheduling.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    payloads = [(context, list(specs)) for context, specs in split_payloads]
    num_splits = sum(1 for _, specs in payloads if specs)
    base_slots = len({context.corpus.base_key()
                      for context, specs in payloads if specs})
    pieces_per_split = 1 if num_splits == 0 or workers <= num_splits \
        else -(-workers // num_splits)
    batches: List[HarvestBatchSpec] = []
    for context, specs in payloads:
        if not specs:
            continue
        pieces = min(pieces_per_split, len(specs))
        size = -(-len(specs) // pieces)
        for start in range(0, len(specs), size):
            batches.append(HarvestBatchSpec(
                context=context, specs=tuple(specs[start:start + size]),
                runtime_slots=num_splits, base_slots=base_slots))
    return batches


# -- Distributed worker side -------------------------------------------------------
#: Rebuilt (runner, prepared, harvester) runtimes, cached per worker process
#: so every job of a contiguous shard reuses one corpus, classifier suite
#: and engine.
_TASK_RUNTIMES = _ProcessLocalCache(capacity=4)

#: Process-local count of prepared-runtime *builds* (cache misses in
#: ``_TASK_RUNTIMES``).  The preparation probe: batch outcomes report the
#: delta across their execution, so orchestrators can assert each worker
#: prepared each split at most once.
_RUNTIME_BUILDS = 0


def runtime_build_count() -> int:
    """How many prepared-split runtimes this process has built."""
    return _RUNTIME_BUILDS


#: Process-local count of aspect-classifier suite *trainings*.  The
#: train-once/attach-many probe: with a store carrying published suites,
#: worker batches must report a delta of 0 (attach instead of train).
_CLASSIFIER_TRAININGS = 0


def classifier_training_count() -> int:
    """How many classifier suites this process has trained from scratch."""
    return _CLASSIFIER_TRAININGS


@dataclass
class _TaskRuntime:
    """Everything a worker rebuilds once per (corpus, config, split)."""

    runner: "ExperimentRunner"
    prepared: PreparedSplit
    harvester: Harvester


def _task_runtime(context: HarvestTaskContext) -> _TaskRuntime:
    def build() -> _TaskRuntime:
        global _RUNTIME_BUILDS
        _RUNTIME_BUILDS += 1
        corpus = context.corpus.build()
        if context.corpus_digest is not None:
            # A store-backed corpus carries the publish-time digest, which
            # the publisher already verified against the live corpus —
            # trusting it avoids realising every lazy page just to re-hash.
            digest = getattr(corpus, "store_digest", None)
            if digest is None:
                digest = corpus.content_digest()
            if digest != context.corpus_digest:
                raise ValueError(
                    f"corpus_spec {context.corpus!r} rebuilds a corpus whose "
                    f"digest does not match the orchestrator's corpus; the spec "
                    f"describes a different corpus (stale seed or sizes?)")
        runner = ExperimentRunner(corpus, config=context.config,
                                  base_seed=context.base_seed, workers=1)
        prepared = runner.prepare(runner.default_split(context.split_index),
                                  domain_fraction=context.domain_fraction)
        return _TaskRuntime(runner=runner, prepared=prepared,
                            harvester=runner.harvester_for(prepared))

    return _TASK_RUNTIMES.get_or_build(context.cache_key(), build)


def execute_harvest_batch(batch: HarvestBatchSpec) -> HarvestBatchOutcome:
    """Worker entry point: rebuild one split's world and run its batch.

    Deterministic given the batch alone — the rebuilt corpus, split,
    classifier suite and engine are bit-for-bit what the orchestrating
    process would build, so results are independent of which worker (or
    whether a worker at all) executes the batch.  The outcome carries the
    preparation probe: how many runtimes this batch had to build (0 when
    the worker had already prepared this split for an earlier batch).
    """
    # Room for every split in flight: without this, a worker interleaving
    # work-stolen batches of more splits than the default capacity would
    # evict and re-prepare runtimes it still needs.
    _TASK_RUNTIMES.reserve(batch.runtime_slots)
    # Likewise for the base-corpus and realised-corpus caches: room for
    # every distinct base in the dispatch, so shards touching many
    # (domain, sizes, seed) bases cannot thrash into regeneration cycles.
    reserve_base_slots(batch.base_slots)
    before = _RUNTIME_BUILDS
    trainings_before = _CLASSIFIER_TRAININGS
    rec = perf_recorder()
    perf_mark = rec.mark() if rec is not None else 0
    runtime = _task_runtime(batch.context)
    results = [runtime.harvester.harvest_job(
                   runtime.runner.job_from_spec(runtime.prepared, spec))
               for spec in batch.specs]
    return HarvestBatchOutcome(
        results=results,
        worker_pid=os.getpid(),
        split_index=batch.context.split_index,
        runtime_builds=_RUNTIME_BUILDS - before,
        # This worker's phase timings for exactly this batch, shipped home
        # so the orchestrator's profile covers worker-side work too.
        perf_phases=(rec.aggregates_since(perf_mark)
                     if rec is not None else {}),
        attached=getattr(runtime.runner.corpus, "store_handle", None)
        is not None,
        index_builds=runtime.prepared.engine.index_builds,
        classifier_trainings=_CLASSIFIER_TRAININGS - trainings_before,
        classifier_attached=runtime.prepared.classifier_attached,
    )


def _series_from(method: str, per_budget: Dict[int, List[HarvestMetrics]]) -> MetricSeries:
    precision: Dict[int, float] = {}
    recall: Dict[int, float] = {}
    f_score: Dict[int, float] = {}
    for budget, metrics in per_budget.items():
        if metrics:
            precision[budget] = sum(m.precision for m in metrics) / len(metrics)
            recall[budget] = sum(m.recall for m in metrics) / len(metrics)
            f_score[budget] = sum(m.f_score for m in metrics) / len(metrics)
        else:
            precision[budget] = 0.0
            recall[budget] = 0.0
            f_score[budget] = 0.0
    return MetricSeries(method=method, precision=precision, recall=recall, f_score=f_score)
