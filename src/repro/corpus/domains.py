"""Domain specifications for the two evaluation domains of the paper.

The paper evaluates on *researchers* (996 prolific DBLP authors) and *cars*
(143 consumer models released in 2009), each with seven target aspects
(Fig. 9).  Since the original crawled Web corpus is unavailable, each domain
is described here declaratively — aspects with paragraph templates, a type
inventory with word pools, entity naming and seed-query rules — and the
synthetic generator (:mod:`repro.corpus.synthetic`) instantiates concrete
entities and pages from the specification.

The specification is deliberately structured so that the phenomena the paper
relies on are present:

* **Entity variation** (Fig. 3): aspect paragraphs mention *entity-specific*
  attribute values (topics, venues, trims, engines, ...), so the concrete
  useful queries differ across peer entities.
* **Template consistency**: those values are all drawn from shared
  knowledge-base types, so the useful *templates* (e.g. ``<topic> <journal>``)
  are consistent across the domain.
* **Redundancy**: several templates for the same aspect reuse the same
  attribute values, so different queries retrieve overlapping page sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.corpus.knowledge_base import TypeSystem, build_type_system


@dataclass(frozen=True)
class AspectSpec:
    """Specification of one target aspect of a domain.

    Attributes
    ----------
    name:
        Aspect name, e.g. ``"RESEARCH"``.
    weight:
        Relative frequency of paragraphs about this aspect, proportional to
        the paragraph counts reported in the paper's Fig. 9.
    sentence_templates:
        Paragraph sentence patterns.  Each template is a whitespace-separated
        token string in which ``{type}`` slots are filled with one of the
        entity's attribute values of that type and ``{~type}`` slots are
        filled with a random value from the domain-wide pool (modelling
        mentions of other entities / noise).
    signature_words:
        Generic (entity-independent) words characteristic of the aspect.
    manual_queries:
        Up to five generic queries a human would type for this aspect,
        used by the MQ baseline (Sect. VI-C).
    """

    name: str
    weight: float
    sentence_templates: Tuple[str, ...]
    signature_words: Tuple[str, ...]
    manual_queries: Tuple[Tuple[str, ...], ...]


@dataclass(frozen=True)
class TypePool:
    """A knowledge-base type together with its domain word pool.

    Attributes
    ----------
    name:
        Type name, e.g. ``"topic"``.
    words:
        Hand-written pool of realistic values.
    synthetic_count:
        Number of additional synthetic values (``"<name>_NN"``) appended to
        the pool so that entities rarely collide on attribute values even in
        large corpora.
    per_entity:
        How many values each entity samples from the pool as its own
        attributes (0 means the type exists in the knowledge base but is not
        an entity attribute).
    """

    name: str
    words: Tuple[str, ...]
    synthetic_count: int = 0
    per_entity: int = 0


@dataclass(frozen=True)
class DomainSpec:
    """Full declarative specification of a domain."""

    name: str
    aspects: Tuple[AspectSpec, ...]
    type_pools: Tuple[TypePool, ...]
    background_templates: Tuple[str, ...]
    first_name_pool: Tuple[str, ...]
    last_name_pool: Tuple[str, ...]
    seed_attribute_types: Tuple[str, ...]
    generic_words: Tuple[str, ...] = field(default=())

    def aspect_names(self) -> List[str]:
        """Names of all target aspects, in specification order."""
        return [a.name for a in self.aspects]

    def aspect(self, name: str) -> AspectSpec:
        """Return the aspect spec with the given name."""
        for aspect in self.aspects:
            if aspect.name == name:
                return aspect
        raise KeyError(f"unknown aspect {name!r} in domain {self.name!r}")

    def type_pool(self, name: str) -> TypePool:
        """Return the type pool with the given name."""
        for pool in self.type_pools:
            if pool.name == name:
                return pool
        raise KeyError(f"unknown type {name!r} in domain {self.name!r}")

    def expanded_pools(self) -> Dict[str, Tuple[str, ...]]:
        """Return each type's full word pool including synthetic values."""
        pools: Dict[str, Tuple[str, ...]] = {}
        for pool in self.type_pools:
            synthetic = tuple(
                f"{pool.name}_{index:03d}" for index in range(pool.synthetic_count)
            )
            pools[pool.name] = tuple(pool.words) + synthetic
        return pools

    def build_type_system(self) -> TypeSystem:
        """Materialise the knowledge base (dictionary + regex types)."""
        dictionary = {name: list(words) for name, words in self.expanded_pools().items()}
        return build_type_system(dictionary)

    def manual_queries(self, aspect: str) -> List[Tuple[str, ...]]:
        """The MQ baseline queries for ``aspect``."""
        return [tuple(q) for q in self.aspect(aspect).manual_queries]


# ---------------------------------------------------------------------------
# Researcher domain
# ---------------------------------------------------------------------------

_RESEARCHER_FIRST_NAMES = (
    "alan", "barbara", "carlos", "diana", "edward", "fatima", "george", "helen",
    "ivan", "julia", "kevin", "laura", "martin", "nadia", "oscar", "priya",
    "qiang", "rachel", "stefan", "tanya", "umar", "vera", "wei", "xiaoming",
    "yuki", "zoltan", "andre", "bianca", "chen", "dmitri", "elena", "farid",
)

_RESEARCHER_LAST_NAMES = (
    "anderson", "baker", "chen", "dubois", "evans", "fischer", "garcia", "huang",
    "ivanov", "johnson", "kumar", "larsen", "moreau", "nakamura", "olsen",
    "patel", "qureshi", "rossi", "schmidt", "tanaka", "ueda", "vasquez",
    "wagner", "xu", "yamamoto", "zhang", "brooks", "castillo", "dawson",
    "eriksen", "foster", "grant", "harper", "ingram", "jensen", "keller",
)

_TOPICS = (
    "parallel computing", "data mining", "machine learning", "databases",
    "information retrieval", "computer vision", "natural language processing",
    "distributed systems", "computer networks", "operating systems",
    "computational complexity", "graph algorithms", "cryptography",
    "computer security", "software engineering", "programming languages",
    "human computer interaction", "bioinformatics", "robotics",
    "reinforcement learning", "deep learning", "query optimization",
    "stream processing", "cloud computing", "sensor networks",
    "social network analysis", "recommender systems", "knowledge graphs",
    "computer architecture", "high performance computing", "compilers",
    "formal verification", "quantum computing", "numerical analysis",
    "computational geometry", "speech recognition", "text mining",
    "transfer learning", "crowdsourcing", "data integration",
)

_JOURNALS = (
    "tkde", "jmlr", "ijhpca", "tods", "vldb journal", "tois", "tocs", "jacm",
    "tpami", "tissec", "jair", "tcs journal", "sicomp", "toplas", "tochi",
    "bioinformatics journal", "tkdd", "tweb", "tist", "pvldb",
)

_CONFERENCES = (
    "icde", "sigmod", "vldb", "kdd", "icml", "nips", "sigir", "www", "acl",
    "emnlp", "cvpr", "iccv", "sosp", "osdi", "nsdi", "podc", "focs", "stoc",
    "chi", "icse", "pldi", "popl", "aaai", "ijcai", "cikm", "wsdm", "recsys",
)

_INSTITUTES = (
    "uiuc", "stanford", "mit", "cmu", "berkeley", "cornell", "princeton",
    "gatech", "umich", "uwashington", "ucla", "usc", "columbia", "nyu",
    "eth zurich", "epfl", "oxford", "cambridge", "tsinghua", "pku",
    "nus", "ntu singapore", "hkust", "kaist", "toronto", "waterloo",
    "ibm research", "microsoft research", "google research", "bell labs",
    "baidu research", "yahoo labs", "att labs", "adsc singapore",
)

_AWARDS = (
    "acm fellow", "ieee fellow", "turing award", "best paper award",
    "test of time award", "sloan fellowship", "nsf career award",
    "distinguished scientist", "sigmod contributions award",
    "dissertation award", "young investigator award", "humboldt award",
)

_DEGREES = ("phd", "msc", "bsc", "postdoc")

_LOCATIONS = (
    "urbana", "champaign", "palo alto", "seattle", "pittsburgh", "boston",
    "singapore", "beijing", "zurich", "london", "new york", "san francisco",
    "mountain view", "austin", "atlanta", "toronto", "hong kong", "tokyo",
)

_RESEARCHER_ASPECTS = (
    AspectSpec(
        name="RESEARCH",
        weight=107.0,
        sentence_templates=(
            "he conducts research on {topic} and {topic} systems",
            "her research interests include {topic} and {topic}",
            "he published many papers on {topic} research in {journal}",
            "recent {journal} article presents new results on {topic}",
            "his {topic} paper appeared in {conference} proceedings",
            "the group studies {topic} with applications to {topic}",
            "ongoing research projects focus on {topic} methods",
            "she leads a research project on {topic} funded since {~year}",
            "research on {topic} published in {journal} and {conference}",
            "his work on {topic} is widely cited in the {topic} community",
        ),
        signature_words=("research", "papers", "projects", "interests", "published"),
        manual_queries=(
            ("research",), ("research", "interests"), ("publications",),
            ("papers",), ("research", "projects"),
        ),
    ),
    AspectSpec(
        name="BIOGRAPHY",
        weight=8.0,
        sentence_templates=(
            "short biography he was born in {location} and grew up there",
            "biography sketch he joined {institute} after years in {location}",
            "his bio mentions early life in {location} and a move to {location}",
            "a brief biography of the professor and his career journey",
            "he spent his childhood in {location} before moving abroad",
        ),
        signature_words=("biography", "bio", "born", "life", "career"),
        manual_queries=(
            ("biography",), ("bio",), ("born",), ("career",), ("life", "story"),
        ),
    ),
    AspectSpec(
        name="PRESENTATION",
        weight=10.0,
        sentence_templates=(
            "he gave a keynote talk on {topic} at {conference}",
            "slides of her invited presentation on {topic} are available",
            "tutorial presentation on {topic} delivered at {conference}",
            "the seminar talk covered {topic} and open problems",
            "invited speaker at {conference} presenting {topic} results",
            "download the talk slides about {topic} from the workshop",
        ),
        signature_words=("talk", "keynote", "slides", "presentation", "tutorial", "seminar"),
        manual_queries=(
            ("talk",), ("keynote",), ("slides",), ("presentation",), ("invited", "talk"),
        ),
    ),
    AspectSpec(
        name="AWARD",
        weight=11.0,
        sentence_templates=(
            "he received the {award} for contributions to {topic}",
            "she was named {award} in {~year}",
            "winner of the {award} at {conference}",
            "the {award} recognizes his work on {topic}",
            "honored with the {award} by the society",
            "recipient of the {award} and the {award}",
        ),
        signature_words=("award", "received", "winner", "honored", "recipient", "prize"),
        manual_queries=(
            ("award",), ("distinguished",), ("award", "won"), ("fellow",), ("prize",),
        ),
    ),
    AspectSpec(
        name="EDUCATION",
        weight=11.0,
        sentence_templates=(
            "he obtained his {degree} from {institute} in {~year}",
            "she completed a {degree} degree at {institute}",
            "{degree} in computer science from {institute} advised by professor {person}",
            "graduated with a {degree} from {institute} studying {topic}",
            "his {degree} thesis on {topic} was supervised by {person}",
        ),
        signature_words=("degree", "graduated", "thesis", "studied", "education"),
        manual_queries=(
            ("phd",), ("education",), ("graduated",), ("degree",), ("thesis",),
        ),
    ),
    AspectSpec(
        name="EMPLOYMENT",
        weight=3.0,
        sentence_templates=(
            "he is a professor at {institute} since {~year}",
            "she was a senior manager at {institute} before joining {institute}",
            "currently employed as a research scientist at {institute}",
            "he worked at {institute} in {location} for several years",
            "faculty position at {institute} department of computer science",
        ),
        signature_words=("professor", "employed", "position", "faculty", "worked", "job"),
        manual_queries=(
            ("professor",), ("employment",), ("position",), ("worked",), ("faculty",),
        ),
    ),
    AspectSpec(
        name="CONTACT",
        weight=7.0,
        sentence_templates=(
            "contact him at {email} or call {phonenum}",
            "office located at {location} email {email}",
            "visit his homepage {url} for contact details",
            "phone {phonenum} fax available on request",
            "reach her via {email} office hours by appointment",
        ),
        signature_words=("contact", "email", "office", "phone", "homepage"),
        manual_queries=(
            ("contact",), ("email",), ("office",), ("phone",), ("homepage",),
        ),
    ),
)

_RESEARCHER_BACKGROUND = (
    "visit him at the siebel center on the main campus",
    "the department hosts weekly colloquia open to the public",
    "this page was last updated recently and may contain outdated links",
    "copyright notice all rights reserved by the university",
    "he enjoys hiking photography and classical music on weekends",
    "site navigation home people news events publications contact",
    "the weather in {location} was pleasant during the visit",
    "list of courses taught this semester is posted on the portal",
)

_RESEARCHER_TYPE_POOLS = (
    TypePool("topic", _TOPICS, synthetic_count=60, per_entity=3),
    TypePool("journal", _JOURNALS, synthetic_count=30, per_entity=2),
    TypePool("conference", _CONFERENCES, synthetic_count=30, per_entity=2),
    TypePool("institute", _INSTITUTES, synthetic_count=40, per_entity=1),
    TypePool("award", _AWARDS, synthetic_count=20, per_entity=2),
    TypePool("degree", _DEGREES, synthetic_count=0, per_entity=1),
    TypePool("person", _RESEARCHER_LAST_NAMES, synthetic_count=40, per_entity=1),
    TypePool("location", _LOCATIONS, synthetic_count=20, per_entity=2),
)


def researcher_domain() -> DomainSpec:
    """Return the specification of the researcher domain."""
    return DomainSpec(
        name="researcher",
        aspects=_RESEARCHER_ASPECTS,
        type_pools=_RESEARCHER_TYPE_POOLS,
        background_templates=_RESEARCHER_BACKGROUND,
        first_name_pool=_RESEARCHER_FIRST_NAMES,
        last_name_pool=_RESEARCHER_LAST_NAMES,
        seed_attribute_types=("institute",),
        generic_words=("professor", "university", "computer", "science", "group", "page"),
    )


# ---------------------------------------------------------------------------
# Car domain
# ---------------------------------------------------------------------------

_CAR_MAKES = (
    "acura", "audi", "bmw", "buick", "cadillac", "chevrolet", "chrysler",
    "dodge", "ford", "gmc", "honda", "hyundai", "infiniti", "jaguar", "jeep",
    "kia", "lexus", "lincoln", "mazda", "mercedes", "mini", "mitsubishi",
    "nissan", "pontiac", "porsche", "saab", "saturn", "scion", "subaru",
    "suzuki", "toyota", "volkswagen", "volvo",
)

_CAR_MODEL_WORDS = (
    "sedan", "coupe", "hatchback", "wagon", "crossover", "roadster",
    "series3", "series5", "accord", "civic", "camry", "corolla", "altima",
    "fusion", "malibu", "impala", "sonata", "elantra", "optima", "forte",
    "outback", "legacy", "passat", "jetta", "golf", "mazda3", "mazda6",
    "rav4", "crv", "escape", "equinox", "tucson", "sportage", "rogue",
)

_TRIMS = (
    "base trim", "sport trim", "limited trim", "touring trim", "premium trim",
    "se trim", "le trim", "xle trim", "ex trim", "lx trim", "sel trim",
    "platinum trim", "gt trim", "signature trim",
)

_ENGINES = (
    "v6 engine", "v8 engine", "turbo four", "inline four", "hybrid drive",
    "diesel engine", "flat six", "supercharged v6", "twin turbo", "cvt transmission",
    "six speed manual", "eight speed automatic", "dual clutch gearbox",
)

_FEATURES = (
    "sunroof", "navigation system", "leather seats", "bluetooth", "backup camera",
    "heated seats", "keyless entry", "premium audio", "alloy wheels",
    "adaptive cruise", "lane assist", "panoramic roof", "third row seating",
    "towing package", "remote start", "apple carplay", "fog lights",
)

_SAFETY_FEATURES = (
    "airbags", "stability control", "abs brakes", "traction control",
    "blind spot monitor", "collision warning", "crash test", "rollover rating",
    "child seat anchors", "tire pressure monitor", "side curtain airbags",
)

_RATING_SITES = (
    "edmunds", "kbb", "consumer reports", "jd power", "motor trend",
    "car and driver", "nhtsa", "iihs", "autoblog", "truecar",
)

_DEALERS = (
    "downtown motors", "city auto mall", "lakeside dealership", "metro cars",
    "sunrise autos", "valley imports", "summit auto group", "riverside motors",
)

_CAR_LOCATIONS = (
    "detroit", "chicago", "los angeles", "houston", "phoenix", "denver",
    "miami", "seattle", "atlanta", "dallas", "portland", "boston",
)

_CAR_ASPECTS = (
    AspectSpec(
        name="DRIVING",
        weight=16.0,
        sentence_templates=(
            "the {engine} delivers smooth acceleration and confident handling",
            "driving impressions the {trim} feels agile on winding roads",
            "test drive revealed the {engine} is responsive yet quiet",
            "steering feedback is precise and the ride comfort is excellent",
            "on the highway the {engine} cruises effortlessly with little noise",
            "the suspension tuned for the {trim} absorbs bumps well",
            "acceleration from the {engine} reaches sixty in under seven seconds",
        ),
        signature_words=("driving", "handling", "acceleration", "ride", "steering", "drive"),
        manual_queries=(
            ("driving",), ("handling",), ("test", "drive"), ("acceleration",), ("ride", "quality"),
        ),
    ),
    AspectSpec(
        name="VERDICT",
        weight=7.0,
        sentence_templates=(
            "overall verdict {rating_site} rates it highly among competitors",
            "the final verdict praises the {trim} as a strong value",
            "editors at {rating_site} conclude it is a compelling choice",
            "our verdict the car earns a solid recommendation this year",
            "review summary {rating_site} gives it four out of five stars",
        ),
        signature_words=("verdict", "overall", "review", "recommendation", "conclusion", "stars"),
        manual_queries=(
            ("review",), ("verdict",), ("overall", "rating"), ("pros", "cons"), ("editor", "review"),
        ),
    ),
    AspectSpec(
        name="INTERIOR",
        weight=7.0,
        sentence_templates=(
            "the cabin offers {feature} and {feature} as standard",
            "interior quality impresses with {feature} on the {trim}",
            "rear seat space is generous and the {feature} works well",
            "the dashboard layout includes {feature} and soft touch materials",
            "cargo room expands with folding seats and optional {feature}",
        ),
        signature_words=("interior", "cabin", "seats", "dashboard", "cargo", "room"),
        manual_queries=(
            ("interior",), ("cabin",), ("seats",), ("cargo", "space"), ("dashboard",),
        ),
    ),
    AspectSpec(
        name="EXTERIOR",
        weight=5.0,
        sentence_templates=(
            "exterior styling features sculpted lines and {feature}",
            "the {trim} adds {feature} and a distinctive grille",
            "body panels look sharp with optional {feature}",
            "new exterior colors and {feature} refresh the design this year",
        ),
        signature_words=("exterior", "styling", "design", "grille", "body", "looks"),
        manual_queries=(
            ("exterior",), ("styling",), ("design",), ("body",), ("looks",),
        ),
    ),
    AspectSpec(
        name="PRICE",
        weight=8.0,
        sentence_templates=(
            "pricing starts at {price} for the {trim}",
            "msrp of {price} undercuts rival models by a wide margin",
            "the {trim} costs {price} at {dealer}",
            "invoice price near {price} leaves room for negotiation",
            "lease deals from {dealer} start around {price} per term",
        ),
        signature_words=("price", "msrp", "cost", "pricing", "invoice", "lease"),
        manual_queries=(
            ("price",), ("msrp",), ("cost",), ("invoice", "price"), ("lease", "deals"),
        ),
    ),
    AspectSpec(
        name="RELIABILITY",
        weight=2.0,
        sentence_templates=(
            "reliability ratings from {rating_site} are above average",
            "owners report few problems after years of dependable service",
            "the {engine} has a strong reliability record according to {rating_site}",
            "predicted reliability earns top marks from {rating_site}",
        ),
        signature_words=("reliability", "dependable", "problems", "ratings", "record"),
        manual_queries=(
            ("reliability",), ("problems",), ("dependability",), ("reliability", "ratings"), ("issues",),
        ),
    ),
    AspectSpec(
        name="SAFETY",
        weight=2.0,
        sentence_templates=(
            "safety equipment includes {safety_feature} and {safety_feature}",
            "{rating_site} crash test results award five stars overall",
            "standard {safety_feature} improves occupant protection",
            "the {trim} earns a top safety pick thanks to {safety_feature}",
        ),
        signature_words=("safety", "crash", "protection", "stars", "rating"),
        manual_queries=(
            ("safety",), ("crash", "test"), ("safety", "rating"), ("airbags",), ("safety", "features"),
        ),
    ),
)

_CAR_BACKGROUND = (
    "find dealers near you and schedule a visit online",
    "sign up for our newsletter to receive the latest automotive news",
    "compare up to four vehicles side by side with our tool",
    "photo gallery videos and full specifications available below",
    "advertisement special financing offers may apply see site for details",
    "the {dealer} showroom in {location} is open seven days a week",
)

_CAR_TYPE_POOLS = (
    TypePool("trim", _TRIMS, synthetic_count=20, per_entity=2),
    TypePool("engine", _ENGINES, synthetic_count=20, per_entity=2),
    TypePool("feature", _FEATURES, synthetic_count=30, per_entity=3),
    TypePool("safety_feature", _SAFETY_FEATURES, synthetic_count=15, per_entity=2),
    TypePool("rating_site", _RATING_SITES, synthetic_count=10, per_entity=2),
    TypePool("dealer", _DEALERS, synthetic_count=30, per_entity=1),
    TypePool("price", (), synthetic_count=120, per_entity=2),
    TypePool("location", _CAR_LOCATIONS, synthetic_count=10, per_entity=1),
    TypePool("make", _CAR_MAKES, synthetic_count=0, per_entity=0),
    TypePool("model", _CAR_MODEL_WORDS, synthetic_count=40, per_entity=0),
)


def car_domain() -> DomainSpec:
    """Return the specification of the car domain."""
    return DomainSpec(
        name="car",
        aspects=_CAR_ASPECTS,
        type_pools=_CAR_TYPE_POOLS,
        background_templates=_CAR_BACKGROUND,
        first_name_pool=_CAR_MAKES,
        last_name_pool=_CAR_MODEL_WORDS,
        seed_attribute_types=(),
        generic_words=("car", "vehicle", "model", "year", "new", "auto"),
    )


_DOMAIN_FACTORIES = {
    "researcher": researcher_domain,
    "car": car_domain,
}


def get_domain(name: str) -> DomainSpec:
    """Return a domain specification by name (``"researcher"`` or ``"car"``)."""
    try:
        factory = _DOMAIN_FACTORIES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown domain {name!r}; available: {sorted(_DOMAIN_FACTORIES)}"
        ) from exc
    return factory()


def available_domains() -> List[str]:
    """Names of all built-in domains."""
    return sorted(_DOMAIN_FACTORIES)
