"""Synthetic web-corpus generator.

The paper's corpora (996 DBLP researchers and 143 car models, ~50 pages per
entity crawled from the live Web) are not available offline, so this module
generates a structurally equivalent corpus:

* every entity has its own realisations of the domain's knowledge-base types
  (its topics, venues, trims, engines, ...), producing the *entity variation*
  of the paper's Fig. 3;
* every page consists of paragraphs generated from per-aspect sentence
  templates that interleave entity attributes with generic aspect words, so
  useful queries exist at both the concrete (entity-specific) and template
  (domain-wide) level;
* multiple templates of an aspect reuse the same attribute values, so
  different useful queries retrieve overlapping page sets — the redundancy
  that motivates context-aware L2Q.

Generation is fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.corpus.corpus import Corpus
from repro.corpus.document import Entity, Page, Paragraph
from repro.corpus.domains import DomainSpec, get_domain
from repro.corpus.knowledge_base import TypeSystem
from repro.utils.rng import SeededRandom

#: Number of *base* generations performed in this process.  Base generation
#: dominates corpus cost, so orchestrators that promise to share one base
#: across perturbation pipelines (``ScenarioSweep``) assert against this.
_BASE_GENERATIONS = 0


def base_generation_count() -> int:
    """How many base-corpus generations this process has performed."""
    return _BASE_GENERATIONS


@dataclass
class CorpusConfig:
    """Configuration of the synthetic corpus generator.

    The defaults are laptop-scale (the paper's full scale of 996 entities x
    50 pages is reachable by raising ``num_entities`` / ``pages_per_entity``).
    """

    domain: str = "researcher"
    num_entities: int = 60
    pages_per_entity: int = 16
    paragraphs_per_page: Tuple[int, int] = (2, 5)
    sentences_per_paragraph: Tuple[int, int] = (1, 3)
    aspects_per_page: Tuple[int, int] = (1, 2)
    aspect_weight_damping: float = 0.5
    background_probability: float = 0.25
    min_pages_per_aspect: int = 3
    include_entity_name_probability: float = 0.35
    noise_word_probability: float = 0.15
    signature_cross_talk_probability: float = 0.45
    background_signature_words_mean: float = 1.5
    hub_page_fraction: float = 0.2
    seed: int = 7
    #: Ordered perturbation pipeline applied after base generation.  Each
    #: element needs a ``name`` attribute and an ``apply(entities, pages,
    #: spec, rng)`` method (see :mod:`repro.scenarios.perturbations`); the
    #: generator spawns one child RNG per stage, so the pipeline is as
    #: deterministic as the base generation.
    perturbations: Tuple = ()

    def validate(self) -> None:
        """Raise ``ValueError`` for out-of-range settings."""
        if self.num_entities <= 0:
            raise ValueError("num_entities must be positive")
        if self.pages_per_entity <= 0:
            raise ValueError("pages_per_entity must be positive")
        if self.paragraphs_per_page[0] < 1 or self.paragraphs_per_page[0] > self.paragraphs_per_page[1]:
            raise ValueError("paragraphs_per_page must be a (min, max) pair with 1 <= min <= max")
        if self.sentences_per_paragraph[0] < 1 or self.sentences_per_paragraph[0] > self.sentences_per_paragraph[1]:
            raise ValueError("sentences_per_paragraph must be a (min, max) pair with 1 <= min <= max")
        if self.aspects_per_page[0] < 1 or self.aspects_per_page[0] > self.aspects_per_page[1]:
            raise ValueError("aspects_per_page must be a (min, max) pair with 1 <= min <= max")
        if self.aspect_weight_damping <= 0:
            raise ValueError("aspect_weight_damping must be positive")
        if not 0.0 <= self.hub_page_fraction < 1.0:
            raise ValueError("hub_page_fraction must be in [0, 1)")
        if self.background_signature_words_mean < 0:
            raise ValueError("background_signature_words_mean must be non-negative")
        if not 0.0 <= self.background_probability < 1.0:
            raise ValueError("background_probability must be in [0, 1)")
        if self.min_pages_per_aspect < 0:
            raise ValueError("min_pages_per_aspect must be non-negative")
        for perturbation in self.perturbations:
            if not hasattr(perturbation, "name") or not callable(
                    getattr(perturbation, "apply", None)):
                raise ValueError(
                    f"perturbation {perturbation!r} must have a 'name' "
                    f"attribute and an 'apply' method")

    def base_config(self) -> "CorpusConfig":
        """This configuration with the perturbation pipeline stripped.

        Two configs with equal ``base_config()`` fields generate the same
        base corpus, so pipelines applied to one shared base are
        byte-identical to full per-pipeline generations.
        """
        return replace(self, perturbations=())


@dataclass(frozen=True)
class BaseCorpus:
    """One immutable base generation, shareable across perturbation pipelines.

    Perturbation-stage RNGs are label-derived (``seed``, domain, stage index,
    stage name) rather than drawn from generation state, and perturbations
    never mutate their inputs — they build fresh entity/page maps.  Both
    facts together make this snapshot safe to share: applying any pipeline
    to it via :meth:`CorpusGenerator.realise` is byte-identical to a full
    :meth:`CorpusGenerator.generate` with that pipeline configured, while
    paying base-generation cost once.
    """

    config: CorpusConfig
    entities: Mapping[str, Entity]
    pages: Mapping[str, Page]

    @property
    def domain(self) -> str:
        """Domain name this base was generated for."""
        return self.config.domain


class CorpusGenerator:
    """Generates a :class:`~repro.corpus.corpus.Corpus` from a domain spec."""

    def __init__(self, config: CorpusConfig, domain_spec: Optional[DomainSpec] = None) -> None:
        config.validate()
        self.config = config
        self.domain_spec = domain_spec if domain_spec is not None else get_domain(config.domain)
        self.type_system: TypeSystem = self.domain_spec.build_type_system()
        self._pools: Dict[str, Tuple[str, ...]] = self.domain_spec.expanded_pools()
        self._rng = SeededRandom(config.seed).spawn("corpus", self.domain_spec.name)

    # -- Public API ----------------------------------------------------------
    def generate(self) -> Corpus:
        """Generate the full corpus (base generation + perturbation pipeline)."""
        return self.realise(self.generate_base())

    def generate_base(self) -> BaseCorpus:
        """Generate the unperturbed base corpus as an immutable snapshot.

        The expensive half of :meth:`generate`: callers that evaluate many
        perturbation pipelines over the same underlying corpus (e.g. a
        scenario sweep) generate the base once and :meth:`realise` each
        pipeline against it.
        """
        global _BASE_GENERATIONS
        entities = self._generate_entities()
        pages: Dict[str, Page] = {}
        for entity in entities.values():
            for page in self._generate_entity_pages(entity):
                pages[page.page_id] = page
        _BASE_GENERATIONS += 1
        return BaseCorpus(config=self.config.base_config(),
                          entities=MappingProxyType(entities),
                          pages=MappingProxyType(pages))

    def generate_entities(self) -> Dict[str, Entity]:
        """Generate just the entity table of the base corpus.

        The first half of streaming generation: pair with
        :meth:`generate_pages` to feed pages one at a time into a consumer
        (e.g. a corpus-store writer) without ever materialising the full
        page map in this process.
        """
        return self._generate_entities()

    def generate_pages(self, entities: Mapping[str, Entity]) -> Iterator[Page]:
        """Stream the base corpus's pages in sorted page-id order.

        Per-entity page RNGs are label-derived (``"pages"``, entity id) —
        never drawn from generation state — so this stream yields pages
        byte-identical to :meth:`generate_base`'s.  Entity ids embed a
        zero-padded index and page ids a zero-padded per-entity index, so
        iterating entities in sorted-id order yields pages in globally
        sorted page-id order (the order stores and indexes require).
        """
        for entity_id in sorted(entities):
            yield from self._generate_entity_pages(entities[entity_id])

    def realise(self, base: BaseCorpus,
                perturbations: Optional[Tuple] = None) -> Corpus:
        """Apply a perturbation pipeline to a (possibly shared) base.

        ``perturbations`` defaults to this generator's configured pipeline.
        The base must have been generated from an equivalent base config —
        a pipeline applied to a base of different shape would silently
        produce a corpus no full generation could ever produce.
        """
        if base.config != self.config.base_config():
            raise ValueError(
                f"base corpus was generated from {base.config!r}, which "
                f"differs from this generator's base config "
                f"{self.config.base_config()!r}")
        pipeline = self.config.perturbations if perturbations is None \
            else perturbations
        entities, pages = self._apply_perturbations(dict(base.entities),
                                                    dict(base.pages), pipeline)
        return Corpus(self.domain_spec, entities, pages, type_system=self.type_system)

    def _apply_perturbations(self, entities: Dict[str, Entity],
                             pages: Dict[str, Page],
                             pipeline: Tuple) -> Tuple[Dict[str, Entity], Dict[str, Page]]:
        """Run a perturbation pipeline, one spawned RNG per stage.

        The RNG label includes both the stage index and the perturbation
        name, so reordering or swapping stages changes the randomness while
        the same pipeline under the same seed stays byte-identical.  The
        labels never depend on generation *state*, which is what makes
        pipelines applied to a shared base identical to full generations.
        """
        for index, perturbation in enumerate(pipeline):
            rng = self._rng.spawn("perturb", index, perturbation.name)
            entities, pages = perturbation.apply(entities, pages,
                                                 self.domain_spec, rng)
        return entities, pages

    # -- Entities -------------------------------------------------------------
    def _generate_entities(self) -> Dict[str, Entity]:
        rng = self._rng.spawn("entities")
        entities: Dict[str, Entity] = {}
        used_names: set = set()
        for index in range(self.config.num_entities):
            entity_rng = rng.spawn(index)
            name_tokens = self._sample_name(entity_rng, used_names, index)
            attributes = self._sample_attributes(entity_rng, index)
            entity_id = f"{self.domain_spec.name}_{index:04d}"
            seed_query = self._seed_query(name_tokens, attributes)
            entities[entity_id] = Entity(
                entity_id=entity_id,
                domain=self.domain_spec.name,
                name_tokens=name_tokens,
                seed_query=seed_query,
                attributes=attributes,
            )
        return entities

    def _sample_name(self, rng: SeededRandom, used: set, index: int) -> Tuple[str, ...]:
        for _ in range(200):
            first = rng.choice(self.domain_spec.first_name_pool)
            last = rng.choice(self.domain_spec.last_name_pool)
            name = (TypeSystem.canonical(first), TypeSystem.canonical(last))
            if name not in used:
                used.add(name)
                return name
        # Fallback: disambiguate with the entity index to guarantee uniqueness.
        name = (TypeSystem.canonical(rng.choice(self.domain_spec.first_name_pool)),
                f"entity{index:04d}")
        used.add(name)
        return name

    def _sample_attributes(self, rng: SeededRandom, index: int) -> Dict[str, Tuple[str, ...]]:
        attributes: Dict[str, Tuple[str, ...]] = {}
        for pool in self.domain_spec.type_pools:
            if pool.per_entity <= 0:
                continue
            values = self._pools[pool.name]
            if not values:
                continue
            attributes[pool.name] = tuple(rng.spawn(pool.name).sample(values, pool.per_entity))
        # Per-entity well-formed strings recognised by regex types.
        attributes["email"] = (f"contact{index:04d}@example{index % 37:02d}.edu",)
        attributes["url"] = (f"www.example{index % 37:02d}.edu/home{index:04d}",)
        attributes["phonenum"] = (f"+1-555-{1000 + index:04d}",)
        return attributes

    def _seed_query(self, name_tokens: Tuple[str, ...],
                    attributes: Dict[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        seed = list(name_tokens)
        for type_name in self.domain_spec.seed_attribute_types:
            values = attributes.get(type_name, ())
            if values:
                seed.append(values[0])
        return tuple(seed)

    # -- Pages -------------------------------------------------------------------
    def _generate_entity_pages(self, entity: Entity) -> List[Page]:
        rng = self._rng.spawn("pages", entity.entity_id)
        aspect_names = [a.name for a in self.domain_spec.aspects]
        # Dampen the aspect weights so that the dominant aspect (e.g. RESEARCH
        # for researchers) does not appear on virtually every page, which
        # would make page-level precision trivially 1 for every method.
        aspect_weights = [a.weight ** self.config.aspect_weight_damping
                          for a in self.domain_spec.aspects]

        plans: List[List[Optional[str]]] = []
        for page_index in range(self.config.pages_per_entity):
            page_rng = rng.spawn(page_index)
            num_paragraphs = page_rng.randint(*self.config.paragraphs_per_page)
            if page_rng.random() < self.config.hub_page_fraction:
                # Hub / listing pages: navigation, news listings, boilerplate.
                # They contain generic words of many aspects (so generic
                # queries retrieve them) but no actual aspect content.
                plans.append([None] * num_paragraphs)
                continue
            # Each content page focuses on a small number of aspects, as real
            # entity pages do (a contact page, a research overview, a review).
            num_focus = page_rng.randint(*self.config.aspects_per_page)
            focus_aspects = self._sample_focus_aspects(
                page_rng, aspect_names, aspect_weights, num_focus)
            plan: List[Optional[str]] = []
            for _ in range(num_paragraphs):
                if page_rng.random() < self.config.background_probability:
                    plan.append(None)
                else:
                    plan.append(page_rng.choice(focus_aspects))
            if all(aspect is None for aspect in plan):
                plan.append(page_rng.choice(focus_aspects))
            plans.append(plan)

        self._ensure_aspect_coverage(plans, aspect_names, rng.spawn("coverage"))

        pages: List[Page] = []
        for page_index, plan in enumerate(plans):
            page_id = f"{entity.entity_id}_p{page_index:03d}"
            page_rng = rng.spawn("fill", page_index)
            paragraphs = tuple(
                self._generate_paragraph(entity, aspect, f"{page_id}#{para_index}",
                                         page_rng.spawn(para_index))
                for para_index, aspect in enumerate(plan)
            )
            pages.append(Page(page_id=page_id, entity_id=entity.entity_id,
                              paragraphs=paragraphs))
        return pages

    @staticmethod
    def _sample_focus_aspects(rng: SeededRandom, aspect_names: Sequence[str],
                              aspect_weights: Sequence[float], count: int) -> List[str]:
        """Sample ``count`` distinct focus aspects proportionally to the weights."""
        remaining = list(zip(aspect_names, aspect_weights))
        chosen: List[str] = []
        for _ in range(min(count, len(remaining))):
            names = [name for name, _ in remaining]
            weights = [weight for _, weight in remaining]
            pick = rng.weighted_choice(names, weights)
            chosen.append(pick)
            remaining = [(n, w) for n, w in remaining if n != pick]
        return chosen

    def _ensure_aspect_coverage(self, plans: List[List[Optional[str]]],
                                aspect_names: Sequence[str], rng: SeededRandom) -> None:
        """Guarantee every aspect occurs on at least ``min_pages_per_aspect`` pages.

        Rare aspects (e.g. EMPLOYMENT for researchers, SAFETY for cars) would
        otherwise be missing entirely for some entities, which would make
        recall undefined for those (entity, aspect) pairs.
        """
        target = min(self.config.min_pages_per_aspect, len(plans))
        for aspect in aspect_names:
            pages_with_aspect = [i for i, plan in enumerate(plans) if aspect in plan]
            missing = target - len(pages_with_aspect)
            if missing <= 0:
                continue
            candidates = [i for i in range(len(plans)) if i not in pages_with_aspect]
            for page_index in rng.sample(candidates, missing):
                plans[page_index].append(aspect)

    # -- Paragraphs -----------------------------------------------------------------
    def _generate_paragraph(self, entity: Entity, aspect: Optional[str],
                            paragraph_id: str, rng: SeededRandom) -> Paragraph:
        if aspect is None:
            templates = self.domain_spec.background_templates
            num_sentences = 1
        else:
            templates = self.domain_spec.aspect(aspect).sentence_templates
            num_sentences = rng.randint(*self.config.sentences_per_paragraph)

        tokens: List[str] = []
        for _ in range(num_sentences):
            template = rng.choice(templates)
            tokens.extend(self._fill_template(template, entity, rng))

        if aspect is not None:
            signature = self.domain_spec.aspect(aspect).signature_words
            if signature and rng.random() < 0.5:
                tokens.append(TypeSystem.canonical(rng.choice(signature)))
            # Cross-talk: generic words of *other* aspects leak into this
            # paragraph (e.g. "award-winning design" on an EXTERIOR page),
            # so that generic single-keyword queries are noisy while
            # entity-specific attribute words stay discriminative — the
            # paper's motivation for learning entity-specific queries.
            if rng.random() < self.config.signature_cross_talk_probability:
                tokens.append(self._foreign_signature_word(aspect, rng))
        else:
            # Background / boilerplate paragraphs sprinkle generic words of
            # arbitrary aspects ("news events research awards contact"),
            # which makes generic one-word queries retrieve irrelevant pages.
            num_signature = rng.poisson_like(
                self.config.background_signature_words_mean, 4)
            for _ in range(num_signature):
                tokens.append(self._foreign_signature_word(None, rng))

        if rng.random() < self.config.include_entity_name_probability:
            tokens.extend(entity.name_tokens)
        if self.domain_spec.generic_words and rng.random() < self.config.noise_word_probability:
            tokens.append(TypeSystem.canonical(rng.choice(self.domain_spec.generic_words)))

        return Paragraph(paragraph_id=paragraph_id, tokens=tuple(tokens), aspect=aspect)

    def _foreign_signature_word(self, aspect: Optional[str], rng: SeededRandom) -> str:
        """A generic signature word of some aspect other than ``aspect``."""
        other_aspects = [a for a in self.domain_spec.aspects
                         if a.name != aspect and a.signature_words]
        chosen = rng.choice(other_aspects)
        return TypeSystem.canonical(rng.choice(chosen.signature_words))

    def _fill_template(self, template: str, entity: Entity,
                       rng: SeededRandom) -> List[str]:
        tokens: List[str] = []
        for raw in template.split():
            if raw.startswith("{") and raw.endswith("}"):
                slot = raw[1:-1]
                tokens.append(self._fill_slot(slot, entity, rng))
            else:
                tokens.append(TypeSystem.canonical(raw))
        return tokens

    def _fill_slot(self, slot: str, entity: Entity, rng: SeededRandom) -> str:
        if slot.startswith("~"):
            type_name = slot[1:]
            pool = self._pools.get(type_name, ())
            if pool:
                return rng.choice(pool)
            if type_name == "year":
                return str(rng.randint(1995, 2015))
            return type_name
        values = entity.attribute_values(slot)
        if values:
            return rng.choice(values)
        pool = self._pools.get(slot, ())
        if pool:
            return rng.choice(pool)
        if slot == "year":
            return str(rng.randint(1995, 2015))
        return slot


def build_corpus(domain: str = "researcher", num_entities: int = 60,
                 pages_per_entity: int = 16, seed: int = 7,
                 **overrides) -> Corpus:
    """Convenience wrapper: build a synthetic corpus for a built-in domain.

    Parameters mirror :class:`CorpusConfig`; extra keyword arguments are
    forwarded to it.
    """
    config = CorpusConfig(domain=domain, num_entities=num_entities,
                          pages_per_entity=pages_per_entity, seed=seed, **overrides)
    return CorpusGenerator(config).generate()


def build_base(domain: str = "researcher", num_entities: int = 60,
               pages_per_entity: int = 16, seed: int = 7,
               **overrides) -> BaseCorpus:
    """Convenience wrapper: generate the shareable base corpus of a domain."""
    config = CorpusConfig(domain=domain, num_entities=num_entities,
                          pages_per_entity=pages_per_entity, seed=seed, **overrides)
    return CorpusGenerator(config).generate_base()


def realise_base(base: BaseCorpus, perturbations: Tuple = ()) -> Corpus:
    """Apply a perturbation pipeline to a shared base (``()`` = clean)."""
    return CorpusGenerator(base.config).realise(base, perturbations=perturbations)
