"""Tokenisation with knowledge-base phrase merging.

The paper tokenises each page into *words*, where a word is either a single
keyword or a phrase that can be mapped to a type (Sect. VI, *Candidate query
enumeration*).  The tokenizer therefore performs greedy longest-match phrase
merging against the knowledge base, so that e.g. ``"data mining"`` becomes
the single token ``"data_mining"`` which the type system knows is a
``<topic>``.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, Optional, Sequence

from repro.corpus.knowledge_base import TypeSystem

# A compact English stopword list; enough to keep function words out of the
# candidate query space without an external dependency.
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    """a an and are as at be been before but by can did do does for from had has
    have he her him his i if in into is it its of on or our she so than that the
    their them then there these they this to was we were while who will with you
    your not new also many very when where which what how after about over under
    between both each more most other some such only own same too just now his
    hers theirs ours mine yours am being during through against once here all
    any because until again further off above below out up down no nor""".split()
)

_WORD_RE = re.compile(r"[a-z0-9@#$+._/:-]+")


class Tokenizer:
    """Lowercasing, punctuation-stripping tokenizer with phrase merging."""

    def __init__(self, type_system: Optional[TypeSystem] = None,
                 stopwords: Optional[Iterable[str]] = None,
                 max_phrase_length: int = 4) -> None:
        self.type_system = type_system
        self.stopwords: FrozenSet[str] = (
            frozenset(stopwords) if stopwords is not None else DEFAULT_STOPWORDS
        )
        self.max_phrase_length = max_phrase_length
        self._phrases: FrozenSet[str] = (
            type_system.known_phrases() if type_system is not None else frozenset()
        )

    # -- Public API ----------------------------------------------------------
    def tokenize(self, text: str) -> List[str]:
        """Tokenise ``text`` into canonical tokens with phrases merged."""
        raw = self._basic_tokens(text)
        if not self._phrases:
            return raw
        return self._merge_phrases(raw)

    def content_tokens(self, text_or_tokens) -> List[str]:
        """Tokenise and drop stopwords (used for query enumeration)."""
        tokens = (self.tokenize(text_or_tokens)
                  if isinstance(text_or_tokens, str) else list(text_or_tokens))
        return [t for t in tokens if not self.is_stopword(t)]

    def is_stopword(self, token: str) -> bool:
        """Whether ``token`` is a stopword (pure numbers do not count)."""
        return token in self.stopwords

    # -- Internals -------------------------------------------------------------
    def _basic_tokens(self, text: str) -> List[str]:
        lowered = text.lower()
        return _WORD_RE.findall(lowered)

    def _merge_phrases(self, tokens: Sequence[str]) -> List[str]:
        """Greedy longest-match merge of known multi-word phrases."""
        merged: List[str] = []
        i = 0
        n = len(tokens)
        while i < n:
            match_length = 0
            match_token = None
            upper = min(self.max_phrase_length, n - i)
            for length in range(upper, 1, -1):
                candidate = "_".join(tokens[i:i + length])
                if candidate in self._phrases:
                    match_length = length
                    match_token = candidate
                    break
            if match_token is not None:
                merged.append(match_token)
                i += match_length
            else:
                merged.append(tokens[i])
                i += 1
        return merged
