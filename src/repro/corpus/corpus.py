"""The :class:`Corpus` container: entities, pages and domain metadata.

The paper evaluates over an offline corpus collected in advance ("for
repeatable results, we conduct experiments over a corpus collected from the
Web in advance, and all queries will retrieve pages from this corpus only",
Sect. VI-A).  :class:`Corpus` plays that role here.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.corpus.document import Entity, Page, Paragraph
from repro.corpus.domains import DomainSpec
from repro.corpus.knowledge_base import TypeSystem
from repro.corpus.tokenizer import Tokenizer
from repro.corpus.vocabulary import Vocabulary


# -- Canonical content digest -------------------------------------------------
# Shared by Corpus.content_digest (whole-corpus hash) and the corpus store
# writer (incremental hash while streaming pages), so a published store's
# digest equals the digest of the corpus it serialises by construction.

def _feed_fields(digest, *fields: str) -> None:
    # Each field is terminated by \x1e (and tuple elements joined by \x1f),
    # so adjacent variable-length fields can never collide.
    for value in fields:
        digest.update(value.encode("utf-8"))
        digest.update(b"\x1e")


def content_digester(domain: str):
    """A SHA-256 digest primed with the domain header field."""
    digest = hashlib.sha256()
    _feed_fields(digest, domain)
    return digest


def feed_entity(digest, entity_id: str, entity: Entity) -> None:
    """Fold one entity into a canonical content digest."""
    digest.update(b"\x1dE")
    _feed_fields(digest, entity_id,
                 "\x1f".join(entity.name_tokens),
                 "\x1f".join(entity.seed_query))
    for type_name in sorted(entity.attributes):
        digest.update(b"\x1dA")
        _feed_fields(digest, type_name, "\x1f".join(entity.attributes[type_name]))


def feed_page(digest, page: Page) -> None:
    """Fold one page into a canonical content digest."""
    digest.update(b"\x1dP")
    _feed_fields(digest, page.page_id, page.entity_id)
    for paragraph in page.paragraphs:
        digest.update(b"\x1dG")
        _feed_fields(digest, paragraph.paragraph_id,
                     paragraph.aspect if paragraph.aspect is not None else "\x00",
                     "\x1f".join(paragraph.tokens))


@dataclass
class CorpusStats:
    """Summary statistics of a corpus (used in reports and sanity tests)."""

    domain: str
    num_entities: int
    num_pages: int
    num_paragraphs: int
    num_tokens: int
    vocabulary_size: int
    paragraphs_per_aspect: Dict[str, int] = field(default_factory=dict)

    def as_rows(self) -> List[Tuple[str, str]]:
        """Return (name, value) rows for plain-text reporting."""
        rows = [
            ("domain", self.domain),
            ("entities", str(self.num_entities)),
            ("pages", str(self.num_pages)),
            ("paragraphs", str(self.num_paragraphs)),
            ("tokens", str(self.num_tokens)),
            ("vocabulary", str(self.vocabulary_size)),
        ]
        for aspect in sorted(self.paragraphs_per_aspect):
            rows.append((f"paragraphs[{aspect}]", str(self.paragraphs_per_aspect[aspect])))
        return rows


class Corpus:
    """An offline web corpus for one domain.

    Parameters
    ----------
    domain_spec:
        The declarative domain specification the corpus was generated from.
    entities:
        The entities of the domain, keyed by entity id.
    pages:
        All pages, keyed by page id.  Every page belongs to exactly one
        entity.
    type_system:
        The knowledge base used for template abstraction.
    """

    def __init__(self, domain_spec: DomainSpec, entities: Dict[str, Entity],
                 pages: Dict[str, Page], type_system: Optional[TypeSystem] = None) -> None:
        self.domain_spec = domain_spec
        self.entities = dict(entities)
        self.pages = dict(pages)
        self.type_system = type_system if type_system is not None else domain_spec.build_type_system()
        self.tokenizer = Tokenizer(self.type_system)

        self._pages_by_entity: Dict[str, List[str]] = {}
        for page in self.pages.values():
            if page.entity_id not in self.entities:
                raise ValueError(
                    f"page {page.page_id!r} references unknown entity {page.entity_id!r}"
                )
            self._pages_by_entity.setdefault(page.entity_id, []).append(page.page_id)
        for page_ids in self._pages_by_entity.values():
            page_ids.sort()

        self._vocabulary: Optional[Vocabulary] = None

    # -- Basic accessors -----------------------------------------------------
    @property
    def domain(self) -> str:
        """Domain name (``"researcher"`` or ``"car"``)."""
        return self.domain_spec.name

    @property
    def aspects(self) -> List[str]:
        """Names of the target aspects of this domain."""
        return self.domain_spec.aspect_names()

    def entity_ids(self) -> List[str]:
        """All entity ids, sorted."""
        return sorted(self.entities)

    def get_entity(self, entity_id: str) -> Entity:
        """Return the entity with the given id."""
        return self.entities[entity_id]

    def get_page(self, page_id: str) -> Page:
        """Return the page with the given id."""
        return self.pages[page_id]

    def pages_of(self, entity_id: str) -> List[Page]:
        """All pages of one entity (the entity's page universe)."""
        return [self.pages[pid] for pid in self._pages_by_entity.get(entity_id, [])]

    def num_pages(self) -> int:
        """Total number of pages in the corpus."""
        return len(self.pages)

    def num_entities(self) -> int:
        """Total number of entities in the corpus."""
        return len(self.entities)

    def iter_pages(self) -> Iterator[Page]:
        """Iterate over all pages in id order."""
        for page_id in sorted(self.pages):
            yield self.pages[page_id]

    def iter_paragraphs(self) -> Iterator[Paragraph]:
        """Iterate over all paragraphs of all pages."""
        for page in self.iter_pages():
            yield from page.paragraphs

    # -- Relevance ------------------------------------------------------------
    def relevant_pages(self, entity_id: str, aspect: str) -> List[Page]:
        """Ground-truth relevant pages of an entity w.r.t. an aspect.

        A page is relevant iff at least one of its paragraphs is about the
        aspect (the paper judges relevance per paragraph and harvests pages;
        a page counts as a target page when it contains relevant content).
        """
        return [p for p in self.pages_of(entity_id) if p.has_aspect(aspect)]

    def aspect_paragraph_count(self, aspect: str) -> int:
        """Number of paragraphs in the whole corpus about ``aspect``."""
        return sum(1 for para in self.iter_paragraphs() if para.aspect == aspect)

    # -- Derived views ----------------------------------------------------------
    def vocabulary(self) -> Vocabulary:
        """A lazily-built vocabulary over all pages."""
        if self._vocabulary is None:
            self._vocabulary = Vocabulary.from_documents(
                page.tokens for page in self.iter_pages()
            )
        return self._vocabulary

    def subset(self, entity_ids: Iterable[str]) -> "Corpus":
        """Return a new corpus restricted to the given entities.

        Used to build the *domain corpus* (peer entities whose pages were
        gathered in advance) from the full corpus.
        """
        keep = set(entity_ids)
        unknown = keep - set(self.entities)
        if unknown:
            raise KeyError(f"unknown entity ids: {sorted(unknown)}")
        entities = {eid: self.entities[eid] for eid in keep}
        pages = {pid: page for pid, page in self.pages.items() if page.entity_id in keep}
        return Corpus(self.domain_spec, entities, pages, type_system=self.type_system)

    def content_digest(self) -> str:
        """SHA-256 over a canonical serialisation of the corpus content.

        Two corpora have equal digests iff they have identical entities
        (ids, names, seed queries, attributes) and identical pages
        (paragraph ids, tokens and aspect labels).  Scenario generation
        promises *byte-identical* corpora for equal seeds; this digest is
        what that promise is tested — and benchmarked — against.
        """
        digest = content_digester(self.domain)
        for entity_id in self.entity_ids():
            feed_entity(digest, entity_id, self.entities[entity_id])
        for page in self.iter_pages():
            feed_page(digest, page)
        return digest.hexdigest()

    def stats(self) -> CorpusStats:
        """Compute summary statistics."""
        num_paragraphs = 0
        num_tokens = 0
        per_aspect: Dict[str, int] = {aspect: 0 for aspect in self.aspects}
        for para in self.iter_paragraphs():
            num_paragraphs += 1
            num_tokens += len(para)
            if para.aspect is not None and para.aspect in per_aspect:
                per_aspect[para.aspect] += 1
        return CorpusStats(
            domain=self.domain,
            num_entities=self.num_entities(),
            num_pages=self.num_pages(),
            num_paragraphs=num_paragraphs,
            num_tokens=num_tokens,
            vocabulary_size=len(self.vocabulary()),
            paragraphs_per_aspect=per_aspect,
        )
