"""Corpus substrate: documents, domains, knowledge base and synthetic generation."""

from repro.corpus.corpus import Corpus, CorpusStats
from repro.corpus.document import Entity, Page, Paragraph
from repro.corpus.domains import (
    AspectSpec,
    DomainSpec,
    TypePool,
    available_domains,
    car_domain,
    get_domain,
    researcher_domain,
)
from repro.corpus.knowledge_base import TypeSystem, build_type_system, default_regex_types
from repro.corpus.synthetic import CorpusConfig, CorpusGenerator, build_corpus
from repro.corpus.tokenizer import DEFAULT_STOPWORDS, Tokenizer
from repro.corpus.vocabulary import Vocabulary

__all__ = [
    "AspectSpec",
    "Corpus",
    "CorpusConfig",
    "CorpusGenerator",
    "CorpusStats",
    "DEFAULT_STOPWORDS",
    "DomainSpec",
    "Entity",
    "Page",
    "Paragraph",
    "Tokenizer",
    "TypePool",
    "TypeSystem",
    "Vocabulary",
    "available_domains",
    "build_corpus",
    "build_type_system",
    "car_domain",
    "default_regex_types",
    "get_domain",
    "researcher_domain",
]
