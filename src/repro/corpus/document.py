"""Core document data model: paragraphs, pages and entities.

The paper models every page as a bag of words and segments each page into
paragraphs so that aspect relevance can be judged at a finer granularity
(Sect. VI-A).  The harvesting pipeline and the search engine both operate on
:class:`Page` objects; the aspect classifiers operate on :class:`Paragraph`
objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Paragraph:
    """A single paragraph of a Web page.

    Attributes
    ----------
    paragraph_id:
        Globally unique identifier (``"<page_id>#<index>"`` by convention).
    tokens:
        The tokenised content of the paragraph.  Multi-word phrases that the
        knowledge base knows about are represented as single underscored
        tokens (e.g. ``"data_mining"``).
    aspect:
        The ground-truth aspect this paragraph talks about, or ``None`` for
        background / boilerplate paragraphs.  In the paper this label is
        produced by a CRF classifier whose output is treated as ground
        truth; in the reproduction the synthetic generator records the label
        directly and a trained classifier is evaluated against it (Fig. 9).
    """

    paragraph_id: str
    tokens: Tuple[str, ...]
    aspect: Optional[str] = None

    @property
    def text(self) -> str:
        """A human-readable rendering of the paragraph."""
        return " ".join(token.replace("_", " ") for token in self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass(frozen=True)
class Page:
    """A Web page belonging to exactly one entity.

    Attributes
    ----------
    page_id:
        Globally unique page identifier.
    entity_id:
        Identifier of the entity the page is about.
    paragraphs:
        The ordered paragraphs of the page.
    """

    page_id: str
    entity_id: str
    paragraphs: Tuple[Paragraph, ...]

    @cached_property
    def tokens(self) -> Tuple[str, ...]:
        """All tokens of the page in order (concatenation of paragraphs).

        Cached: pages are immutable, and the selection loop consults the
        bag-of-words view of every current page on every iteration.
        """
        out: List[str] = []
        for paragraph in self.paragraphs:
            out.extend(paragraph.tokens)
        return tuple(out)

    @cached_property
    def token_set(self) -> FrozenSet[str]:
        """The set of distinct tokens on the page (bag-of-words view, cached)."""
        return frozenset(self.tokens)

    @property
    def text(self) -> str:
        """A human-readable rendering of the page."""
        return "\n".join(paragraph.text for paragraph in self.paragraphs)

    def aspects(self) -> FrozenSet[str]:
        """The set of ground-truth aspects covered by this page."""
        return frozenset(p.aspect for p in self.paragraphs if p.aspect is not None)

    def has_aspect(self, aspect: str) -> bool:
        """Whether any paragraph of the page is about ``aspect``."""
        return any(p.aspect == aspect for p in self.paragraphs)

    def contains_all(self, words: Sequence[str]) -> bool:
        """Whether the page contains every word in ``words``."""
        token_set = self.token_set
        return all(word in token_set for word in words)

    def __len__(self) -> int:
        return sum(len(p) for p in self.paragraphs)


@dataclass
class Entity:
    """A real-world entity (a researcher or a car model).

    Attributes
    ----------
    entity_id:
        Unique identifier within the corpus.
    domain:
        Domain name, e.g. ``"researcher"`` or ``"car"``.
    name_tokens:
        The tokens of the entity's name (e.g. ``("marc", "snir")``).
    seed_query:
        The seed query ``q(0)`` that uniquely identifies the entity
        (name + institute for researchers, make + model for cars).  The seed
        query is implicitly appended to every subsequent query fired for the
        entity (paper Sect. I, *Input*).
    attributes:
        Mapping from knowledge-base type name to the entity-specific values
        of that type, e.g. ``{"topic": ("parallel_computing", "hpc")}``.
        These drive *entity variation*: peers share the types but not the
        values (paper Fig. 3).
    """

    entity_id: str
    domain: str
    name_tokens: Tuple[str, ...]
    seed_query: Tuple[str, ...]
    attributes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Human-readable entity name."""
        return " ".join(self.name_tokens)

    def attribute_values(self, type_name: str) -> Tuple[str, ...]:
        """Return the entity's values for ``type_name`` (empty if none)."""
        return self.attributes.get(type_name, ())

    def excluded_words(self) -> FrozenSet[str]:
        """Words excluded from candidate queries for this entity.

        The seed query is implicitly appended to every fired query and the
        entity's name words behave the same way, so neither adds selective
        power as query words.  This is the *single* definition used by
        query enumeration, entity-phase candidate expansion and the
        domain-query selectors — call sites must not rebuild the union
        themselves, or the exclusion sets drift apart.
        """
        return frozenset(self.seed_query) | frozenset(self.name_tokens)

    def all_attribute_words(self) -> FrozenSet[str]:
        """Return every entity-specific attribute word."""
        words: List[str] = []
        for values in self.attributes.values():
            words.extend(values)
        return frozenset(words)

    def __hash__(self) -> int:
        return hash(self.entity_id)
