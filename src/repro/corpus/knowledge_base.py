"""Knowledge-base types used to abstract queries into templates.

The paper constructs its type inventory from three sources (Sect. VI-A):

1. a dictionary mapping keywords/phrases to types, built from Freebase and
   Microsoft Academic Search (e.g. ``data mining`` -> ``<topic>``);
2. named-entity types recognised by Stanford CoreNLP
   (``<organization>``, ``<person>``, ``<location>``);
3. regular expressions for well-formed strings
   (``<phonenum>``, ``<url>``, ``<email>``).

None of those external resources are available offline, so the reproduction
ships an explicit :class:`TypeSystem` with the same interface: a word/phrase
dictionary per type plus regex recognisers.  The per-domain dictionaries are
populated in :mod:`repro.corpus.domains`.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Pattern, Tuple


class TypeSystem:
    """A set of named types, each containing words/phrases, plus regex types.

    Words are stored in canonical token form: lowercase, with internal spaces
    replaced by underscores (so the phrase ``data mining`` is the token
    ``data_mining``).
    """

    def __init__(self) -> None:
        self._type_to_words: Dict[str, set] = {}
        self._word_to_types: Dict[str, set] = {}
        self._regex_types: List[Tuple[str, Pattern[str]]] = []
        #: Mutation counter; lets lookup caches (e.g. the template
        #: abstraction memo) detect that earlier answers are stale.
        self._version = 0

    # -- Construction ------------------------------------------------------
    @staticmethod
    def canonical(word: str) -> str:
        """Return the canonical token form of a word or phrase."""
        return word.strip().lower().replace(" ", "_")

    def add_word(self, type_name: str, word: str) -> None:
        """Add a single word/phrase to a type (creating the type if needed)."""
        token = self.canonical(word)
        if not token:
            return
        self._type_to_words.setdefault(type_name, set()).add(token)
        self._word_to_types.setdefault(token, set()).add(type_name)
        self._version += 1

    def add_words(self, type_name: str, words: Iterable[str]) -> None:
        """Add many words/phrases to a type."""
        for word in words:
            self.add_word(type_name, word)

    def add_regex_type(self, type_name: str, pattern: str) -> None:
        """Register a regex recogniser for ``type_name``.

        Regex types are consulted only when the dictionary lookup fails, and
        must match the *entire* token.
        """
        self._regex_types.append((type_name, re.compile(pattern)))
        self._type_to_words.setdefault(type_name, set())
        self._version += 1

    # -- Lookups -------------------------------------------------------------
    def type_names(self) -> List[str]:
        """All registered type names (dictionary and regex), sorted."""
        return sorted(self._type_to_words)

    def words_of(self, type_name: str) -> FrozenSet[str]:
        """The dictionary words of ``type_name`` (empty for pure regex types)."""
        return frozenset(self._type_to_words.get(type_name, ()))

    def types_of(self, token: str) -> Tuple[str, ...]:
        """Return every type that ``token`` belongs to (dictionary then regex)."""
        token = self.canonical(token)
        found = sorted(self._word_to_types.get(token, ()))
        if found:
            return tuple(found)
        for type_name, pattern in self._regex_types:
            if pattern.fullmatch(token):
                return (type_name,)
        return ()

    def primary_type(self, token: str) -> Optional[str]:
        """Return the first type of ``token`` or ``None`` if it is untyped."""
        types = self.types_of(token)
        return types[0] if types else None

    def is_typed(self, token: str) -> bool:
        """Whether ``token`` belongs to at least one type."""
        return bool(self.types_of(token))

    def known_phrases(self) -> FrozenSet[str]:
        """All multi-word dictionary entries (canonical, underscored).

        Used by the tokenizer for greedy phrase merging.
        """
        return frozenset(
            word
            for words in self._type_to_words.values()
            for word in words
            if "_" in word
        )

    def __contains__(self, token: str) -> bool:
        return self.is_typed(token)

    def __len__(self) -> int:
        return len(self._type_to_words)


def default_regex_types() -> List[Tuple[str, str]]:
    """Return the regex recognisers shared by every domain.

    Mirrors the paper's third type source: well-formed strings such as phone
    numbers, URLs and e-mail addresses, plus 4-digit years.
    """
    return [
        ("email", r"[a-z0-9._]+@[a-z0-9.]+\.[a-z]{2,}"),
        ("url", r"(https?://|www\.)[a-z0-9./_-]+"),
        ("phonenum", r"\+?[0-9][0-9-]{6,}"),
        ("year", r"(19|20)[0-9]{2}"),
    ]


def build_type_system(dictionary: Dict[str, Iterable[str]],
                      regex_types: Optional[List[Tuple[str, str]]] = None) -> TypeSystem:
    """Build a :class:`TypeSystem` from a type->words dictionary.

    Parameters
    ----------
    dictionary:
        Mapping from type name to an iterable of member words/phrases.
    regex_types:
        Optional ``(type_name, pattern)`` pairs; defaults to
        :func:`default_regex_types`.
    """
    system = TypeSystem()
    for type_name, words in dictionary.items():
        system.add_words(type_name, words)
    for type_name, pattern in (regex_types if regex_types is not None
                               else default_regex_types()):
        system.add_regex_type(type_name, pattern)
    return system
