"""Vocabulary: bidirectional word/id mapping with corpus counts.

The vocabulary is shared by the search index, the aspect classifiers and the
L2Q graph construction so that all components agree on tokenisation and can
exchange compact integer ids when convenient.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class Vocabulary:
    """An append-only vocabulary with term and document frequencies."""

    def __init__(self) -> None:
        self._word_to_id: Dict[str, int] = {}
        self._id_to_word: List[str] = []
        self._term_frequency: Counter = Counter()
        self._document_frequency: Counter = Counter()
        self._num_documents = 0
        self._num_tokens = 0

    # -- Construction ------------------------------------------------------
    def add(self, word: str) -> int:
        """Register ``word`` (idempotent) and return its id."""
        word_id = self._word_to_id.get(word)
        if word_id is None:
            word_id = len(self._id_to_word)
            self._word_to_id[word] = word_id
            self._id_to_word.append(word)
        return word_id

    def add_document(self, tokens: Sequence[str]) -> None:
        """Register a document's tokens, updating term and document frequencies."""
        self._num_documents += 1
        self._num_tokens += len(tokens)
        for token in tokens:
            self.add(token)
            self._term_frequency[token] += 1
        for token in set(tokens):
            self._document_frequency[token] += 1

    @classmethod
    def from_documents(cls, documents: Iterable[Sequence[str]]) -> "Vocabulary":
        """Build a vocabulary from an iterable of token sequences."""
        vocab = cls()
        for tokens in documents:
            vocab.add_document(tokens)
        return vocab

    # -- Lookups -------------------------------------------------------------
    def id_of(self, word: str) -> Optional[int]:
        """Return the id of ``word`` or ``None`` if unknown."""
        return self._word_to_id.get(word)

    def word_of(self, word_id: int) -> str:
        """Return the word for ``word_id`` (raises ``IndexError`` if invalid)."""
        return self._id_to_word[word_id]

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __len__(self) -> int:
        return len(self._id_to_word)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_word)

    # -- Statistics ----------------------------------------------------------
    @property
    def num_documents(self) -> int:
        """Number of documents folded into the vocabulary."""
        return self._num_documents

    @property
    def num_tokens(self) -> int:
        """Total number of (non-distinct) tokens observed."""
        return self._num_tokens

    def term_frequency(self, word: str) -> int:
        """Collection frequency of ``word``."""
        return self._term_frequency.get(word, 0)

    def document_frequency(self, word: str) -> int:
        """Number of documents containing ``word``."""
        return self._document_frequency.get(word, 0)

    def collection_probability(self, word: str) -> float:
        """Maximum-likelihood probability of ``word`` in the collection."""
        if self._num_tokens == 0:
            return 0.0
        return self._term_frequency.get(word, 0) / self._num_tokens

    def most_common(self, k: int) -> List[Tuple[str, int]]:
        """Return the ``k`` most frequent words and their term frequencies."""
        return self._term_frequency.most_common(k)
