"""Feature extraction for the aspect classifiers.

The classifiers operate on paragraphs represented as bags of words.  The
extractor optionally drops stopwords and rare terms, which both improves
accuracy and keeps the models small.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from repro.corpus.tokenizer import DEFAULT_STOPWORDS


class BagOfWordsExtractor:
    """Turns token sequences into bag-of-words count dictionaries."""

    def __init__(self, remove_stopwords: bool = True,
                 min_document_frequency: int = 1,
                 stopwords: Optional[Iterable[str]] = None) -> None:
        if min_document_frequency < 1:
            raise ValueError("min_document_frequency must be >= 1")
        self.remove_stopwords = remove_stopwords
        self.min_document_frequency = min_document_frequency
        self.stopwords = frozenset(stopwords) if stopwords is not None else DEFAULT_STOPWORDS
        self._vocabulary: Optional[frozenset] = None

    # -- Fitting -------------------------------------------------------------
    def fit(self, documents: Sequence[Sequence[str]]) -> "BagOfWordsExtractor":
        """Learn the feature vocabulary from training documents."""
        df: Counter = Counter()
        for tokens in documents:
            df.update({t for t in self._filter(tokens)})
        self._vocabulary = frozenset(
            term for term, count in df.items() if count >= self.min_document_frequency
        )
        return self

    @property
    def vocabulary(self) -> frozenset:
        """The learned feature vocabulary (raises if not fitted)."""
        if self._vocabulary is None:
            raise RuntimeError("extractor is not fitted; call fit() first")
        return self._vocabulary

    # -- Transformation ------------------------------------------------------------
    def transform(self, tokens: Sequence[str]) -> Dict[str, int]:
        """Return the bag-of-words features of one document."""
        filtered = self._filter(tokens)
        if self._vocabulary is not None:
            filtered = [t for t in filtered if t in self._vocabulary]
        return dict(Counter(filtered))

    def transform_many(self, documents: Sequence[Sequence[str]]) -> List[Dict[str, int]]:
        """Transform a batch of documents."""
        return [self.transform(tokens) for tokens in documents]

    # -- Internals -------------------------------------------------------------------
    def _filter(self, tokens: Sequence[str]) -> List[str]:
        if not self.remove_stopwords:
            return list(tokens)
        return [t for t in tokens if t not in self.stopwords]
