"""Feature extraction for the aspect classifiers.

The classifiers operate on paragraphs represented as bags of words.  The
extractor optionally drops stopwords and rare terms, which both improves
accuracy and keeps the models small.

Since the classifier stack was vectorized, :meth:`BagOfWordsExtractor.
transform_many` emits a :class:`FeatureMatrix` — a documents×vocabulary CSR
matrix whose per-row column order preserves the *first-occurrence* order of
terms in each document.  That ordering is load-bearing: the scalar Naive
Bayes reference accumulates ``count * log_prob`` contributions in feature
``dict`` insertion order, and float addition is order-dependent, so the
batched kernels replay exactly this order to stay bit-identical.  The
matrix is also a drop-in ``Sequence[Dict[str, int]]`` (each row
materialises to the same dict :meth:`transform` would return), so scalar
consumers keep working unchanged.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.corpus.tokenizer import DEFAULT_STOPWORDS


class FeatureMatrix(Sequence):
    """Bag-of-words counts of many documents in CSR layout.

    ``terms`` is the (sorted) column vocabulary; ``indptr``/``indices``/
    ``data`` are standard CSR arrays except that each row's ``indices`` are
    stored in the document's first-occurrence term order rather than
    sorted — the accumulation order of the scalar Naive Bayes reference.
    Counts are stored as ``float64`` (they are small integers, exact in a
    double) so kernels multiply without a cast.

    Rows index like the list of dicts :meth:`BagOfWordsExtractor.transform_many`
    historically returned: ``matrix[i]`` builds ``{term: count}`` in stored
    (first-occurrence) order, bit-compatible with the scalar pipeline.
    """

    __slots__ = ("terms", "term_column", "indptr", "indices", "data")

    def __init__(self, terms: Sequence[str], indptr: np.ndarray,
                 indices: np.ndarray, data: np.ndarray,
                 term_column: Optional[Dict[str, int]] = None) -> None:
        self.terms = tuple(terms)
        # A caller holding the canonical column map of this vocabulary (the
        # fitted extractor) shares it; rebuilding a vocabulary-sized dict
        # per small batch would dominate page-granularity scoring.
        self.term_column = term_column if term_column is not None else \
            {term: i for i, term in enumerate(self.terms)}
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)

    @classmethod
    def from_dicts(cls, documents: Sequence[Dict[str, int]],
                   terms: Optional[Sequence[str]] = None,
                   term_column: Optional[Dict[str, int]] = None) -> "FeatureMatrix":
        """Build a matrix from bag-of-words dicts (dict order preserved).

        ``terms`` defaults to the sorted union of all document terms;
        ``term_column`` optionally shares the matching precomputed column
        map instead of rebuilding it.
        """
        if terms is None:
            vocabulary = set()
            for features in documents:
                vocabulary.update(features)
            terms = sorted(vocabulary)
        column = term_column if term_column is not None else \
            {term: i for i, term in enumerate(terms)}
        indptr = [0]
        indices: List[int] = []
        data: List[float] = []
        for features in documents:
            for term, count in features.items():
                indices.append(column[term])
                data.append(float(count))
            indptr.append(len(indices))
        return cls(terms, np.asarray(indptr, dtype=np.int64),
                   np.asarray(indices, dtype=np.int64),
                   np.asarray(data, dtype=np.float64),
                   term_column=column)

    @property
    def num_documents(self) -> int:
        """Number of rows."""
        return len(self.indptr) - 1

    def row_dict(self, i: int) -> Dict[str, int]:
        """Row ``i`` as the bag-of-words dict the scalar path would build."""
        start, end = int(self.indptr[i]), int(self.indptr[i + 1])
        return {self.terms[int(col)]: int(count)
                for col, count in zip(self.indices[start:end],
                                      self.data[start:end])}

    # -- Sequence protocol (drop-in for List[Dict[str, int]]) ----------------
    def __len__(self) -> int:
        return self.num_documents

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self.row_dict(j) for j in range(*i.indices(len(self)))]
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        return self.row_dict(i)

    def __iter__(self) -> Iterator[Dict[str, int]]:
        return (self.row_dict(i) for i in range(len(self)))


class BagOfWordsExtractor:
    """Turns token sequences into bag-of-words count dictionaries."""

    def __init__(self, remove_stopwords: bool = True,
                 min_document_frequency: int = 1,
                 stopwords: Optional[Iterable[str]] = None) -> None:
        if min_document_frequency < 1:
            raise ValueError("min_document_frequency must be >= 1")
        self.remove_stopwords = remove_stopwords
        self.min_document_frequency = min_document_frequency
        self.stopwords = frozenset(stopwords) if stopwords is not None else DEFAULT_STOPWORDS
        self._vocabulary: Optional[frozenset] = None
        # Lazily computed views of the fitted vocabulary, shared with every
        # FeatureMatrix this extractor emits (see transform_many).
        self._sorted_terms: Optional[tuple] = None
        self._term_column: Optional[Dict[str, int]] = None

    # -- Fitting -------------------------------------------------------------
    def fit(self, documents: Sequence[Sequence[str]]) -> "BagOfWordsExtractor":
        """Learn the feature vocabulary from training documents."""
        df: Counter = Counter()
        for tokens in documents:
            df.update({t for t in self._filter(tokens)})
        self._vocabulary = frozenset(
            term for term, count in df.items() if count >= self.min_document_frequency
        )
        self._sorted_terms = None
        self._term_column = None
        return self

    @property
    def vocabulary(self) -> frozenset:
        """The learned feature vocabulary (raises if not fitted)."""
        if self._vocabulary is None:
            raise RuntimeError("extractor is not fitted; call fit() first")
        return self._vocabulary

    # -- Transformation ------------------------------------------------------------
    def transform(self, tokens: Sequence[str]) -> Dict[str, int]:
        """Return the bag-of-words features of one document."""
        filtered = self._filter(tokens)
        if self._vocabulary is not None:
            filtered = [t for t in filtered if t in self._vocabulary]
        return dict(Counter(filtered))

    def transform_many(self, documents: Sequence[Sequence[str]]) -> FeatureMatrix:
        """Transform a batch of documents into a :class:`FeatureMatrix`.

        The result indexes like the historical list of dicts (each row is
        the exact dict :meth:`transform` returns, in the same term order)
        while exposing CSR arrays to the batched classifier kernels.
        """
        if self._vocabulary is not None:
            if self._sorted_terms is None:
                self._sorted_terms = tuple(sorted(self._vocabulary))
                self._term_column = {term: i for i, term
                                     in enumerate(self._sorted_terms)}
            terms, column = self._sorted_terms, self._term_column
        else:
            terms = column = None
        return FeatureMatrix.from_dicts(
            [self.transform(tokens) for tokens in documents],
            terms=terms, term_column=column)

    # -- Internals -------------------------------------------------------------------
    def _filter(self, tokens: Sequence[str]) -> List[str]:
        if not self.remove_stopwords:
            return list(tokens)
        return [t for t in tokens if t not in self.stopwords]
