"""Relevance functions ``Y`` mapping pages to relevant / irrelevant.

The paper's target aspect is given by a function ``Y : P -> {1, 0}``
(Sect. I, *Input*), materialised in the experiments by a pre-trained
classifier per aspect whose output is treated as ground truth.  Two
implementations are provided:

* :class:`OracleRelevance` reads the generator's ground-truth paragraph
  labels — this is what the evaluation metrics use;
* :class:`ClassifierRelevance` wraps a trained
  :class:`~repro.aspects.classifier.AspectClassifierSuite` — this is what the
  L2Q learner itself sees, mirroring the paper's setup where the learner only
  has classifier output.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

from repro.aspects.classifier import AspectClassifierSuite
from repro.corpus.document import Page


class RelevanceFunction(ABC):
    """Abstract relevance function ``Y`` for one target aspect."""

    def __init__(self, aspect: str) -> None:
        self.aspect = aspect

    @abstractmethod
    def __call__(self, page: Page) -> int:
        """Return 1 if ``page`` is relevant to the target aspect, else 0."""

    def score(self, page: Page) -> float:
        """Real-valued relevance (defaults to the binary label)."""
        return float(self(page))


class OracleRelevance(RelevanceFunction):
    """Ground-truth relevance from the synthetic generator's labels."""

    def __call__(self, page: Page) -> int:
        return int(page.has_aspect(self.aspect))


class ClassifierRelevance(RelevanceFunction):
    """Relevance given by a trained aspect classifier (with memoisation).

    Each page is assessed once through the suite's batched kernel
    (:meth:`~repro.aspects.classifier.AspectClassifierSuite.page_assessment`
    scores every paragraph in one pass) and both the binary label and the
    relevance probability are cached together.
    """

    def __init__(self, aspect: str, suite: AspectClassifierSuite) -> None:
        super().__init__(aspect)
        self.suite = suite
        self._label_cache: Dict[str, int] = {}
        self._score_cache: Dict[str, float] = {}

    def _assess(self, page: Page) -> tuple:
        label, value = self.suite.page_assessment(page, self.aspect)
        self._label_cache[page.page_id] = label
        self._score_cache[page.page_id] = value
        return label, value

    def __call__(self, page: Page) -> int:
        label = self._label_cache.get(page.page_id)
        if label is None:
            label, _ = self._assess(page)
        return label

    def score(self, page: Page) -> float:
        value = self._score_cache.get(page.page_id)
        if value is None:
            _, value = self._assess(page)
        return value


class AllRelevant(RelevanceFunction):
    """The ``Y*`` function of Sect. V-B: every page counts as relevant.

    Used to compute the denominator of collective precision
    (the collective recall w.r.t. *all* pages).
    """

    def __init__(self, aspect: str = "*") -> None:
        super().__init__(aspect)

    def __call__(self, page: Page) -> int:
        return 1
