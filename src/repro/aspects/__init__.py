"""Aspect classification substrate: features, Naive Bayes, classifier suite, relevance."""

from repro.aspects.classifier import (
    IRRELEVANT,
    RELEVANT,
    AspectAccuracy,
    AspectClassifierSuite,
)
from repro.aspects.features import BagOfWordsExtractor
from repro.aspects.naive_bayes import MultinomialNaiveBayes
from repro.aspects.relevance import (
    AllRelevant,
    ClassifierRelevance,
    OracleRelevance,
    RelevanceFunction,
)

__all__ = [
    "AllRelevant",
    "AspectAccuracy",
    "AspectClassifierSuite",
    "BagOfWordsExtractor",
    "ClassifierRelevance",
    "IRRELEVANT",
    "MultinomialNaiveBayes",
    "OracleRelevance",
    "RELEVANT",
    "RelevanceFunction",
]
