"""Aspect classification substrate: features, Naive Bayes, classifier suite, relevance."""

from repro.aspects.classifier import (
    IRRELEVANT,
    RELEVANT,
    AspectAccuracy,
    AspectClassifierSuite,
)
from repro.aspects.features import BagOfWordsExtractor, FeatureMatrix
from repro.aspects.naive_bayes import MultinomialNaiveBayes
from repro.aspects.relevance import (
    AllRelevant,
    ClassifierRelevance,
    OracleRelevance,
    RelevanceFunction,
)

__all__ = [
    "AllRelevant",
    "AspectAccuracy",
    "AspectClassifierSuite",
    "BagOfWordsExtractor",
    "ClassifierRelevance",
    "FeatureMatrix",
    "IRRELEVANT",
    "MultinomialNaiveBayes",
    "OracleRelevance",
    "RELEVANT",
    "RelevanceFunction",
]
