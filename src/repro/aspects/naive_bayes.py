"""Multinomial Naive Bayes classifier (from scratch).

The paper trains a CRF classifier per aspect whose output is treated as
ground truth (Fig. 9 accuracies of 0.85-0.99).  A multinomial Naive Bayes
over bag-of-words features reaches a comparable accuracy band on the
synthetic corpus while keeping the reproduction dependency-free, and — as in
the paper — its role is only to materialise the relevance function ``Y``.

Two implementations live side by side, per the vectorization policy of the
selection kernels: the scalar dict-loop methods (``fit``,
``joint_log_likelihood``, ``predict``, ``predict_proba``) are the reference
oracles, and the batched array methods (``fit_matrix``,
``joint_log_likelihood_matrix``, ``predict_many``/``predict_proba_many``
over a :class:`~repro.aspects.features.FeatureMatrix`) are required to be
bit-identical to them.  Bit-identity hinges on two details:

* transcendentals go through :func:`repro.utils.vectorize.exact_log` /
  :func:`~repro.utils.vectorize.exact_exp` (scalar libm per unique value),
  and
* per-document accumulation replays the scalar dict-iteration order via
  :func:`~repro.utils.vectorize.rowwise_ordered_sum` — the
  :class:`FeatureMatrix` stores each row's columns in first-occurrence
  order precisely so this is possible.

The fitted state exists in two coupled forms: the scalar dicts and a dense
``(n_classes, n_terms + 1)`` log-probability table whose last column is the
unseen-term default (bitwise equal to the smoothed zero-count entry, since
``0 + alpha == alpha``).  ``from_arrays`` restores a model from the raw
table (e.g. a zero-copy store attachment); the scalar dicts are then built
lazily on first scalar-path use.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.aspects.features import FeatureMatrix
from repro.utils.vectorize import exact_exp, exact_log, rowwise_ordered_sum


class MultinomialNaiveBayes:
    """Multinomial Naive Bayes with Laplace (add-``alpha``) smoothing."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("the smoothing parameter alpha must be positive")
        self.alpha = float(alpha)
        self._class_log_prior: Dict[Hashable, float] = {}
        self._feature_log_prob: Dict[Hashable, Dict[str, float]] = {}
        self._default_log_prob: Dict[Hashable, float] = {}
        self._classes: List[Hashable] = []
        self._vocabulary_size = 0
        # Array form of the fitted state (terms sorted; table column j is
        # the log probability of _terms[j], last column the unseen default).
        self._terms: Tuple[str, ...] = ()
        self._term_column: Optional[Dict[str, int]] = None
        self._prior_array: Optional[np.ndarray] = None
        self._log_prob_table: Optional[np.ndarray] = None
        # Matrix-vocabulary → model-column map, cached per extractor
        # vocabulary: every FeatureMatrix of one extractor shares a terms
        # tuple, and rebuilding the map per call dominates small batches.
        self._column_map_terms: Optional[Tuple[str, ...]] = None
        self._column_map: Optional[np.ndarray] = None

    # -- Training ------------------------------------------------------------
    def fit(self, documents: Sequence[Mapping[str, int]],
            labels: Sequence[Hashable]) -> "MultinomialNaiveBayes":
        """Fit the model on bag-of-words documents and their labels."""
        if len(documents) != len(labels):
            raise ValueError("documents and labels must have the same length")
        if not documents:
            raise ValueError("cannot fit on an empty training set")

        class_counts: Counter = Counter(labels)
        self._classes = sorted(class_counts, key=str)
        total = len(labels)
        self._class_log_prior = {
            label: math.log(count / total) for label, count in class_counts.items()
        }

        vocabulary = set()
        term_counts: Dict[Hashable, Counter] = defaultdict(Counter)
        for features, label in zip(documents, labels):
            for term, count in features.items():
                if count < 0:
                    raise ValueError("feature counts must be non-negative")
                term_counts[label][term] += count
                vocabulary.add(term)
        self._vocabulary_size = max(len(vocabulary), 1)

        self._feature_log_prob = {}
        self._default_log_prob = {}
        for label in self._classes:
            counts = term_counts[label]
            total_count = sum(counts.values())
            denominator = total_count + self.alpha * self._vocabulary_size
            self._feature_log_prob[label] = {
                term: math.log((counts[term] + self.alpha) / denominator)
                for term in counts
            }
            self._default_log_prob[label] = math.log(self.alpha / denominator)
        self._build_arrays_from_dicts(sorted(vocabulary))
        return self

    def fit_matrix(self, matrix: FeatureMatrix,
                   labels: Sequence[Hashable]) -> "MultinomialNaiveBayes":
        """Vectorized :meth:`fit` over a :class:`FeatureMatrix`.

        Bit-identical to ``fit(list(matrix), labels)``: per-class term
        counts are exact (integer-valued float sums via ``np.bincount``),
        the smoothed ratios are formed by the same IEEE operations as the
        scalar path, and the logs go through ``exact_log``.
        """
        n_docs = matrix.num_documents
        if n_docs != len(labels):
            raise ValueError("documents and labels must have the same length")
        if n_docs == 0:
            raise ValueError("cannot fit on an empty training set")
        if matrix.data.size and float(matrix.data.min()) < 0:
            raise ValueError("feature counts must be non-negative")

        class_counts: Counter = Counter(labels)
        self._classes = sorted(class_counts, key=str)
        total = len(labels)
        self._class_log_prior = {
            label: math.log(count / total) for label, count in class_counts.items()
        }

        # Columns actually used by some document are the scalar path's
        # vocabulary; unused extractor columns never enter the model.
        used = np.unique(matrix.indices)
        self._vocabulary_size = max(int(used.size), 1)
        terms = [matrix.terms[int(c)] for c in used]

        class_index = {label: i for i, label in enumerate(self._classes)}
        lengths = np.diff(matrix.indptr)
        row_classes = np.fromiter((class_index[label] for label in labels),
                                  dtype=np.int64, count=n_docs)
        entry_classes = np.repeat(row_classes, lengths)

        width = len(matrix.terms)
        n_classes = len(self._classes)
        table = np.empty((n_classes, len(terms) + 1), dtype=np.float64)
        priors = np.empty(n_classes, dtype=np.float64)
        for c, label in enumerate(self._classes):
            mask = entry_classes == c
            counts = np.bincount(matrix.indices[mask],
                                 weights=matrix.data[mask], minlength=width)
            counts = counts[used]
            total_count = float(counts.sum())
            denominator = total_count + self.alpha * self._vocabulary_size
            table[c, :-1] = exact_log((counts + self.alpha) / denominator)
            table[c, -1] = math.log(self.alpha / denominator)
            priors[c] = self._class_log_prior[label]
        self._set_arrays(terms, priors, table)
        # Scalar dict state is rebuilt lazily if an oracle method is called.
        self._feature_log_prob = {}
        self._default_log_prob = {}
        return self

    @classmethod
    def from_arrays(cls, alpha: float, classes: Sequence[Hashable],
                    vocabulary_size: int, terms: Sequence[str],
                    class_log_prior: np.ndarray,
                    log_prob_table: np.ndarray) -> "MultinomialNaiveBayes":
        """Restore a fitted model from its raw-array state.

        Accepts read-only views (e.g. ``np.frombuffer`` over a shared
        store segment); nothing is copied.  Scalar dict state is built
        lazily only if a scalar oracle method is invoked.
        """
        model = cls(alpha=alpha)
        model._classes = list(classes)
        model._vocabulary_size = int(vocabulary_size)
        priors = np.asarray(class_log_prior, dtype=np.float64)
        model._class_log_prior = {
            label: float(priors[c]) for c, label in enumerate(model._classes)
        }
        model._set_arrays(terms, priors,
                          np.asarray(log_prob_table, dtype=np.float64))
        return model

    def _set_arrays(self, terms: Sequence[str], priors: np.ndarray,
                    table: np.ndarray) -> None:
        self._terms = tuple(terms)
        self._term_column = None
        self._prior_array = priors
        self._log_prob_table = table
        self._column_map_terms = None
        self._column_map = None

    def _column_map_for(self, terms: Tuple[str, ...]) -> np.ndarray:
        """Model-column index of each matrix column (unseen → default)."""
        if terms is not self._column_map_terms and \
                terms != self._column_map_terms:
            if terms == self._terms:
                # Matrix columns come straight from the model's own
                # vocabulary (the usual case: the suite's one extractor
                # produced both) — the map is the identity.
                self._column_map = np.arange(len(terms), dtype=np.int64)
            else:
                if self._term_column is None:
                    self._term_column = {term: i for i, term
                                         in enumerate(self._terms)}
                default_column = len(self._terms)
                self._column_map = np.fromiter(
                    (self._term_column.get(term, default_column)
                     for term in terms),
                    dtype=np.int64, count=len(terms))
            self._column_map_terms = terms
        return self._column_map

    def _build_arrays_from_dicts(self, terms: Sequence[str]) -> None:
        n_classes = len(self._classes)
        table = np.empty((n_classes, len(terms) + 1), dtype=np.float64)
        priors = np.empty(n_classes, dtype=np.float64)
        for c, label in enumerate(self._classes):
            per_term = self._feature_log_prob[label]
            default = self._default_log_prob[label]
            table[c, :-1] = [per_term.get(term, default) for term in terms]
            table[c, -1] = default
            priors[c] = self._class_log_prior[label]
        self._set_arrays(terms, priors, table)

    def _ensure_scalar_state(self) -> None:
        """Materialise the dict state from the array state (attach path)."""
        if self._feature_log_prob or self._log_prob_table is None:
            return
        table = self._log_prob_table
        for c, label in enumerate(self._classes):
            self._feature_log_prob[label] = {
                term: float(table[c, j]) for j, term in enumerate(self._terms)
            }
            self._default_log_prob[label] = float(table[c, -1])

    @property
    def classes(self) -> List[Hashable]:
        """The class labels seen during training."""
        return list(self._classes)

    def _check_fitted(self) -> None:
        if not self._classes:
            raise RuntimeError("model is not fitted; call fit() first")

    # -- Inference ------------------------------------------------------------------
    def joint_log_likelihood(self, features: Mapping[str, int]) -> Dict[Hashable, float]:
        """Unnormalised class log posteriors for one document."""
        self._check_fitted()
        self._ensure_scalar_state()
        scores: Dict[Hashable, float] = {}
        for label in self._classes:
            log_prob = self._class_log_prior.get(label, float("-inf"))
            per_term = self._feature_log_prob[label]
            default = self._default_log_prob[label]
            for term, count in features.items():
                log_prob += count * per_term.get(term, default)
            scores[label] = log_prob
        return scores

    def joint_log_likelihood_matrix(self, matrix: FeatureMatrix) -> np.ndarray:
        """Batched :meth:`joint_log_likelihood`: a ``docs x classes`` array.

        Column ``c`` holds the scores of ``self.classes[c]``.  Bit-identical
        to the scalar method: contributions are formed by the same
        ``count * log_prob`` multiplies, mapped through the model's term
        table (unseen terms hit the default column, mirroring
        ``per_term.get(term, default)``), and accumulated in each row's
        stored first-occurrence order by ``rowwise_ordered_sum``.
        """
        self._check_fitted()
        if self._log_prob_table is None:
            raise RuntimeError("model has no array state; refit the model")
        column_map = self._column_map_for(matrix.terms)
        mapped = (column_map[matrix.indices] if matrix.indices.size
                  else matrix.indices)
        scores = np.empty((matrix.num_documents, len(self._classes)),
                          dtype=np.float64)
        for c in range(len(self._classes)):
            row = self._log_prob_table[c]
            contributions = matrix.data * row[mapped]
            init = np.full(matrix.num_documents, self._prior_array[c],
                           dtype=np.float64)
            scores[:, c] = rowwise_ordered_sum(matrix.indptr, contributions, init)
        return scores

    def predict(self, features: Mapping[str, int]) -> Hashable:
        """Most probable class for one document."""
        scores = self.joint_log_likelihood(features)
        return max(sorted(scores, key=str), key=lambda label: scores[label])

    def predict_many(self, documents: Sequence[Mapping[str, int]]) -> List[Hashable]:
        """Predict a batch of documents (batched kernel for a FeatureMatrix).

        ``np.argmax`` keeps the first of equal columns; the columns are in
        ``self._classes`` (str-sorted) order, which is exactly the scalar
        tie-break ``max(sorted(scores, key=str), ...)``.
        """
        if isinstance(documents, FeatureMatrix) and self._log_prob_table is not None:
            scores = self.joint_log_likelihood_matrix(documents)
            winners = np.argmax(scores, axis=1)
            return [self._classes[int(c)] for c in winners]
        return [self.predict(features) for features in documents]

    def predict_proba(self, features: Mapping[str, int]) -> Dict[Hashable, float]:
        """Normalised class posteriors for one document."""
        scores = self.joint_log_likelihood(features)
        max_score = max(scores.values())
        exp_scores = {label: math.exp(score - max_score) for label, score in scores.items()}
        total = sum(exp_scores.values())
        return {label: value / total for label, value in exp_scores.items()}

    def predict_proba_many(self, matrix: FeatureMatrix) -> np.ndarray:
        """Batched :meth:`predict_proba`: a ``docs x classes`` array.

        Bit-identical to the scalar method: the row maximum is subtracted
        (exact), ``exact_exp`` stands in for ``math.exp``, and the
        normaliser is summed left-to-right in class order like
        ``sum(exp_scores.values())``.
        """
        return self.posteriors_from_scores(
            self.joint_log_likelihood_matrix(matrix))

    def posteriors_from_scores(self, scores: np.ndarray) -> np.ndarray:
        """Normalise a :meth:`joint_log_likelihood_matrix` result in place
        of recomputing it — callers that need both labels and posteriors
        run the likelihood kernel once and derive both from its output."""
        if scores.shape[0] == 0:
            return scores
        max_scores = scores.max(axis=1)
        exps = exact_exp(scores - max_scores[:, None])
        totals = exps[:, 0].copy()
        for c in range(1, exps.shape[1]):
            totals = totals + exps[:, c]
        return exps / totals[:, None]

    def score(self, documents: Sequence[Mapping[str, int]],
              labels: Sequence[Hashable]) -> float:
        """Accuracy over a labelled evaluation set."""
        if len(documents) != len(labels):
            raise ValueError("documents and labels must have the same length")
        if not documents:
            return 0.0
        predictions = self.predict_many(documents)
        correct = sum(1 for predicted, label in zip(predictions, labels)
                      if predicted == label)
        return correct / len(documents)
