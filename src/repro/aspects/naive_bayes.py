"""Multinomial Naive Bayes classifier (from scratch).

The paper trains a CRF classifier per aspect whose output is treated as
ground truth (Fig. 9 accuracies of 0.85-0.99).  A multinomial Naive Bayes
over bag-of-words features reaches a comparable accuracy band on the
synthetic corpus while keeping the reproduction dependency-free, and — as in
the paper — its role is only to materialise the relevance function ``Y``.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple


class MultinomialNaiveBayes:
    """Multinomial Naive Bayes with Laplace (add-``alpha``) smoothing."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("the smoothing parameter alpha must be positive")
        self.alpha = float(alpha)
        self._class_log_prior: Dict[Hashable, float] = {}
        self._feature_log_prob: Dict[Hashable, Dict[str, float]] = {}
        self._default_log_prob: Dict[Hashable, float] = {}
        self._classes: List[Hashable] = []
        self._vocabulary_size = 0

    # -- Training ------------------------------------------------------------
    def fit(self, documents: Sequence[Mapping[str, int]],
            labels: Sequence[Hashable]) -> "MultinomialNaiveBayes":
        """Fit the model on bag-of-words documents and their labels."""
        if len(documents) != len(labels):
            raise ValueError("documents and labels must have the same length")
        if not documents:
            raise ValueError("cannot fit on an empty training set")

        class_counts: Counter = Counter(labels)
        self._classes = sorted(class_counts, key=str)
        total = len(labels)
        self._class_log_prior = {
            label: math.log(count / total) for label, count in class_counts.items()
        }

        vocabulary = set()
        term_counts: Dict[Hashable, Counter] = defaultdict(Counter)
        for features, label in zip(documents, labels):
            for term, count in features.items():
                if count < 0:
                    raise ValueError("feature counts must be non-negative")
                term_counts[label][term] += count
                vocabulary.add(term)
        self._vocabulary_size = max(len(vocabulary), 1)

        self._feature_log_prob = {}
        self._default_log_prob = {}
        for label in self._classes:
            counts = term_counts[label]
            total_count = sum(counts.values())
            denominator = total_count + self.alpha * self._vocabulary_size
            self._feature_log_prob[label] = {
                term: math.log((counts[term] + self.alpha) / denominator)
                for term in counts
            }
            self._default_log_prob[label] = math.log(self.alpha / denominator)
        return self

    @property
    def classes(self) -> List[Hashable]:
        """The class labels seen during training."""
        return list(self._classes)

    def _check_fitted(self) -> None:
        if not self._classes:
            raise RuntimeError("model is not fitted; call fit() first")

    # -- Inference ------------------------------------------------------------------
    def joint_log_likelihood(self, features: Mapping[str, int]) -> Dict[Hashable, float]:
        """Unnormalised class log posteriors for one document."""
        self._check_fitted()
        scores: Dict[Hashable, float] = {}
        for label in self._classes:
            log_prob = self._class_log_prior.get(label, float("-inf"))
            per_term = self._feature_log_prob[label]
            default = self._default_log_prob[label]
            for term, count in features.items():
                log_prob += count * per_term.get(term, default)
            scores[label] = log_prob
        return scores

    def predict(self, features: Mapping[str, int]) -> Hashable:
        """Most probable class for one document."""
        scores = self.joint_log_likelihood(features)
        return max(sorted(scores, key=str), key=lambda label: scores[label])

    def predict_many(self, documents: Sequence[Mapping[str, int]]) -> List[Hashable]:
        """Predict a batch of documents."""
        return [self.predict(features) for features in documents]

    def predict_proba(self, features: Mapping[str, int]) -> Dict[Hashable, float]:
        """Normalised class posteriors for one document."""
        scores = self.joint_log_likelihood(features)
        max_score = max(scores.values())
        exp_scores = {label: math.exp(score - max_score) for label, score in scores.items()}
        total = sum(exp_scores.values())
        return {label: value / total for label, value in exp_scores.items()}

    def score(self, documents: Sequence[Mapping[str, int]],
              labels: Sequence[Hashable]) -> float:
        """Accuracy over a labelled evaluation set."""
        if len(documents) != len(labels):
            raise ValueError("documents and labels must have the same length")
        if not documents:
            return 0.0
        correct = sum(1 for features, label in zip(documents, labels)
                      if self.predict(features) == label)
        return correct / len(documents)
