"""Per-aspect paragraph classifiers (the paper's Fig. 9 infrastructure).

The paper trains one classifier per target aspect ``Y`` that labels each
paragraph as relevant or not; page-level relevance follows from the
paragraph labels.  This module provides :class:`AspectClassifierSuite`,
which trains one binary Naive-Bayes classifier per aspect on labelled
paragraphs of the domain corpus and reports per-aspect accuracy on a held
out split — the reproduction of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aspects.features import BagOfWordsExtractor
from repro.aspects.naive_bayes import MultinomialNaiveBayes
from repro.corpus.corpus import Corpus
from repro.corpus.document import Page, Paragraph
from repro.utils.rng import SeededRandom

RELEVANT = 1
IRRELEVANT = 0


@dataclass(frozen=True)
class AspectAccuracy:
    """Evaluation record for one aspect classifier (one Fig. 9 row)."""

    aspect: str
    paragraph_frequency: int
    accuracy: float
    num_train: int
    num_test: int


class AspectClassifierSuite:
    """One binary paragraph classifier per target aspect."""

    def __init__(self, aspects: Sequence[str], alpha: float = 0.5,
                 min_document_frequency: int = 1) -> None:
        if not aspects:
            raise ValueError("at least one aspect is required")
        self.aspects = list(aspects)
        self.alpha = alpha
        self.min_document_frequency = min_document_frequency
        self._extractor = BagOfWordsExtractor(min_document_frequency=min_document_frequency)
        self._models: Dict[str, MultinomialNaiveBayes] = {}
        self._accuracies: Dict[str, AspectAccuracy] = {}

    # -- Training ------------------------------------------------------------
    def fit(self, paragraphs: Sequence[Paragraph], holdout_fraction: float = 0.25,
            seed: int = 13) -> "AspectClassifierSuite":
        """Train all per-aspect classifiers from labelled paragraphs.

        Parameters
        ----------
        paragraphs:
            Labelled paragraphs (their ``aspect`` field is the ground truth).
        holdout_fraction:
            Fraction of paragraphs held out to measure the Fig. 9 accuracy.
        seed:
            Seed for the train/holdout shuffle.
        """
        if not paragraphs:
            raise ValueError("cannot fit on an empty paragraph collection")
        if not 0.0 <= holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in [0, 1)")

        rng = SeededRandom(seed).spawn("aspect-classifier")
        shuffled = rng.shuffled(list(paragraphs))
        holdout_size = int(len(shuffled) * holdout_fraction)
        holdout = shuffled[:holdout_size]
        train = shuffled[holdout_size:] or shuffled

        train_tokens = [p.tokens for p in train]
        self._extractor.fit(train_tokens)
        train_features = self._extractor.transform_many(train_tokens)
        holdout_features = self._extractor.transform_many([p.tokens for p in holdout])

        for aspect in self.aspects:
            labels = [RELEVANT if p.aspect == aspect else IRRELEVANT for p in train]
            model = MultinomialNaiveBayes(alpha=self.alpha)
            if len(set(labels)) < 2:
                # Degenerate training set: the aspect never (or always)
                # occurs.  Fall back to a trivial model fitted on the single
                # observed class; predictions will simply repeat that class.
                model.fit(train_features, labels)
            else:
                model.fit(train_features, labels)
            self._models[aspect] = model

            frequency = sum(1 for p in paragraphs if p.aspect == aspect)
            if holdout:
                holdout_labels = [RELEVANT if p.aspect == aspect else IRRELEVANT
                                  for p in holdout]
                accuracy = model.score(holdout_features, holdout_labels)
            else:
                accuracy = model.score(
                    train_features,
                    [RELEVANT if p.aspect == aspect else IRRELEVANT for p in train],
                )
            self._accuracies[aspect] = AspectAccuracy(
                aspect=aspect,
                paragraph_frequency=frequency,
                accuracy=accuracy,
                num_train=len(train),
                num_test=len(holdout),
            )
        return self

    @classmethod
    def train_on_corpus(cls, corpus: Corpus, holdout_fraction: float = 0.25,
                        seed: int = 13, **kwargs) -> "AspectClassifierSuite":
        """Train a suite on every paragraph of ``corpus``."""
        suite = cls(corpus.aspects, **kwargs)
        return suite.fit(list(corpus.iter_paragraphs()),
                         holdout_fraction=holdout_fraction, seed=seed)

    def _check_fitted(self) -> None:
        if not self._models:
            raise RuntimeError("classifier suite is not fitted; call fit() first")

    # -- Prediction ------------------------------------------------------------------
    def classify_paragraph(self, paragraph: Paragraph, aspect: str) -> int:
        """Predict whether one paragraph is relevant to ``aspect`` (1/0)."""
        self._check_fitted()
        model = self._models[aspect]
        features = self._extractor.transform(paragraph.tokens)
        return int(model.predict(features))

    def paragraph_probability(self, paragraph: Paragraph, aspect: str) -> float:
        """Posterior probability that the paragraph is relevant to ``aspect``."""
        self._check_fitted()
        model = self._models[aspect]
        features = self._extractor.transform(paragraph.tokens)
        probabilities = model.predict_proba(features)
        return probabilities.get(RELEVANT, 0.0)

    def classify_page(self, page: Page, aspect: str) -> int:
        """Predict whether a page is relevant: any relevant paragraph suffices."""
        return int(any(self.classify_paragraph(p, aspect) == RELEVANT
                       for p in page.paragraphs))

    def page_probability(self, page: Page, aspect: str) -> float:
        """Maximum paragraph relevance probability of a page."""
        self._check_fitted()
        if not page.paragraphs:
            return 0.0
        return max(self.paragraph_probability(p, aspect) for p in page.paragraphs)

    # -- Reporting --------------------------------------------------------------------
    def accuracy_report(self) -> List[AspectAccuracy]:
        """Per-aspect accuracy records (the Fig. 9 table rows)."""
        self._check_fitted()
        return [self._accuracies[aspect] for aspect in self.aspects]

    def accuracy_of(self, aspect: str) -> float:
        """Held-out accuracy of one aspect classifier."""
        self._check_fitted()
        return self._accuracies[aspect].accuracy
