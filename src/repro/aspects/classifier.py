"""Per-aspect paragraph classifiers (the paper's Fig. 9 infrastructure).

The paper trains one classifier per target aspect ``Y`` that labels each
paragraph as relevant or not; page-level relevance follows from the
paragraph labels.  This module provides :class:`AspectClassifierSuite`,
which trains one binary Naive-Bayes classifier per aspect on labelled
paragraphs of the domain corpus and reports per-aspect accuracy on a held
out split — the reproduction of Fig. 9.

Training and page scoring run on the batched array kernels of
:class:`~repro.aspects.naive_bayes.MultinomialNaiveBayes` (bit-identical to
the scalar oracles by construction).  A fitted suite also serialises to raw
arrays (:meth:`AspectClassifierSuite.to_state` /
:meth:`~AspectClassifierSuite.from_state`): one shared vocabulary table
plus a per-aspect class-prior vector and log-probability matrix — the
layout the shared corpus store publishes so distributed workers can attach
trained suites zero-copy instead of retraining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.aspects.features import BagOfWordsExtractor
from repro.aspects.naive_bayes import MultinomialNaiveBayes
from repro.corpus.corpus import Corpus
from repro.corpus.document import Page, Paragraph
from repro.utils.rng import SeededRandom

RELEVANT = 1
IRRELEVANT = 0


@dataclass(frozen=True)
class AspectAccuracy:
    """Evaluation record for one aspect classifier (one Fig. 9 row)."""

    aspect: str
    paragraph_frequency: int
    accuracy: float
    num_train: int
    num_test: int


class AspectClassifierSuite:
    """One binary paragraph classifier per target aspect."""

    def __init__(self, aspects: Sequence[str], alpha: float = 0.5,
                 min_document_frequency: int = 1) -> None:
        if not aspects:
            raise ValueError("at least one aspect is required")
        self.aspects = list(aspects)
        self.alpha = alpha
        self.min_document_frequency = min_document_frequency
        self._extractor = BagOfWordsExtractor(min_document_frequency=min_document_frequency)
        self._models: Dict[str, MultinomialNaiveBayes] = {}
        self._accuracies: Dict[str, AspectAccuracy] = {}

    # -- Training ------------------------------------------------------------
    def fit(self, paragraphs: Sequence[Paragraph], holdout_fraction: float = 0.25,
            seed: int = 13) -> "AspectClassifierSuite":
        """Train all per-aspect classifiers from labelled paragraphs.

        Parameters
        ----------
        paragraphs:
            Labelled paragraphs (their ``aspect`` field is the ground truth).
        holdout_fraction:
            Fraction of paragraphs held out to measure the Fig. 9 accuracy.
        seed:
            Seed for the train/holdout shuffle.
        """
        if not paragraphs:
            raise ValueError("cannot fit on an empty paragraph collection")
        if not 0.0 <= holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in [0, 1)")

        rng = SeededRandom(seed).spawn("aspect-classifier")
        shuffled = rng.shuffled(list(paragraphs))
        holdout_size = int(len(shuffled) * holdout_fraction)
        holdout = shuffled[:holdout_size]
        train = shuffled[holdout_size:]
        if not train:
            # Training on the holdout itself would leak the Fig. 9
            # evaluation set into the models, so refuse loudly instead.
            raise ValueError(
                f"holdout_fraction={holdout_fraction!r} holds out all "
                f"{len(shuffled)} paragraphs, leaving no training data")

        train_tokens = [p.tokens for p in train]
        self._extractor.fit(train_tokens)
        train_features = self._extractor.transform_many(train_tokens)
        holdout_features = self._extractor.transform_many([p.tokens for p in holdout])

        for aspect in self.aspects:
            labels = [RELEVANT if p.aspect == aspect else IRRELEVANT for p in train]
            # A degenerate training set (the aspect never or always occurs)
            # yields a single-class model that simply repeats its class.
            model = MultinomialNaiveBayes(alpha=self.alpha)
            model.fit_matrix(train_features, labels)
            self._models[aspect] = model

            frequency = sum(1 for p in paragraphs if p.aspect == aspect)
            if holdout:
                holdout_labels = [RELEVANT if p.aspect == aspect else IRRELEVANT
                                  for p in holdout]
                accuracy = model.score(holdout_features, holdout_labels)
            else:
                accuracy = model.score(train_features, labels)
            self._accuracies[aspect] = AspectAccuracy(
                aspect=aspect,
                paragraph_frequency=frequency,
                accuracy=accuracy,
                num_train=len(train),
                num_test=len(holdout),
            )
        return self

    @classmethod
    def train_on_corpus(cls, corpus: Corpus, holdout_fraction: float = 0.25,
                        seed: int = 13, **kwargs) -> "AspectClassifierSuite":
        """Train a suite on every paragraph of ``corpus``."""
        suite = cls(corpus.aspects, **kwargs)
        return suite.fit(list(corpus.iter_paragraphs()),
                         holdout_fraction=holdout_fraction, seed=seed)

    def _check_fitted(self) -> None:
        if not self._models:
            raise RuntimeError("classifier suite is not fitted; call fit() first")

    # -- Serialisation ---------------------------------------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, Dict[str, np.ndarray]]]:
        """Raw-array state: ``(metadata, {aspect: {prior, logprob}})``.

        The metadata is a small picklable dict (config, shared vocabulary
        table, per-aspect classes and accuracy records); the arrays are the
        per-aspect class-prior vectors and log-probability matrices, ready
        to be published as zero-copy store sections.
        """
        self._check_fitted()
        terms = self._models[self.aspects[0]]._terms
        meta: Dict[str, Any] = {
            "aspects": list(self.aspects),
            "alpha": self.alpha,
            "min_document_frequency": self.min_document_frequency,
            "extractor": {
                "remove_stopwords": self._extractor.remove_stopwords,
                "stopwords": sorted(self._extractor.stopwords),
                "vocabulary": sorted(self._extractor._vocabulary or ()),
            },
            "terms": list(terms),
            "models": {},
            "accuracies": {
                aspect: {
                    "aspect": record.aspect,
                    "paragraph_frequency": record.paragraph_frequency,
                    "accuracy": record.accuracy,
                    "num_train": record.num_train,
                    "num_test": record.num_test,
                }
                for aspect, record in self._accuracies.items()
            },
        }
        arrays: Dict[str, Dict[str, np.ndarray]] = {}
        for aspect in self.aspects:
            model = self._models[aspect]
            if model._terms != terms:
                raise ValueError(
                    f"aspect {aspect!r} has a diverging vocabulary table; "
                    "suite models must share one")
            meta["models"][aspect] = {
                "classes": list(model._classes),
                "vocabulary_size": model._vocabulary_size,
            }
            arrays[aspect] = {
                "prior": model._prior_array,
                "logprob": model._log_prob_table,
            }
        return meta, arrays

    @classmethod
    def from_state(cls, meta: Mapping[str, Any],
                   arrays: Mapping[str, Mapping[str, np.ndarray]]) -> "AspectClassifierSuite":
        """Rebuild a fitted suite from :meth:`to_state` output.

        The arrays may be read-only ``np.frombuffer`` views over a shared
        store segment — nothing is copied, so attaching a published suite
        costs only the metadata unpickle.
        """
        suite = cls(meta["aspects"], alpha=meta["alpha"],
                    min_document_frequency=meta["min_document_frequency"])
        extractor_meta = meta["extractor"]
        suite._extractor = BagOfWordsExtractor(
            remove_stopwords=extractor_meta["remove_stopwords"],
            min_document_frequency=meta["min_document_frequency"],
            stopwords=extractor_meta["stopwords"])
        suite._extractor._vocabulary = frozenset(extractor_meta["vocabulary"])
        terms = tuple(meta["terms"])
        for aspect in suite.aspects:
            model_meta = meta["models"][aspect]
            suite._models[aspect] = MultinomialNaiveBayes.from_arrays(
                alpha=meta["alpha"],
                classes=model_meta["classes"],
                vocabulary_size=model_meta["vocabulary_size"],
                terms=terms,
                class_log_prior=arrays[aspect]["prior"],
                log_prob_table=arrays[aspect]["logprob"])
        for aspect, record in meta["accuracies"].items():
            suite._accuracies[aspect] = AspectAccuracy(**record)
        return suite

    # -- Prediction ------------------------------------------------------------------
    def classify_paragraph(self, paragraph: Paragraph, aspect: str) -> int:
        """Predict whether one paragraph is relevant to ``aspect`` (1/0)."""
        self._check_fitted()
        model = self._models[aspect]
        features = self._extractor.transform(paragraph.tokens)
        return int(model.predict(features))

    def paragraph_probability(self, paragraph: Paragraph, aspect: str) -> float:
        """Posterior probability that the paragraph is relevant to ``aspect``."""
        self._check_fitted()
        model = self._models[aspect]
        features = self._extractor.transform(paragraph.tokens)
        probabilities = model.predict_proba(features)
        return probabilities.get(RELEVANT, 0.0)

    def page_assessment(self, page: Page, aspect: str) -> Tuple[int, float]:
        """Page label and relevance probability from one batched kernel pass.

        Bit-identical to ``(classify_page(page, aspect),
        page_probability(page, aspect))`` but transforms and scores all
        paragraphs of the page at once instead of looping per paragraph.
        """
        self._check_fitted()
        if not page.paragraphs:
            return 0, 0.0
        model = self._models[aspect]
        matrix = self._extractor.transform_many([p.tokens for p in page.paragraphs])
        scores = model.joint_log_likelihood_matrix(matrix)
        classes = model.classes
        winners = np.argmax(scores, axis=1)
        label = int(any(int(classes[int(c)]) == RELEVANT for c in winners))
        if RELEVANT in classes:
            probabilities = model.posteriors_from_scores(scores)
            probability = float(probabilities[:, classes.index(RELEVANT)].max())
        else:
            probability = 0.0
        return label, probability

    def classify_page(self, page: Page, aspect: str) -> int:
        """Predict whether a page is relevant: any relevant paragraph suffices."""
        return int(any(self.classify_paragraph(p, aspect) == RELEVANT
                       for p in page.paragraphs))

    def page_probability(self, page: Page, aspect: str) -> float:
        """Maximum paragraph relevance probability of a page."""
        self._check_fitted()
        if not page.paragraphs:
            return 0.0
        return max(self.paragraph_probability(p, aspect) for p in page.paragraphs)

    # -- Reporting --------------------------------------------------------------------
    def accuracy_report(self) -> List[AspectAccuracy]:
        """Per-aspect accuracy records (the Fig. 9 table rows)."""
        self._check_fitted()
        return [self._accuracies[aspect] for aspect in self.aspects]

    def accuracy_of(self, aspect: str) -> float:
        """Held-out accuracy of one aspect classifier."""
        self._check_fitted()
        return self._accuracies[aspect].accuracy
