"""Built-in scenarios: the robustness conditions every sweep can rely on.

Each factory takes severity parameters with sensible defaults, so the same
condition can be dialled up or down (``make_scenario("zipf-skew",
exponent=1.5)``).  The ``hostile-mix`` scenario composes several
perturbations, which is the point of the pipeline design: perturbations are
closed under composition.
"""

from __future__ import annotations

from repro.scenarios.perturbations import (
    AspectSignalDropout,
    CrossDomainVocabulary,
    DistractorEntities,
    DomainMixtureParagraphs,
    NearDuplicateInjection,
    ZipfPageSkew,
)
from repro.scenarios.registry import ScenarioSpec, register_scenario


@register_scenario("zipf-skew")
def _zipf_skew(exponent: float = 1.0, min_pages: int = 1) -> ScenarioSpec:
    return ScenarioSpec(
        name="zipf-skew",
        description="Zipf-skewed page counts: head entities keep their "
                    "pages, tail entities are starved",
        perturbations=(ZipfPageSkew(exponent=exponent, min_pages=min_pages),),
        tags=("skew",),
    )


@register_scenario("near-duplicates")
def _near_duplicates(fraction: float = 0.4,
                     token_noise: float = 0.1) -> ScenarioSpec:
    return ScenarioSpec(
        name="near-duplicates",
        description="Mirror/syndication noise: near-identical copies of a "
                    "fraction of every entity's pages",
        perturbations=(NearDuplicateInjection(fraction=fraction,
                                              token_noise=token_noise),),
        tags=("noise", "redundancy"),
    )


@register_scenario("cross-domain-bleed")
def _cross_domain_bleed(rate: float = 0.6, min_words: int = 2,
                        max_words: int = 4) -> ScenarioSpec:
    # Severity chosen so the bleed actually flips selection decisions even
    # at smoke scale; milder rates leave every metric bit-identical to clean.
    return ScenarioSpec(
        name="cross-domain-bleed",
        description="Vocabulary of the other domain leaks into paragraphs, "
                    "blurring domain-generic signal",
        perturbations=(CrossDomainVocabulary(rate=rate, min_words=min_words,
                                             max_words=max_words),),
        tags=("noise", "cross-domain"),
    )


@register_scenario("distractor-entities")
def _distractor_entities(fraction: float = 0.3,
                         pages_per_distractor: int = 4,
                         mislabel_probability: float = 0.2) -> ScenarioSpec:
    return ScenarioSpec(
        name="distractor-entities",
        description="Namesake entities shadow real entity names with "
                    "aspect-free (and occasionally mislabelled) pages",
        perturbations=(DistractorEntities(
            fraction=fraction,
            pages_per_distractor=pages_per_distractor,
            mislabel_probability=mislabel_probability),),
        tags=("noise", "shadowing"),
    )


@register_scenario("aspect-dropout")
def _aspect_dropout(dropout: float = 0.5,
                    attribute_noise: float = 0.5) -> ScenarioSpec:
    return ScenarioSpec(
        name="aspect-dropout",
        description="Labelled paragraphs lose their signature words and "
                    "part of their attribute signal",
        perturbations=(AspectSignalDropout(dropout=dropout,
                                           attribute_noise=attribute_noise),),
        tags=("signal-loss",),
    )


@register_scenario("domain-mixture")
def _domain_mixture(page_fraction: float = 0.4) -> ScenarioSpec:
    return ScenarioSpec(
        name="domain-mixture",
        description="Whole boilerplate paragraphs of the other domain are "
                    "appended to pages (multi-domain portal pages)",
        perturbations=(DomainMixtureParagraphs(page_fraction=page_fraction),),
        tags=("noise", "cross-domain"),
    )


@register_scenario("hostile-mix")
def _hostile_mix() -> ScenarioSpec:
    return ScenarioSpec(
        name="hostile-mix",
        description="Everything at once, gently: mild skew, duplicates, "
                    "vocabulary bleed and signal dropout composed",
        perturbations=(
            ZipfPageSkew(exponent=0.5),
            NearDuplicateInjection(fraction=0.2),
            CrossDomainVocabulary(rate=0.2),
            AspectSignalDropout(dropout=0.25, attribute_noise=0.25),
        ),
        tags=("composite",),
    )
