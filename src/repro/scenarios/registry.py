"""The declarative :class:`ScenarioSpec` and the scenario registry.

A *scenario* names a reproducible hostile-corpus condition: an ordered
pipeline of perturbations plus optional :class:`CorpusConfig` overrides.
Scenarios are registered by name, mirroring the ranker registry of
:mod:`repro.search.rankers`::

    from repro.scenarios import register_scenario, make_scenario

    @register_scenario("my-noise")
    def _my_noise(rate: float = 0.5) -> ScenarioSpec:
        return ScenarioSpec(
            name="my-noise",
            description="my custom noise condition",
            perturbations=(CrossDomainVocabulary(rate=rate),),
        )

    corpus = make_scenario("my-noise", rate=0.8).corpus_for(
        "researcher", num_entities=24, pages_per_entity=16, seed=3)

Factories take keyword parameters and return a spec, so the same scenario
family can be instantiated at different severities.  Duplicate registration
raises unless ``overwrite=True`` is passed — silently replacing a scenario
would silently change every benchmark built on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from repro.corpus.corpus import Corpus
from repro.corpus.synthetic import BaseCorpus, CorpusConfig, CorpusGenerator
from repro.utils.registry import NamedRegistry


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fully-specified corpus condition.

    Attributes
    ----------
    name:
        Registry name, e.g. ``"zipf-skew"``.
    description:
        One-line human description (shown by ``repro scenarios list``).
    perturbations:
        Ordered perturbation pipeline applied after base generation.  Each
        element needs a ``name`` attribute and an
        ``apply(entities, pages, spec, rng)`` method (see
        :mod:`repro.scenarios.perturbations`).
    config_overrides:
        Extra :class:`CorpusConfig` fields the scenario pins (e.g. a higher
        ``hub_page_fraction``); explicit ``corpus_for`` overrides win.
    tags:
        Free-form labels ("noise", "skew", ...) for filtering.
    """

    name: str
    description: str
    perturbations: Tuple[object, ...] = ()
    config_overrides: Mapping[str, object] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()

    def build_config(self, domain: str, num_entities: int, pages_per_entity: int,
                     seed: int, **overrides) -> CorpusConfig:
        """Assemble the :class:`CorpusConfig` realising this scenario."""
        params: Dict[str, object] = dict(self.config_overrides)
        params.update(overrides)
        return CorpusConfig(domain=domain, num_entities=num_entities,
                            pages_per_entity=pages_per_entity, seed=seed,
                            perturbations=tuple(self.perturbations), **params)

    def corpus_for(self, domain: str, num_entities: int, pages_per_entity: int,
                   seed: int, **overrides) -> Corpus:
        """Generate this scenario's corpus for one domain (deterministic)."""
        config = self.build_config(domain, num_entities, pages_per_entity,
                                   seed, **overrides)
        return CorpusGenerator(config).generate()

    @property
    def shares_base(self) -> bool:
        """Whether this scenario can be realised from a shared base corpus.

        Scenarios that override :class:`CorpusConfig` fields change the
        *base* generation itself and must regenerate from scratch; pure
        perturbation pipelines apply to any base of the right shape.
        """
        return not self.config_overrides

    def corpus_from_base(self, base: BaseCorpus) -> Corpus:
        """Realise this scenario against a shared base corpus.

        Byte-identical to :meth:`corpus_for` with the base's sizes and seed
        (perturbation RNGs are label-derived, not state-derived), while
        skipping the expensive base generation.  Only valid for scenarios
        without config overrides — see :attr:`shares_base`.
        """
        if not self.shares_base:
            raise ValueError(
                f"scenario {self.name!r} overrides corpus config fields "
                f"{sorted(self.config_overrides)} and cannot share a base "
                f"corpus; use corpus_for() instead")
        return CorpusGenerator(base.config).realise(
            base, perturbations=tuple(self.perturbations))


ScenarioFactory = Callable[..., ScenarioSpec]

_REGISTRY = NamedRegistry("scenario")
#: The underlying name → factory map (exposed for tests' cleanup pops).
_SCENARIOS: Dict[str, ScenarioFactory] = _REGISTRY.factories


def register_scenario(name: str, factory: ScenarioFactory = None, *,
                      overwrite: bool = False):
    """Register a scenario factory under ``name``.

    Usable both as a decorator (``@register_scenario("zipf-skew")``) and as
    a plain call (``register_scenario("zipf-skew", factory)``).  Registering
    an already-taken name raises :class:`ValueError` unless
    ``overwrite=True``: a silently replaced scenario would silently change
    every robustness benchmark that references it.
    """
    return _REGISTRY.register(name, factory, overwrite=overwrite)


def make_scenario(name: str, **params) -> ScenarioSpec:
    """Instantiate the registered scenario ``name`` with ``params``."""
    return _REGISTRY.make(name, **params)


def scenario_names() -> List[str]:
    """Names of all registered scenarios, sorted."""
    return _REGISTRY.names()


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered scenario."""
    return name in _REGISTRY
