"""Scenario subsystem: declarative hostile-corpus conditions.

``ScenarioSpec`` describes a named pipeline of deterministic corpus
perturbations; the registry (``register_scenario`` / ``make_scenario``)
makes scenarios addressable by name from the CLI, the evaluation sweep and
tests.  Importing this package registers the built-in scenarios.
"""

from repro.scenarios.perturbations import (
    AspectSignalDropout,
    CrossDomainVocabulary,
    DistractorEntities,
    DomainMixtureParagraphs,
    NearDuplicateInjection,
    ZipfPageSkew,
)
from repro.scenarios.registry import (
    ScenarioSpec,
    is_registered,
    make_scenario,
    register_scenario,
    scenario_names,
)

# Importing the module registers the built-in scenarios as a side effect.
from repro.scenarios import builtin as _builtin  # noqa: F401  (registration)

__all__ = [
    "AspectSignalDropout",
    "CrossDomainVocabulary",
    "DistractorEntities",
    "DomainMixtureParagraphs",
    "NearDuplicateInjection",
    "ScenarioSpec",
    "ZipfPageSkew",
    "is_registered",
    "make_scenario",
    "register_scenario",
    "scenario_names",
]
