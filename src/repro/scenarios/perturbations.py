"""Deterministic corpus perturbations — the building blocks of scenarios.

The paper's evaluation corpora are well-behaved: every entity has the same
number of pages, aspect paragraphs carry their full signal, and the two
domains never bleed into each other.  Real harvesting corpora are hostile in
all of those ways.  Each class here is one *perturbation*: a deterministic
transformation of the generated ``(entities, pages)`` maps that injects one
kind of hostility.  Perturbations compose — :class:`CorpusGenerator` applies
them in order after base generation, each with its own spawned RNG, so any
pipeline is byte-identical for a fixed seed.

A perturbation is any object with a ``name`` attribute and an
``apply(entities, pages, spec, rng)`` method returning new ``(entities,
pages)`` maps; the dataclasses below are the built-in vocabulary:

* :class:`ZipfPageSkew` — Zipf-skewed page counts per entity (head entities
  keep their pages, tail entities are starved);
* :class:`NearDuplicateInjection` — near-identical copies of existing pages
  (mirror/syndication noise);
* :class:`CrossDomainVocabulary` — words of *another* domain's pools leak
  into paragraphs (vocabulary overlap across verticals);
* :class:`DistractorEntities` — extra entities that *shadow* real entity
  names but carry no aspect content (name-collision noise);
* :class:`AspectSignalDropout` — aspect paragraphs lose their signature
  words and part of their attribute signal while keeping their label;
* :class:`DomainMixtureParagraphs` — boilerplate paragraphs rendered from a
  second domain's templates are appended to pages (multi-domain mixtures).

All iteration is over sorted ids and all randomness flows through the
supplied :class:`~repro.utils.rng.SeededRandom`, which keeps every
perturbation deterministic and composable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.corpus.document import Entity, Page, Paragraph
from repro.corpus.domains import DomainSpec, available_domains, get_domain
from repro.corpus.knowledge_base import TypeSystem
from repro.utils.rng import SeededRandom

EntityMap = Dict[str, Entity]
PageMap = Dict[str, Page]


def _sorted_pages_by_entity(pages: PageMap) -> Dict[str, List[str]]:
    """Group page ids by entity, each group sorted (deterministic order)."""
    grouped: Dict[str, List[str]] = {}
    for page_id in sorted(pages):
        grouped.setdefault(pages[page_id].entity_id, []).append(page_id)
    return grouped


def _other_domain(spec: DomainSpec, requested: Optional[str]) -> DomainSpec:
    """Resolve the foreign domain used for cross-domain perturbations."""
    if requested is not None and requested != spec.name:
        return get_domain(requested)
    for name in available_domains():
        if name != spec.name:
            return get_domain(name)
    return spec  # Single-domain installs degrade to self-bleed.


def _foreign_word_pool(spec: DomainSpec) -> Tuple[str, ...]:
    """Signature + attribute words of a domain, as one sorted pool."""
    words: set = set()
    for aspect in spec.aspects:
        words.update(TypeSystem.canonical(w) for w in aspect.signature_words)
    for pool_name, values in sorted(spec.expanded_pools().items()):
        # Hand-written pool heads only: synthetic tail values are unique to
        # the generating domain and would never collide in practice.
        words.update(v for v in values if not v.startswith(f"{pool_name}_"))
    return tuple(sorted(words))


def _fill_template_from_pools(template: str, pools: Dict[str, Tuple[str, ...]],
                              rng: SeededRandom) -> List[str]:
    """Render one sentence template using domain-wide pools only.

    A reduced version of :meth:`CorpusGenerator._fill_template` for
    perturbations, which have no entity to draw attributes from: every slot
    is filled from the *domain-wide* pool of its type.
    """
    tokens: List[str] = []
    for raw in template.split():
        if raw.startswith("{") and raw.endswith("}"):
            type_name = raw[1:-1].lstrip("~")
            pool = pools.get(type_name, ())
            if pool:
                tokens.append(rng.choice(pool))
            elif type_name == "year":
                tokens.append(str(rng.randint(1995, 2015)))
            else:
                tokens.append(type_name)
        else:
            tokens.append(TypeSystem.canonical(raw))
    return tokens


@dataclass(frozen=True)
class ZipfPageSkew:
    """Skew per-entity page counts to a Zipf profile.

    Entity ranks are assigned by a seeded shuffle; the entity at rank ``r``
    (0-based) keeps ``max(min_pages, n / (r + 1) ** exponent)`` of its pages
    (lowest page ids first, so the kept set is stable).  The head of the
    distribution is untouched while the tail is starved of pages — the shape
    of real web coverage, where popular entities dominate the crawl.
    """

    exponent: float = 1.0
    min_pages: int = 1
    name: str = "zipf-page-skew"

    def __post_init__(self) -> None:
        if self.exponent < 0:
            raise ValueError("exponent must be non-negative")
        if self.min_pages < 1:
            raise ValueError("min_pages must be >= 1")

    def apply(self, entities: EntityMap, pages: PageMap, spec: DomainSpec,
              rng: SeededRandom) -> Tuple[EntityMap, PageMap]:
        ranked = rng.shuffled(sorted(entities))
        grouped = _sorted_pages_by_entity(pages)
        kept: PageMap = {}
        for rank, entity_id in enumerate(ranked):
            page_ids = grouped.get(entity_id, [])
            quota = max(self.min_pages,
                        round(len(page_ids) / (rank + 1) ** self.exponent))
            for page_id in page_ids[:quota]:
                kept[page_id] = pages[page_id]
        return dict(entities), kept


@dataclass(frozen=True)
class NearDuplicateInjection:
    """Inject near-identical copies of existing pages.

    Mirrors, syndicated articles and boilerplate re-posts mean a harvested
    working set contains many almost-duplicates.  For each entity a
    ``fraction`` of its pages are copied; each copy perturbs tokens with
    probability ``token_noise`` (replaced by a domain generic word) so the
    duplicate is near- rather than exact.  Copies keep the source's aspect
    labels: they *are* relevant pages, and gathering them wastes budget
    without adding recall.
    """

    fraction: float = 0.3
    token_noise: float = 0.1
    name: str = "near-duplicates"

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not 0.0 <= self.token_noise < 1.0:
            raise ValueError("token_noise must be in [0, 1)")

    def apply(self, entities: EntityMap, pages: PageMap, spec: DomainSpec,
              rng: SeededRandom) -> Tuple[EntityMap, PageMap]:
        fillers = spec.generic_words or ("info", "page", "site")
        out = dict(pages)
        for entity_id, page_ids in sorted(_sorted_pages_by_entity(pages).items()):
            entity_rng = rng.spawn(entity_id)
            count = round(self.fraction * len(page_ids))
            for copy_index, source_id in enumerate(
                    sorted(entity_rng.sample(page_ids, count))):
                source = pages[source_id]
                dup_id = f"{source_id}_dup{copy_index:02d}"
                dup_rng = entity_rng.spawn("dup", copy_index)
                paragraphs = tuple(
                    Paragraph(
                        paragraph_id=f"{dup_id}#{para_index}",
                        tokens=tuple(
                            TypeSystem.canonical(dup_rng.choice(fillers))
                            if dup_rng.random() < self.token_noise else token
                            for token in paragraph.tokens),
                        aspect=paragraph.aspect,
                    )
                    for para_index, paragraph in enumerate(source.paragraphs))
                out[dup_id] = Page(page_id=dup_id, entity_id=entity_id,
                                   paragraphs=paragraphs)
        return dict(entities), out


@dataclass(frozen=True)
class CrossDomainVocabulary:
    """Leak another domain's vocabulary into this corpus's paragraphs.

    Web pages about a researcher mention cars, prices and reviews; pages
    about a car model cite awards and publications.  With probability
    ``rate`` per paragraph, between ``min_words`` and ``max_words`` words
    drawn from the foreign domain's signature/pool vocabulary are appended,
    so generic foreign words stop being reliable negative signal.
    """

    other_domain: Optional[str] = None
    rate: float = 0.25
    min_words: int = 1
    max_words: int = 3
    name: str = "cross-domain-vocabulary"

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.min_words < 1 or self.min_words > self.max_words:
            raise ValueError("need 1 <= min_words <= max_words")

    def apply(self, entities: EntityMap, pages: PageMap, spec: DomainSpec,
              rng: SeededRandom) -> Tuple[EntityMap, PageMap]:
        foreign = _foreign_word_pool(_other_domain(spec, self.other_domain))
        if not foreign:
            return dict(entities), dict(pages)
        out: PageMap = {}
        for page_id in sorted(pages):
            page = pages[page_id]
            page_rng = rng.spawn(page_id)
            paragraphs = []
            for paragraph in page.paragraphs:
                if page_rng.random() < self.rate:
                    extra = tuple(
                        page_rng.choice(foreign)
                        for _ in range(page_rng.randint(self.min_words,
                                                        self.max_words)))
                    paragraph = Paragraph(
                        paragraph_id=paragraph.paragraph_id,
                        tokens=paragraph.tokens + extra,
                        aspect=paragraph.aspect)
                paragraphs.append(paragraph)
            out[page_id] = Page(page_id=page_id, entity_id=page.entity_id,
                                paragraphs=tuple(paragraphs))
        return dict(entities), out


@dataclass(frozen=True)
class DistractorEntities:
    """Add entities whose names shadow real entities.

    Name collisions are endemic on the Web: several people (or trim levels)
    share a name, and pages about the namesake pollute anything learned from
    name-matching.  Each distractor copies a victim's ``name_tokens`` but has
    its own id and pages.  Distractor pages mention the shared name, sprinkle
    signature words of random aspects and — with probability
    ``mislabel_probability`` per paragraph — carry an aspect *label* whose
    content is actually another aspect's vocabulary, poisoning classifier
    training and domain-phase learning.
    """

    fraction: float = 0.25
    pages_per_distractor: int = 4
    mislabel_probability: float = 0.2
    name: str = "distractor-entities"

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.pages_per_distractor < 1:
            raise ValueError("pages_per_distractor must be >= 1")
        if not 0.0 <= self.mislabel_probability <= 1.0:
            raise ValueError("mislabel_probability must be in [0, 1]")

    def apply(self, entities: EntityMap, pages: PageMap, spec: DomainSpec,
              rng: SeededRandom) -> Tuple[EntityMap, PageMap]:
        victims = sorted(entities)
        if not victims:
            return dict(entities), dict(pages)
        count = max(1, round(self.fraction * len(victims))) if self.fraction > 0 else 0
        aspect_names = [a.name for a in spec.aspects]
        signature_by_aspect = {
            a.name: tuple(TypeSystem.canonical(w) for w in a.signature_words)
            for a in spec.aspects}
        generic = spec.generic_words or ("official", "page", "news")
        out_entities = dict(entities)
        out_pages = dict(pages)
        for index in range(count):
            distractor_rng = rng.spawn("distractor", index)
            victim = entities[distractor_rng.choice(victims)]
            entity_id = f"{spec.name}_dx{index:04d}"
            out_entities[entity_id] = Entity(
                entity_id=entity_id,
                domain=spec.name,
                name_tokens=victim.name_tokens,
                seed_query=victim.name_tokens + (f"namesake{index:02d}",),
                attributes={},
            )
            for page_index in range(self.pages_per_distractor):
                page_id = f"{entity_id}_p{page_index:03d}"
                page_rng = distractor_rng.spawn("page", page_index)
                paragraphs = []
                for para_index in range(page_rng.randint(1, 3)):
                    content_aspect = page_rng.choice(aspect_names)
                    tokens: List[str] = list(victim.name_tokens)
                    signature = signature_by_aspect.get(content_aspect, ())
                    for _ in range(page_rng.randint(2, 4)):
                        tokens.append(page_rng.choice(signature) if signature
                                      else TypeSystem.canonical(page_rng.choice(generic)))
                    tokens.append(TypeSystem.canonical(page_rng.choice(generic)))
                    # A mislabelled paragraph claims to be about a *different*
                    # aspect than its vocabulary suggests.
                    label = None
                    if page_rng.random() < self.mislabel_probability:
                        label = page_rng.choice(
                            [a for a in aspect_names if a != content_aspect]
                            or aspect_names)
                    paragraphs.append(Paragraph(
                        paragraph_id=f"{page_id}#{para_index}",
                        tokens=tuple(tokens),
                        aspect=label))
                out_pages[page_id] = Page(page_id=page_id, entity_id=entity_id,
                                          paragraphs=tuple(paragraphs))
        return out_entities, out_pages


@dataclass(frozen=True)
class AspectSignalDropout:
    """Strip aspect signal from labelled paragraphs while keeping the label.

    With probability ``dropout`` a labelled paragraph loses *all* signature
    words of its aspect, and each of the entity's attribute-word occurrences
    is replaced by a generic word with probability ``attribute_noise``.  The
    ground truth is unchanged — the page is still relevant — but the words a
    selector could have exploited to find it are gone, modelling terse or
    paywalled pages whose aspect content is only implicit.
    """

    dropout: float = 0.5
    attribute_noise: float = 0.5
    name: str = "aspect-signal-dropout"

    def __post_init__(self) -> None:
        if not 0.0 <= self.dropout <= 1.0:
            raise ValueError("dropout must be in [0, 1]")
        if not 0.0 <= self.attribute_noise <= 1.0:
            raise ValueError("attribute_noise must be in [0, 1]")

    def apply(self, entities: EntityMap, pages: PageMap, spec: DomainSpec,
              rng: SeededRandom) -> Tuple[EntityMap, PageMap]:
        signature_by_aspect = {
            a.name: frozenset(TypeSystem.canonical(w) for w in a.signature_words)
            for a in spec.aspects}
        generic = spec.generic_words or ("overview", "general", "summary")
        out: PageMap = {}
        for page_id in sorted(pages):
            page = pages[page_id]
            page_rng = rng.spawn(page_id)
            entity = entities.get(page.entity_id)
            attribute_words = entity.all_attribute_words() if entity else frozenset()
            paragraphs = []
            for paragraph in page.paragraphs:
                if paragraph.aspect is not None and page_rng.random() < self.dropout:
                    signature = signature_by_aspect.get(paragraph.aspect, frozenset())
                    tokens: List[str] = []
                    for token in paragraph.tokens:
                        if token in signature:
                            continue
                        if token in attribute_words and \
                                page_rng.random() < self.attribute_noise:
                            tokens.append(TypeSystem.canonical(page_rng.choice(generic)))
                        else:
                            tokens.append(token)
                    if not tokens:
                        tokens = [TypeSystem.canonical(generic[0])]
                    paragraph = Paragraph(paragraph_id=paragraph.paragraph_id,
                                          tokens=tuple(tokens),
                                          aspect=paragraph.aspect)
                paragraphs.append(paragraph)
            out[page_id] = Page(page_id=page_id, entity_id=page.entity_id,
                                paragraphs=tuple(paragraphs))
        return dict(entities), out


@dataclass(frozen=True)
class DomainMixtureParagraphs:
    """Append boilerplate paragraphs rendered from another domain's templates.

    Whole background paragraphs of a second domain (filled from that domain's
    word pools) are appended to a ``page_fraction`` of pages, so pages are
    genuine multi-domain mixtures rather than merely sharing a few words —
    the difference between a car review mentioning an award and a portal page
    that is half car review, half researcher profile.
    """

    other_domain: Optional[str] = None
    page_fraction: float = 0.4
    min_paragraphs: int = 1
    max_paragraphs: int = 2
    name: str = "domain-mixture"

    def __post_init__(self) -> None:
        if not 0.0 <= self.page_fraction <= 1.0:
            raise ValueError("page_fraction must be in [0, 1]")
        if self.min_paragraphs < 1 or self.min_paragraphs > self.max_paragraphs:
            raise ValueError("need 1 <= min_paragraphs <= max_paragraphs")

    def apply(self, entities: EntityMap, pages: PageMap, spec: DomainSpec,
              rng: SeededRandom) -> Tuple[EntityMap, PageMap]:
        foreign = _other_domain(spec, self.other_domain)
        templates = foreign.background_templates
        if not templates:
            return dict(entities), dict(pages)
        pools = foreign.expanded_pools()
        out: PageMap = {}
        for page_id in sorted(pages):
            page = pages[page_id]
            page_rng = rng.spawn(page_id)
            if page_rng.random() >= self.page_fraction:
                out[page_id] = page
                continue
            extra = []
            base = len(page.paragraphs)
            for offset in range(page_rng.randint(self.min_paragraphs,
                                                 self.max_paragraphs)):
                tokens = _fill_template_from_pools(
                    page_rng.choice(templates), pools, page_rng)
                extra.append(Paragraph(
                    paragraph_id=f"{page_id}#mix{base + offset}",
                    tokens=tuple(tokens),
                    aspect=None))
            out[page_id] = Page(page_id=page_id, entity_id=page.entity_id,
                                paragraphs=page.paragraphs + tuple(extra))
        return dict(entities), out
