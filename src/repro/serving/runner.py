"""Async serving runner: many harvest sessions, one event loop.

The :class:`~repro.core.stepper.HarvestStepper` split the harvesting loop
at the fetch boundary; this module exploits it.  A :class:`ServingRunner`
drives N entity sessions concurrently on one asyncio event loop: each
session runs its CPU-bound selection on the loop thread, hands the fetch
action to a :class:`~repro.search.clients.SearchClient`, then *awaits* the
client's (simulated) latency — and while it sleeps, other sessions select
and ingest.  That is exactly the shape of a production harvesting fleet:
selection compute overlapping search-service I/O.

Determinism contract (the acceptance criterion of the serving PR): the
session *results* and the deterministic *metrics* block of the report are
identical across runs and across concurrency levels, because every
stochastic draw is keyed by ``(client seed, request key)`` rather than by
arrival order.  Only wall-clock figures (sessions/sec, elapsed time) and
the token-bucket throttle waits — inherently shared-timeline quantities —
vary, and they are reported in a separate ``wall_clock`` block that
byte-level comparisons exclude.

The runner is also packaged as the ``serving`` :class:`ExecutionBackend`
(registry name :data:`BACKEND_SERVING`), so ``harvest_many`` /
``--backend serving`` route whole job batches through it; with the default
instant client it is bit-identical to the serial backend.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from repro.core.harvester import (
    HarvestJob,
    HarvestResult,
    Harvester,
    drive_stepper,
)
from repro.core.stepper import Done
from repro.exec.backends import ExecutionBackend
from repro.search.clients import ClientSpec, SearchClient, make_client
from repro.search.engine import merge_run_accounting
from repro.utils.timing import Stopwatch

BACKEND_SERVING = "serving"

#: Default number of sessions in flight.
DEFAULT_CONCURRENCY = 8


def percentile(values: Sequence[float], q: float) -> float:
    """Linearly-interpolated percentile of ``values`` (``q`` in [0, 1]).

    Deterministic and dependency-free (no numpy in the serving path);
    matches numpy's default ``linear`` interpolation.  Empty input gives
    0.0 so report assembly never branches.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = (len(ordered) - 1) * q
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[int(rank)]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass
class SessionRecord:
    """One driven session: its harvest result plus serving-side accounting.

    ``latency_seconds`` is the session's *simulated* end-to-end fetch
    latency — the sum of its requests' client latencies (retries and
    backoff included), a deterministic quantity.  Throttle waits are
    tracked separately (order-dependent, see module docstring).
    """

    entity_id: str
    aspect: str
    selector_name: str
    result: HarvestResult
    requests: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    exhausted_requests: int = 0
    latency_seconds: float = 0.0
    throttle_seconds: float = 0.0


@dataclass
class ServingReport:
    """What a serving run produced: results in job order plus metrics.

    :meth:`metrics` is the deterministic block — identical across runs,
    concurrency levels and scheduling interleavings under a fixed client
    seed; :meth:`wall_clock` holds everything that legitimately varies.
    Benchmark artifacts keep the two blocks apart so the determinism
    acceptance check can byte-compare one and ignore the other.
    """

    sessions: List[SessionRecord] = field(default_factory=list)
    concurrency: int = 1
    time_scale: float = 1.0
    wall_seconds: float = 0.0
    client_name: str = "instant"
    client_stats: dict = field(default_factory=dict)

    @property
    def results(self) -> List[HarvestResult]:
        """The harvest results, in job order."""
        return [record.result for record in self.sessions]

    def merged_accounting(self):
        """Batch-level fetch statistics (identical on every backend)."""
        return merge_run_accounting(
            [record.result.fetch_accounting for record in self.sessions])

    def metrics(self) -> dict:
        """The deterministic serving metrics block."""
        latencies = [record.latency_seconds for record in self.sessions]
        fetch_stats = self.merged_accounting()
        return {
            "sessions": len(self.sessions),
            "requests": sum(r.requests for r in self.sessions),
            "attempts": sum(r.attempts for r in self.sessions),
            "retries": sum(r.retries for r in self.sessions),
            "timeouts": sum(r.timeouts for r in self.sessions),
            "failures": sum(r.failures for r in self.sessions),
            "exhausted_requests": sum(r.exhausted_requests
                                      for r in self.sessions),
            "queries_fired": fetch_stats.queries_fired,
            "pages_fetched": fetch_stats.pages_fetched,
            "session_latency_p50": round(percentile(latencies, 0.50), 9),
            "session_latency_p99": round(percentile(latencies, 0.99), 9),
            "session_latency_mean": round(
                sum(latencies) / len(latencies), 9) if latencies else 0.0,
            "session_latency_total": round(sum(latencies), 9),
        }

    def wall_clock(self) -> dict:
        """The measured block: varies run to run, excluded from identity."""
        sessions_per_second = (len(self.sessions) / self.wall_seconds
                               if self.wall_seconds > 0 else 0.0)
        return {
            "wall_seconds": self.wall_seconds,
            "sessions_per_second": sessions_per_second,
            "throttle_seconds": sum(r.throttle_seconds
                                    for r in self.sessions),
        }

    def as_dict(self) -> dict:
        """Plain-JSON rendering for benchmark artifacts."""
        return {
            "concurrency": self.concurrency,
            "time_scale": self.time_scale,
            "client": self.client_name,
            "metrics": self.metrics(),
            "client_stats": dict(self.client_stats),
            "wall_clock": self.wall_clock(),
        }


class ServingRunner:
    """Drive many harvest sessions concurrently on one event loop.

    Parameters
    ----------
    harvester:
        The configured :class:`~repro.core.harvester.Harvester` (corpus,
        engine, config) whose steppers are driven.
    client:
        Client selector — ``None``/kind name/:class:`ClientSpec`/ready
        :class:`SearchClient`; one client instance is shared by all
        sessions (its token bucket models the shared service quota).
    concurrency:
        Maximum sessions in flight (an :class:`asyncio.Semaphore`).
    time_scale:
        Multiplier from simulated latency to real event-loop sleep.  1.0
        serves in "real time"; smaller values compress the simulation for
        fast benchmarks while leaving every deterministic metric — which
        is computed from *simulated* latencies — unchanged.
    """

    def __init__(self, harvester: Harvester,
                 client: Union[None, str, ClientSpec, SearchClient] = None,
                 concurrency: int = DEFAULT_CONCURRENCY,
                 time_scale: float = 1.0) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        self.harvester = harvester
        self.client = make_client(client, harvester.engine)
        self.concurrency = concurrency
        self.time_scale = time_scale

    def run(self, jobs: Sequence[HarvestJob]) -> ServingReport:
        """Serve a batch of jobs; results come back in job order."""
        jobs = list(jobs)
        with Stopwatch() as watch:
            sessions = asyncio.run(self._serve(jobs)) if jobs else []
        return ServingReport(
            sessions=sessions,
            concurrency=self.concurrency,
            time_scale=self.time_scale,
            wall_seconds=watch.elapsed,
            client_name=self.client.name,
            client_stats=self.client.stats.as_dict(),
        )

    async def _serve(self, jobs: Sequence[HarvestJob]) -> List[SessionRecord]:
        semaphore = asyncio.Semaphore(self.concurrency)
        return list(await asyncio.gather(
            *(self._drive(job, semaphore) for job in jobs)))

    async def _drive(self, job: HarvestJob,
                     semaphore: asyncio.Semaphore) -> SessionRecord:
        async with semaphore:
            stepper = self.harvester.stepper_for_job(job)
            record = SessionRecord(
                entity_id=job.entity_id, aspect=job.aspect,
                selector_name=job.selector.name, result=stepper.result)
            action = stepper.next_action()
            while not isinstance(action, Done):
                # Selection (CPU) ran inside next_action on the loop
                # thread; the fetch's engine call is CPU too.  The await
                # below is where the simulated service I/O happens — and
                # where every other session gets the loop.
                outcome = self.client.fetch(action,
                                            accounting=stepper.accounting)
                record.requests += 1
                record.attempts += outcome.attempts
                record.retries += outcome.retries
                record.timeouts += outcome.timeouts
                record.failures += outcome.failures
                record.exhausted_requests += 1 if outcome.exhausted else 0
                record.latency_seconds += outcome.latency_seconds
                record.throttle_seconds += outcome.throttle_seconds
                pause = (outcome.latency_seconds
                         + outcome.throttle_seconds) * self.time_scale
                # Always yield, so instant-client sessions interleave too.
                await asyncio.sleep(pause if pause > 0 else 0)
                stepper.feed(outcome.results, outcome.pages,
                             client_seconds=outcome.latency_seconds)
                action = stepper.next_action()
            return record


class ServingBackend(ExecutionBackend):
    """The serving runner packaged as an :class:`ExecutionBackend`.

    ``map`` recognises the canonical harvest fan-out — a bound
    ``Harvester.harvest_job`` mapped over :class:`HarvestJob` payloads —
    and routes it through a :class:`ServingRunner` (concurrent sessions,
    pluggable client).  Anything else falls back to an in-order loop, with
    steppers still driven through the configured client when the callable
    is harvest-shaped, so the backend honours the generic contract.

    ``workers`` is the serving concurrency.  Not ``distributed``: sessions
    share the caller's engine and caches, exactly like the thread backend.
    """

    name = BACKEND_SERVING

    def __init__(self, workers: int = DEFAULT_CONCURRENCY,
                 client: Union[None, str, ClientSpec, SearchClient] = None,
                 time_scale: float = 1.0) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.client = client
        self.time_scale = time_scale
        #: The last run's report (metrics outlive the ``map`` contract).
        self.last_report: Optional[ServingReport] = None

    @staticmethod
    def _harvester_of(fn: Callable) -> Optional[Harvester]:
        owner = getattr(fn, "__self__", None)
        if isinstance(owner, Harvester) and \
                getattr(fn, "__name__", "") == "harvest_job":
            return owner
        return None

    def map(self, fn: Callable, items: Sequence) -> List:
        items = list(items)
        harvester = self._harvester_of(fn)
        if harvester is not None and items and \
                all(isinstance(item, HarvestJob) for item in items):
            runner = ServingRunner(harvester, client=self.client,
                                   concurrency=self.workers,
                                   time_scale=self.time_scale)
            report = runner.run(items)
            self.last_report = report
            return report.results
        return [fn(item) for item in items]


def serve_jobs(harvester: Harvester, jobs: Sequence[HarvestJob],
               client: Union[None, str, ClientSpec, SearchClient] = None,
               concurrency: int = DEFAULT_CONCURRENCY,
               time_scale: float = 1.0) -> ServingReport:
    """Convenience one-shot: build a runner, serve the jobs, return report."""
    runner = ServingRunner(harvester, client=client, concurrency=concurrency,
                           time_scale=time_scale)
    return runner.run(jobs)


def harvest_serially(harvester: Harvester, jobs: Sequence[HarvestJob],
                     client: Union[None, str, ClientSpec, SearchClient] = None
                     ) -> List[HarvestResult]:
    """Reference semantics for the serving path: same client, no loop.

    Drives each job's stepper synchronously through the same (shared)
    client instance — the baseline the determinism tests compare the
    concurrent runner against.
    """
    live_client = make_client(client, harvester.engine)
    return [drive_stepper(harvester.stepper_for_job(job), live_client)
            for job in jobs]
