"""Async, latency-aware serving layer over the step-driven harvest loop."""

from repro.serving.bench import (
    ARTIFACT_NAME,
    DEFAULT_CONCURRENCY_LEVELS,
    format_serving_report,
    run_serving_bench,
)
from repro.serving.runner import (
    BACKEND_SERVING,
    DEFAULT_CONCURRENCY,
    ServingBackend,
    ServingReport,
    ServingRunner,
    SessionRecord,
    harvest_serially,
    percentile,
    serve_jobs,
)

__all__ = [
    "ARTIFACT_NAME",
    "BACKEND_SERVING",
    "DEFAULT_CONCURRENCY",
    "DEFAULT_CONCURRENCY_LEVELS",
    "format_serving_report",
    "run_serving_bench",
    "ServingBackend",
    "ServingReport",
    "ServingRunner",
    "SessionRecord",
    "harvest_serially",
    "percentile",
    "serve_jobs",
]
