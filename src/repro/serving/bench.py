"""The serving benchmark: sessions/sec and latency tails under load.

Shared by the ``serve bench`` CLI subcommand, the committed
``benchmarks/results/BENCH_serving.json`` artifact and the perf-gated
benchmark test: one function builds a small experiment, serves the same
job batch at each requested concurrency level through a
:class:`~repro.search.clients.SimulatedServiceClient`, and assembles the
artifact dict.

The artifact keeps two kinds of numbers strictly apart, per the serving
determinism contract (see :mod:`repro.serving.runner`):

* ``metrics`` / ``client_stats`` — deterministic under the client seed:
  identical across runs, machines and concurrency levels.  The
  acceptance check byte-compares these blocks.
* ``wall_clock`` — measured throughput (``sessions_per_second``), which
  the perf manifest folds in as the serving throughput axis and the perf
  gate guards against collapse.  The concurrency-N level is expected to
  sustain several times the concurrency-1 rate, because sessions sleep
  through their simulated service latency while others select.
"""

from __future__ import annotations

import platform
from typing import Optional, Sequence, Tuple

from repro.eval.experiments import get_scale
from repro.eval.runner import ExperimentRunner
from repro.search.clients import CLIENT_SIMULATED, ClientSpec
from repro.serving.runner import ServingReport, ServingRunner

SCHEMA = "BENCH_serving/v1"

#: Artifact filename (under ``benchmarks/results/``).
ARTIFACT_NAME = "BENCH_serving.json"

#: Concurrency levels the committed artifact reports.
DEFAULT_CONCURRENCY_LEVELS = (1, 8)

DEFAULT_METHODS = ("RND", "MQ")

#: Default client for benchmarks: the stock simulated service, seeded.
DEFAULT_SPEC = ClientSpec(kind=CLIENT_SIMULATED)


def run_serving_bench(scale: str = "smoke", domain: str = "researcher",
                      methods: Sequence[str] = DEFAULT_METHODS,
                      num_queries: int = 3,
                      concurrency_levels: Sequence[int] = DEFAULT_CONCURRENCY_LEVELS,
                      spec: Optional[ClientSpec] = None,
                      time_scale: float = 1.0,
                      max_entities: int = 4,
                      base_seed: int = 5) -> Tuple[dict, dict]:
    """Serve one job batch at each concurrency level; build the artifact.

    Returns ``(artifact, reports)`` where ``reports`` maps concurrency
    level to its :class:`~repro.serving.runner.ServingReport` (callers
    asserting on raw reports — the CI smoke, the benchmark test — get
    them without re-running anything).

    Every level serves a freshly-built but identical job batch (selector
    instances are single-use) through a *fresh* client, so levels are
    independent measurements of the same workload; under a fixed
    ``spec.seed`` their deterministic metrics blocks are identical.
    """
    experiment_scale = get_scale(scale)
    corpus = experiment_scale.corpus_for(domain)
    runner = ExperimentRunner(corpus, base_seed=base_seed)
    prepared = runner.prepare(runner.default_split(0))
    harvester = runner.harvester_for(prepared)
    aspects = experiment_scale.aspects_for(corpus)
    entities = list(prepared.split.test_entities)[:max_entities]
    client_spec = spec if spec is not None else DEFAULT_SPEC

    def jobs():
        return [runner.build_job(prepared, method, entity_id, aspect,
                                 num_queries)
                for method in methods
                for aspect in aspects
                for entity_id in entities]

    reports: dict = {}
    levels: dict = {}
    for concurrency in concurrency_levels:
        serving = ServingRunner(harvester, client=client_spec,
                                concurrency=concurrency,
                                time_scale=time_scale)
        report = serving.run(jobs())
        reports[concurrency] = report
        levels[str(concurrency)] = report.as_dict()

    baseline = min(concurrency_levels)
    base_rate = reports[baseline].wall_clock()["sessions_per_second"]
    speedups = {
        str(concurrency): (report.wall_clock()["sessions_per_second"]
                           / base_rate if base_rate > 0 else 0.0)
        for concurrency, report in reports.items()
    }

    artifact = {
        "schema": SCHEMA,
        "scale": experiment_scale.name,
        "python": platform.python_version(),
        "domain": domain,
        "methods": list(methods),
        "num_queries": num_queries,
        "sessions": len(jobs()),
        "client": client_spec.as_dict(),
        "time_scale": time_scale,
        "concurrency": levels,
        "speedup_vs_baseline": speedups,
    }
    return artifact, reports


def format_serving_report(artifact: dict) -> str:
    """Human-readable table of one serving-bench artifact."""
    lines = [
        f"serving bench  scale={artifact['scale']} domain={artifact['domain']} "
        f"sessions={artifact['sessions']} queries={artifact['num_queries']}",
        f"client: {artifact['client']['kind']} "
        f"p50={artifact['client']['latency_p50']}s "
        f"p99={artifact['client']['latency_p99']}s "
        f"timeout={artifact['client']['timeout_rate']} "
        f"failure={artifact['client']['failure_rate']} "
        f"retries<={artifact['client']['max_retries']}",
        f"{'conc':>5s} {'sess/s':>9s} {'speedup':>8s} {'p50 lat':>9s} "
        f"{'p99 lat':>9s} {'retries':>8s} {'timeouts':>9s} {'exhausted':>10s}",
    ]
    for level in sorted(artifact["concurrency"], key=int):
        entry = artifact["concurrency"][level]
        metrics = entry["metrics"]
        wall = entry["wall_clock"]
        speedup = artifact["speedup_vs_baseline"].get(level, 0.0)
        lines.append(
            f"{level:>5s} {wall['sessions_per_second']:>9.2f} "
            f"{speedup:>7.2f}x {metrics['session_latency_p50']:>8.3f}s "
            f"{metrics['session_latency_p99']:>8.3f}s "
            f"{metrics['retries']:>8d} {metrics['timeouts']:>9d} "
            f"{metrics['exhausted_requests']:>10d}")
    return "\n".join(lines)
