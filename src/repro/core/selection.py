"""Query-selection strategies.

This module implements the strategy ladder the paper evaluates in Sect. VI-B
(Fig. 10) and the full approaches of Sect. VI-C:

===========  =================================================================
``RND``      Random candidate query (reference point).
``P`` / ``R``        Utility inference only (Sect. III) — no domain, no context.
``P+q`` / ``R+q``    Directly reuse the best domain *queries* (shows entity variation).
``P+t`` / ``R+t``    Domain-aware through *templates* (Sect. IV) — no context.
``L2QP`` / ``L2QR``  Full approach: domain + context aware (Sect. V).
``L2QBAL``   Geometric mean of collective precision and recall (Sect. VI-C).
===========  =================================================================

Every strategy implements :class:`QuerySelector`; instances are stateful per
harvesting run, so callers should create a fresh selector per harvest (the
factory :func:`make_selector` does exactly that).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import L2QConfig
from repro.core.context import ContextTracker
from repro.core.entity_phase import EntityPhase, EntityUtilities
from repro.core.queries import Query
from repro.core.session import HarvestSession
from repro.utils.vectorize import exact_pow_half, first_lexicographic_argmax

OBJECTIVE_PRECISION = "precision"
OBJECTIVE_RECALL = "recall"
OBJECTIVE_BALANCED = "balanced"


class QuerySelector(ABC):
    """Interface of a query-selection strategy."""

    #: Human-readable strategy name (used in reports).
    name: str = "selector"

    def prepare(self, session: HarvestSession) -> None:
        """Called once before the first selection of a harvesting run."""

    @abstractmethod
    def select(self, session: HarvestSession) -> Optional[Query]:
        """Return the next query to fire, or ``None`` to stop early."""

    def observe(self, session: HarvestSession, query: Query,
                new_pages: Sequence) -> None:
        """Called after the selected query has been fired."""


def first_unfired(ranked: Sequence[Query], session: HarvestSession) -> Optional[Query]:
    """First query in ``ranked`` that has not been fired yet."""
    for query in ranked:
        if not session.is_fired(query):
            return query
    return None


# ---------------------------------------------------------------------------
# RND
# ---------------------------------------------------------------------------

class RandomSelection(QuerySelector):
    """Uniformly random choice among the current candidate queries."""

    name = "RND"

    def select(self, session: HarvestSession) -> Optional[Query]:
        candidates = session.candidates.unfired_sorted_queries(session.fired_queries)
        if not candidates:
            return None
        return session.rng.choice(candidates)


# ---------------------------------------------------------------------------
# P / R — utility inference without domain or context
# ---------------------------------------------------------------------------

class EntityPhaseSelection(QuerySelector):
    """Base for selectors that run the entity phase on every selection.

    One :class:`EntityPhase` instance is shared across a run's selections so
    its per-``(domain model, entity)`` caches survive from one harvesting
    iteration to the next; the phase is rebuilt whenever the session's type
    system or config differs from the one it was built for.
    """

    _phase: Optional[EntityPhase] = None

    def _entity_phase(self, session: HarvestSession) -> EntityPhase:
        phase = self._phase
        if (phase is None
                or phase.type_system is not session.corpus.type_system
                or phase.config is not session.config):
            phase = EntityPhase(session.corpus.type_system, session.config)
            self._phase = phase
        return phase


class UtilityOnlySelection(EntityPhaseSelection):
    """Optimise inferred precision or recall; no domain, no context (Sect. III)."""

    def __init__(self, objective: str) -> None:
        if objective not in (OBJECTIVE_PRECISION, OBJECTIVE_RECALL):
            raise ValueError("objective must be 'precision' or 'recall'")
        self.objective = objective
        self.name = "P" if objective == OBJECTIVE_PRECISION else "R"

    def select(self, session: HarvestSession) -> Optional[Query]:
        phase = self._entity_phase(session)
        utilities = phase.compute(
            entity=session.entity,
            current_pages=session.current_pages,
            relevance=session.relevance,
            domain_model=None,
            use_templates=False,
            exclude=set(session.fired_queries),
            statistics=session.candidates.statistics,
            observed_words=session.candidates.observed_words,
        )
        ranked = (utilities.ranked_by_precision()
                  if self.objective == OBJECTIVE_PRECISION
                  else utilities.ranked_by_recall())
        return first_unfired(ranked, session)


# ---------------------------------------------------------------------------
# P+q / R+q — direct transfer of domain queries (entity-variation ablation)
# ---------------------------------------------------------------------------

class DomainQuerySelection(QuerySelector):
    """Fire the domain queries with the highest domain-phase utility, verbatim."""

    def __init__(self, objective: str) -> None:
        if objective not in (OBJECTIVE_PRECISION, OBJECTIVE_RECALL):
            raise ValueError("objective must be 'precision' or 'recall'")
        self.objective = objective
        self.name = "P+q" if objective == OBJECTIVE_PRECISION else "R+q"

    def select(self, session: HarvestSession) -> Optional[Query]:
        model = session.domain_model
        if model is None or model.is_empty():
            return None
        ranked = (model.best_queries_by_precision()
                  if self.objective == OBJECTIVE_PRECISION
                  else model.best_queries_by_recall())
        excluded_words = session.entity.excluded_words()
        usable = [q for q in ranked if not any(w in excluded_words for w in q)]
        return first_unfired(usable, session)


# ---------------------------------------------------------------------------
# P+t / R+t — domain-aware via templates, without context awareness
# ---------------------------------------------------------------------------

class TemplateSelection(EntityPhaseSelection):
    """Optimise inferred precision or recall with template-based domain awareness."""

    def __init__(self, objective: str) -> None:
        if objective not in (OBJECTIVE_PRECISION, OBJECTIVE_RECALL):
            raise ValueError("objective must be 'precision' or 'recall'")
        self.objective = objective
        self.name = "P+t" if objective == OBJECTIVE_PRECISION else "R+t"

    def select(self, session: HarvestSession) -> Optional[Query]:
        phase = self._entity_phase(session)
        utilities = phase.compute(
            entity=session.entity,
            current_pages=session.current_pages,
            relevance=session.relevance,
            domain_model=session.domain_model,
            use_templates=True,
            exclude=set(session.fired_queries),
            statistics=session.candidates.statistics,
            observed_words=session.candidates.observed_words,
        )
        ranked = (utilities.ranked_by_precision()
                  if self.objective == OBJECTIVE_PRECISION
                  else utilities.ranked_by_recall())
        return first_unfired(ranked, session)


# ---------------------------------------------------------------------------
# L2QP / L2QR / L2QBAL — full approach (domain + context aware)
# ---------------------------------------------------------------------------

class ContextAwareSelection(EntityPhaseSelection):
    """The full L2Q approach: collective utilities over the query context."""

    def __init__(self, objective: str, config: Optional[L2QConfig] = None) -> None:
        if objective not in (OBJECTIVE_PRECISION, OBJECTIVE_RECALL, OBJECTIVE_BALANCED):
            raise ValueError(
                "objective must be 'precision', 'recall' or 'balanced'")
        self.objective = objective
        self.name = {"precision": "L2QP", "recall": "L2QR", "balanced": "L2QBAL"}[objective]
        self._config = config
        self._tracker: Optional[ContextTracker] = None

    def prepare(self, session: HarvestSession) -> None:
        config = self._config or session.config
        self._tracker = ContextTracker(seed_recall_r0=config.seed_recall_r0)

    def select(self, session: HarvestSession) -> Optional[Query]:
        if self._tracker is None:
            self.prepare(session)
        assert self._tracker is not None
        phase = self._entity_phase(session)
        utilities = phase.compute(
            entity=session.entity,
            current_pages=session.current_pages,
            relevance=session.relevance,
            domain_model=session.domain_model,
            use_templates=True,
            exclude=set(session.fired_queries),
            statistics=session.candidates.statistics,
            observed_words=session.candidates.observed_words,
        )
        penalty = (self._config or session.config).dedup_penalty
        candidates = [query for query in sorted(utilities.candidates)
                      if not session.is_fired(query)]
        best_query = self._choose(session, utilities, candidates, penalty)
        if best_query is not None:
            self._tracker.update(best_query, utilities)
        return best_query

    def _choose(self, session: HarvestSession, utilities: EntityUtilities,
                candidates: List[Query], penalty: float) -> Optional[Query]:
        """Vectorized candidate scoring: the whole set in a few array ops.

        Ranks every unfired candidate by ``(collective utility, individual
        utility)`` and returns the first lexicographic maximum — the same
        winner the scalar reference :meth:`_choose_scalar` produces (array
        expressions mirror the scalar ones operation for operation).
        """
        if not candidates:
            return None
        assert self._tracker is not None
        collective = self._tracker.evaluate_many(candidates, utilities)
        if penalty > 0.0:
            # Dedup awareness: discount collective utility by the expected
            # page-level redundancy of each query's postings.
            novelty = np.asarray(session.expected_novelties(candidates),
                                 dtype=np.float64)
            collective = collective.discounted(novelty, penalty)
        primary, secondary = self._score_arrays(collective, utilities, candidates)
        return candidates[first_lexicographic_argmax(primary, secondary)]

    def _score_arrays(self, collective, utilities: EntityUtilities,
                      candidates: List[Query]) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`_score`: per-candidate (primary, secondary) arrays."""
        arrays = utilities.gather(candidates)
        if self.objective == OBJECTIVE_PRECISION:
            return collective.collective_precision, arrays.precision
        if self.objective == OBJECTIVE_RECALL:
            return collective.collective_recall, arrays.recall
        individual = exact_pow_half(np.maximum(arrays.precision, 0.0)
                                    * np.maximum(arrays.recall, 0.0))
        return collective.balanced, individual

    def _choose_scalar(self, session: HarvestSession, utilities: EntityUtilities,
                       candidates: List[Query],
                       penalty: float) -> Optional[Query]:
        """Scalar reference implementation of :meth:`_choose`.

        Kept (and exercised by the equivalence tests) as the executable
        specification the vectorized path must reproduce choice for choice.
        """
        assert self._tracker is not None
        best_query: Optional[Query] = None
        best_score: Optional[tuple] = None
        for query in candidates:
            collective = self._tracker.evaluate(query, utilities)
            if penalty > 0.0:
                collective = collective.discounted(
                    session.expected_novelty(query), penalty)
            score = self._score(collective, utilities, query)
            if best_score is None or score > best_score:
                best_score = score
                best_query = query
        return best_query

    def _score(self, collective, utilities: EntityUtilities, query: Query) -> tuple:
        """Primary score is the collective utility; ties break on the
        individual inferred utility so that near-identical collective values
        (common in the first iteration) still prefer genuinely useful queries."""
        if self.objective == OBJECTIVE_PRECISION:
            return (collective.collective_precision, utilities.precision_of(query))
        if self.objective == OBJECTIVE_RECALL:
            return (collective.collective_recall, utilities.recall_of(query))
        individual = (max(utilities.precision_of(query), 0.0)
                      * max(utilities.recall_of(query), 0.0)) ** 0.5
        return (collective.balanced, individual)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_FACTORY: Dict[str, Callable[[L2QConfig], QuerySelector]] = {
    "RND": lambda config: RandomSelection(),
    "P": lambda config: UtilityOnlySelection(OBJECTIVE_PRECISION),
    "R": lambda config: UtilityOnlySelection(OBJECTIVE_RECALL),
    "P+q": lambda config: DomainQuerySelection(OBJECTIVE_PRECISION),
    "R+q": lambda config: DomainQuerySelection(OBJECTIVE_RECALL),
    "P+t": lambda config: TemplateSelection(OBJECTIVE_PRECISION),
    "R+t": lambda config: TemplateSelection(OBJECTIVE_RECALL),
    "L2QP": lambda config: ContextAwareSelection(OBJECTIVE_PRECISION, config),
    "L2QR": lambda config: ContextAwareSelection(OBJECTIVE_RECALL, config),
    "L2QBAL": lambda config: ContextAwareSelection(OBJECTIVE_BALANCED, config),
}


def selector_names() -> List[str]:
    """Names of all built-in L2Q strategies."""
    return sorted(_FACTORY)


def make_selector(name: str, config: Optional[L2QConfig] = None) -> QuerySelector:
    """Create a fresh selector instance by strategy name."""
    try:
        factory = _FACTORY[name]
    except KeyError as exc:
        raise KeyError(f"unknown selector {name!r}; available: {selector_names()}") from exc
    return factory(config if config is not None else L2QConfig())
