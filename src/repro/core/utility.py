"""Graph assembly and utility regularization for L2Q inference.

This module turns a working set of pages plus a candidate query pool into a
:class:`~repro.graph.reinforcement.ReinforcementGraph` (optionally extended
with templates) and provides the utility-regularization vectors of Sect. III
(Eqs. 11-12): every relevant page is guided towards precision 1, and the
relevant pages share a total recall mass of 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.aspects.relevance import RelevanceFunction
from repro.core.config import L2QConfig
from repro.core.queries import Query, query_contained_in_page
from repro.core.templates import Template, TemplateIndex
from repro.corpus.document import Page
from repro.corpus.knowledge_base import TypeSystem
from repro.graph.reinforcement import ReinforcementGraph, ReinforcementGraphBuilder
from repro.graph.random_walk import UtilitySolver


@dataclass
class AssembledGraph:
    """A built reinforcement graph together with its bookkeeping."""

    graph: ReinforcementGraph
    pages: List[Page]
    queries: List[Query]
    templates: List[Template]
    template_index: Optional[TemplateIndex]

    def solver(self, config: L2QConfig) -> UtilitySolver:
        """Create a solver with the configured alpha / iteration limits."""
        return UtilitySolver(self.graph, alpha=config.alpha,
                             max_iterations=config.max_solver_iterations,
                             tolerance=config.solver_tolerance)


class GraphAssembler:
    """Builds reinforcement graphs from pages, candidate queries and templates."""

    def __init__(self, type_system: TypeSystem, config: Optional[L2QConfig] = None) -> None:
        self.type_system = type_system
        self.config = config if config is not None else L2QConfig()

    def assemble(self, pages: Sequence[Page], queries: Sequence[Query],
                 use_templates: bool = True,
                 edge_weights: Optional[Mapping[Tuple[str, Query], float]] = None) -> AssembledGraph:
        """Build the graph.

        Parameters
        ----------
        pages:
            The page vertices (e.g. current result pages ``P_E`` or domain
            pages ``P_D``).
        queries:
            The candidate query vertices.  Edges connect a query to every
            page that contains all of its words ("page p can be retrieved by
            query q"); queries with no containing page still become vertices
            (they may be connected through templates).
        use_templates:
            Whether to add the template layer (Sect. IV).
        edge_weights:
            Optional override of page-query edge weights keyed by
            ``(page_id, query)``; defaults to binary containment weights.
        """
        builder = ReinforcementGraphBuilder()
        for page in pages:
            builder.add_page(page.page_id)
        for query in queries:
            builder.add_query(query)

        for page in pages:
            for query in queries:
                if not query_contained_in_page(query, page):
                    continue
                weight = 1.0
                if edge_weights is not None:
                    weight = float(edge_weights.get((page.page_id, query), 1.0))
                builder.connect_page_query(page.page_id, query, weight)

        template_index: Optional[TemplateIndex] = None
        if use_templates:
            template_index = TemplateIndex(self.type_system)
            for query in queries:
                for template in template_index.add_query(query):
                    builder.connect_query_template(query, template, 1.0)

        graph = builder.build()
        return AssembledGraph(
            graph=graph,
            pages=list(pages),
            queries=list(queries),
            templates=graph.templates.keys(),
            template_index=template_index,
        )


# ---------------------------------------------------------------------------
# Utility regularization (Eqs. 11-12)
# ---------------------------------------------------------------------------

def precision_page_regularization(pages: Sequence[Page],
                                  relevance: RelevanceFunction) -> Dict[str, float]:
    """``P_hat(p) = Y(p)``: every relevant page is guided towards precision 1."""
    return {page.page_id: float(relevance(page)) for page in pages}


def recall_page_regularization(pages: Sequence[Page],
                               relevance: RelevanceFunction) -> Dict[str, float]:
    """``R_hat(p) = Y(p) / sum_p' Y(p')``: relevant pages share recall mass 1."""
    labels = {page.page_id: float(relevance(page)) for page in pages}
    total = sum(labels.values())
    if total <= 0:
        return {page_id: 0.0 for page_id in labels}
    return {page_id: value / total for page_id, value in labels.items()}


def template_regularization(template_utilities: Mapping[Template, float],
                            templates: Iterable[Template],
                            adaptation_lambda: float,
                            normalize: bool = True) -> Dict[Template, float]:
    """``U_hat_E(t) = lambda * U_D(t)`` for templates learnt in the domain phase.

    Only templates that appear both in the domain model and in the entity
    graph receive regularization (``t in T_E intersect T_D``, Eqs. 21-22).

    ``normalize`` rescales the domain utilities by their maximum before
    applying ``lambda``.  The paper's domain graph and ours differ in size by
    orders of magnitude, and recall-mode utilities scale inversely with graph
    size; normalising makes the adaptation strength ``lambda`` comparable
    across modes and corpus scales (the ranking of templates is unchanged).
    """
    values = {t: float(v) for t, v in template_utilities.items() if v > 0}
    if not values:
        return {}
    scale = max(values.values()) if normalize else 1.0
    if scale <= 0:
        return {}
    regularization: Dict[Template, float] = {}
    for template in templates:
        domain_value = values.get(template)
        if domain_value is not None:
            regularization[template] = adaptation_lambda * domain_value / scale
    return regularization
