"""Graph assembly and utility regularization for L2Q inference.

This module turns a working set of pages plus a candidate query pool into a
:class:`~repro.graph.reinforcement.ReinforcementGraph` (optionally extended
with templates) and provides the utility-regularization vectors of Sect. III
(Eqs. 11-12): every relevant page is guided towards precision 1, and the
relevant pages share a total recall mass of 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.aspects.relevance import RelevanceFunction
from repro.core.config import L2QConfig
from repro.core.queries import Query
from repro.core.templates import Template, TemplateIndex
from repro.corpus.document import Page
from repro.corpus.knowledge_base import TypeSystem
from repro.graph.reinforcement import (
    ReinforcementGraph,
    ReinforcementGraphBuilder,
    VertexIndex,
    _entries_to_csr,
)
from repro.graph.random_walk import UtilitySolver


@dataclass
class AssembledGraph:
    """A built reinforcement graph together with its bookkeeping."""

    graph: ReinforcementGraph
    pages: List[Page]
    queries: List[Query]
    templates: List[Template]
    template_index: Optional[TemplateIndex]

    def solver(self, config: L2QConfig) -> UtilitySolver:
        """Create a solver with the configured alpha / iteration limits."""
        return UtilitySolver(self.graph, alpha=config.alpha,
                             max_iterations=config.max_solver_iterations,
                             tolerance=config.solver_tolerance)


class GraphAssembler:
    """Builds reinforcement graphs from pages, candidate queries and templates."""

    def __init__(self, type_system: TypeSystem, config: Optional[L2QConfig] = None) -> None:
        self.type_system = type_system
        self.config = config if config is not None else L2QConfig()

    def assemble(self, pages: Sequence[Page], queries: Sequence[Query],
                 use_templates: bool = True,
                 edge_weights: Optional[Mapping[Tuple[str, Query], float]] = None) -> AssembledGraph:
        """Build the graph.

        Parameters
        ----------
        pages:
            The page vertices (e.g. current result pages ``P_E`` or domain
            pages ``P_D``).
        queries:
            The candidate query vertices.  Edges connect a query to every
            page that contains all of its words ("page p can be retrieved by
            query q"); queries with no containing page still become vertices
            (they may be connected through templates).
        use_templates:
            Whether to add the template layer (Sect. IV).
        edge_weights:
            Optional override of page-query edge weights keyed by
            ``(page_id, query)``; defaults to binary containment weights.
        """
        # Same vertex/edge semantics as ReinforcementGraphBuilder (vertices
        # registered up front in input order, positive weights accumulated),
        # constructed directly: the builder's per-edge method calls are a
        # measurable fraction of each selection step.
        pages_index = VertexIndex()
        pages_index.extend([page.page_id for page in pages])
        queries_index = VertexIndex()
        query_positions = queries_index.extend(queries)

        page_positions, query_cols = _containment_arrays(pages, queries)
        distinct = (len(pages_index) == len(pages)
                    and len(queries_index) == len(queries))
        if edge_weights is None and distinct:
            # Hot path: binary weights over distinct vertices mean every
            # containment pair is one unit entry — straight to CSR, no
            # accumulation dict (the COO constructor canonicalises).
            page_query = sparse.csr_matrix(
                (np.ones(page_positions.size), (page_positions, query_cols)),
                shape=(len(pages_index), len(queries_index)), dtype=np.float64)
        else:
            # Duplicated vertices (or explicit weights) accumulate edge
            # weights in page-major pair order, as the graph builder would.
            pq_entries: Dict[Tuple[int, int], float] = {}
            for page_position, query_position in sorted(
                    zip(page_positions.tolist(), query_cols.tolist())):
                page = pages[page_position]
                query = queries[query_position]
                weight = 1.0
                if edge_weights is not None:
                    weight = float(edge_weights.get((page.page_id, query), 1.0))
                if weight <= 0:
                    continue
                key = (pages_index.add(page.page_id), query_positions[query_position])
                pq_entries[key] = pq_entries.get(key, 0.0) + weight
            page_query = _entries_to_csr(
                pq_entries, (len(pages_index), len(queries_index)))

        templates_index = VertexIndex()
        template_index: Optional[TemplateIndex] = None
        qt_rows: List[int] = []
        qt_cols: List[int] = []
        if use_templates:
            template_index = TemplateIndex(self.type_system)
            for query, query_vertex in zip(queries, query_positions):
                for template in template_index.add_query(query):
                    qt_rows.append(query_vertex)
                    qt_cols.append(templates_index.add(template))
        # Unit weights again: duplicate (query, template) pairs — possible
        # only with duplicated queries — sum to exact integers either way.
        query_template = sparse.csr_matrix(
            (np.ones(len(qt_rows)), (qt_rows, qt_cols)),
            shape=(len(queries_index), len(templates_index)), dtype=np.float64)

        graph = ReinforcementGraph(pages_index, queries_index, templates_index,
                                   page_query, query_template)
        return AssembledGraph(
            graph=graph,
            pages=list(pages),
            queries=list(queries),
            templates=list(graph.templates.keys()),
            template_index=template_index,
        )


def _containment_arrays(pages: Sequence[Page],
                        queries: Sequence[Query]) -> Tuple[np.ndarray, np.ndarray]:
    """All ``(page_position, query_position)`` pairs where the page contains
    every word of the query, via one sparse matmul.

    Equivalent to testing
    :func:`~repro.core.queries.query_contained_in_page` for every pair, but
    the O(pages × queries) loop collapses into counting, per pair, how many
    *distinct* query words occur in the page — ``(pages × words) @ (words ×
    queries)`` over binary incidence matrices — and keeping the pairs whose
    count equals the query's word count.  Returns parallel position arrays
    in no particular order; each pair occurs exactly once.
    """
    empty = np.zeros(0, dtype=np.int64)
    if not pages or not queries:
        return empty, empty
    word_positions: Dict[str, int] = {}
    query_rows: List[int] = []
    query_cols: List[int] = []
    vacuous: List[int] = []
    for query_position, query in enumerate(queries):
        words = set(query)
        if not words:
            # An empty query is (vacuously) contained in every page.
            vacuous.append(query_position)
            continue
        for word in words:
            position = word_positions.setdefault(word, len(word_positions))
            query_rows.append(query_position)
            query_cols.append(position)

    page_rows: List[int] = []
    page_cols: List[int] = []
    query_word_set = frozenset(word_positions)
    position_of = word_positions.__getitem__
    for page_position, page in enumerate(pages):
        # Set intersection runs in C; incidence order is irrelevant because
        # the COO->CSR conversion canonicalises (entries are unique).
        hits = page.token_set & query_word_set
        if hits:
            page_cols.extend(map(position_of, hits))
            page_rows.extend([page_position] * len(hits))

    pair_pages, pair_queries = empty, empty
    if word_positions:
        shape_words = len(word_positions)
        query_words = sparse.csr_matrix(
            (np.ones(len(query_rows)), (query_rows, query_cols)),
            shape=(len(queries), shape_words))
        page_words = sparse.csr_matrix(
            (np.ones(len(page_rows)), (page_rows, page_cols)),
            shape=(len(pages), shape_words))
        counts = (page_words @ query_words.T).tocoo()
        required = np.bincount(np.asarray(query_rows, dtype=np.int64),
                               minlength=len(queries))
        contained = counts.data == required[counts.col]
        pair_pages = counts.row[contained].astype(np.int64)
        pair_queries = counts.col[contained].astype(np.int64)
    if vacuous:
        every_page = np.arange(len(pages), dtype=np.int64)
        pair_pages = np.concatenate(
            [pair_pages] + [every_page for _ in vacuous])
        pair_queries = np.concatenate(
            [pair_queries] + [np.full(len(pages), position, dtype=np.int64)
                              for position in vacuous])
    return pair_pages, pair_queries


def _containment_pairs(pages: Sequence[Page],
                       queries: Sequence[Query]) -> List[Tuple[int, int]]:
    """:func:`_containment_arrays` as a page-major-sorted list of pairs."""
    pair_pages, pair_queries = _containment_arrays(pages, queries)
    return sorted(zip(pair_pages.tolist(), pair_queries.tolist()))


# ---------------------------------------------------------------------------
# Utility regularization (Eqs. 11-12)
# ---------------------------------------------------------------------------

def precision_page_regularization(pages: Sequence[Page],
                                  relevance: RelevanceFunction) -> Dict[str, float]:
    """``P_hat(p) = Y(p)``: every relevant page is guided towards precision 1."""
    return {page.page_id: float(relevance(page)) for page in pages}


def recall_page_regularization(pages: Sequence[Page],
                               relevance: RelevanceFunction) -> Dict[str, float]:
    """``R_hat(p) = Y(p) / sum_p' Y(p')``: relevant pages share recall mass 1."""
    labels = {page.page_id: float(relevance(page)) for page in pages}
    total = sum(labels.values())
    if total <= 0:
        return {page_id: 0.0 for page_id in labels}
    return {page_id: value / total for page_id, value in labels.items()}


def template_regularization(template_utilities: Mapping[Template, float],
                            templates: Iterable[Template],
                            adaptation_lambda: float,
                            normalize: bool = True) -> Dict[Template, float]:
    """``U_hat_E(t) = lambda * U_D(t)`` for templates learnt in the domain phase.

    Only templates that appear both in the domain model and in the entity
    graph receive regularization (``t in T_E intersect T_D``, Eqs. 21-22).

    ``normalize`` rescales the domain utilities by their maximum before
    applying ``lambda``.  The paper's domain graph and ours differ in size by
    orders of magnitude, and recall-mode utilities scale inversely with graph
    size; normalising makes the adaptation strength ``lambda`` comparable
    across modes and corpus scales (the ranking of templates is unchanged).
    """
    values = {t: float(v) for t, v in template_utilities.items() if v > 0}
    if not values:
        return {}
    scale = max(values.values()) if normalize else 1.0
    if scale <= 0:
        return {}
    regularization: Dict[Template, float] = {}
    for template in templates:
        domain_value = values.get(template)
        if domain_value is not None:
            regularization[template] = adaptation_lambda * domain_value / scale
    return regularization
