"""Context-aware L2Q: collective utilities over the past queries (Sect. V).

Different queries retrieve redundant pages, so the best individual query is
not necessarily the best addition to the queries already fired.  The paper
defines the *collective recall* of the context ``Phi`` plus a candidate
``q`` by inclusion-exclusion::

    R(Phi u {q}) = R(Phi) + R(q) - Delta(Phi, q)
    Delta(Phi, q) = R^(Y~)(q) * R(Phi)

where ``R^(Y~)(q)`` is the recall of ``q`` w.r.t. the relevant pages already
gathered, and the base case ``R({q(0)}) = r0`` is the seed-query parameter.
Collective precision is the ratio of two collective recalls, the numerator
w.r.t. the target aspect ``Y`` and the denominator w.r.t. ``Y*`` (all pages
relevant)::

    P(Phi u {q})  proportional to  R(Phi u {q}) / R*(Phi u {q})

:class:`ContextTracker` maintains ``R(Phi)`` and ``R*(Phi)`` across
iterations and evaluates the collective utilities of candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.entity_phase import EntityUtilities
from repro.core.queries import Query
from repro.utils.vectorize import exact_pow_half

_EPSILON = 1e-12


@dataclass
class CollectiveUtilities:
    """Collective utilities of the context plus one candidate query."""

    query: Query
    collective_recall: float
    collective_recall_all: float

    @property
    def collective_precision(self) -> float:
        """``R(Phi u {q}) / R*(Phi u {q})`` (Eq. 27).

        The paper's derivation drops the constant prior ``P(w in Omega(Y))``,
        so this quantity is only *proportional* to the collective precision;
        it is used for ranking candidates and is therefore not clamped to 1.
        """
        return max(self.collective_recall, 0.0) / max(self.collective_recall_all, _EPSILON)

    @property
    def balanced(self) -> float:
        """Geometric mean of collective precision and recall (L2QBAL)."""
        precision = self.collective_precision
        recall = max(self.collective_recall, 0.0)
        return (precision * recall) ** 0.5

    def discounted(self, expected_novelty: float,
                   penalty: float) -> "CollectiveUtilities":
        """Discount by page-level expected redundancy (dedup awareness).

        The paper's ``Delta(Phi, q)`` models redundancy among *relevant
        pages already gathered*; it cannot see that a query's result pages
        are near-copies of gathered content.  The discount multiplies the
        collective recall w.r.t. the target aspect by
        ``1 - penalty * (1 - expected_novelty)`` while leaving the ``Y*``
        denominator untouched, so collective precision, recall and the
        balanced objective all shrink proportionally for redundant queries.
        ``penalty = 0`` returns an identical ranking (and callers skip the
        call entirely, keeping the zero-penalty path bit-for-bit).
        """
        redundancy = min(max(1.0 - expected_novelty, 0.0), 1.0)
        factor = 1.0 - penalty * redundancy
        return CollectiveUtilities(
            query=self.query,
            collective_recall=self.collective_recall * factor,
            collective_recall_all=self.collective_recall_all,
        )


@dataclass(frozen=True)
class CollectiveUtilityArrays:
    """Collective utilities of the context plus each of many candidates.

    The batched counterpart of :class:`CollectiveUtilities`: element ``i``
    of every array corresponds to ``queries[i]``, and each derived quantity
    reproduces the scalar property of the same name bit for bit (the square
    root uses :func:`repro.utils.vectorize.exact_pow_half`, matching
    Python's ``** 0.5``).
    """

    queries: List[Query]
    collective_recall: np.ndarray
    collective_recall_all: np.ndarray

    @property
    def collective_precision(self) -> np.ndarray:
        """Elementwise :attr:`CollectiveUtilities.collective_precision`."""
        return (np.maximum(self.collective_recall, 0.0)
                / np.maximum(self.collective_recall_all, _EPSILON))

    @property
    def balanced(self) -> np.ndarray:
        """Elementwise :attr:`CollectiveUtilities.balanced`."""
        return exact_pow_half(self.collective_precision
                              * np.maximum(self.collective_recall, 0.0))

    def discounted(self, expected_novelty: np.ndarray,
                   penalty: float) -> "CollectiveUtilityArrays":
        """Elementwise :meth:`CollectiveUtilities.discounted`."""
        redundancy = np.minimum(np.maximum(1.0 - np.asarray(expected_novelty,
                                                            dtype=np.float64),
                                           0.0), 1.0)
        factor = 1.0 - penalty * redundancy
        return CollectiveUtilityArrays(
            queries=self.queries,
            collective_recall=self.collective_recall * factor,
            collective_recall_all=self.collective_recall_all,
        )


class ContextTracker:
    """Tracks the collective recall of the fired queries ``Phi``."""

    def __init__(self, seed_recall_r0: float = 0.3,
                 seed_recall_all: Optional[float] = None) -> None:
        if not 0.0 < seed_recall_r0 < 1.0:
            raise ValueError("seed_recall_r0 must be in (0, 1)")
        self.seed_recall_r0 = seed_recall_r0
        self.seed_recall_all = (seed_recall_all if seed_recall_all is not None
                                else seed_recall_r0)
        # R(Phi) w.r.t. Y and w.r.t. Y*: base case is the seed query q(0).
        self.context_recall = seed_recall_r0
        self.context_recall_all = self.seed_recall_all
        self.past_queries: List[Query] = []

    # -- Evaluation ----------------------------------------------------------
    def evaluate(self, query: Query, utilities: EntityUtilities) -> CollectiveUtilities:
        """Collective utilities of ``Phi u {query}`` (Eqs. 26-27)."""
        recall_q = utilities.recall.query(query)
        redundancy = utilities.recall_current.query(query) * self.context_recall
        collective_recall = self.context_recall + recall_q - redundancy

        recall_all_q = utilities.recall_all.query(query)
        redundancy_all = utilities.recall_current_all.query(query) * self.context_recall_all
        collective_recall_all = self.context_recall_all + recall_all_q - redundancy_all

        return CollectiveUtilities(
            query=query,
            collective_recall=_clamp(collective_recall),
            collective_recall_all=_clamp(collective_recall_all),
        )

    def evaluate_many(self, queries: Sequence[Query],
                      utilities: EntityUtilities) -> CollectiveUtilityArrays:
        """Collective utilities of ``Phi u {q}`` for every candidate at once.

        The batched counterpart of :meth:`evaluate`: one gather of the five
        utility vectors and a handful of array operations replace the
        per-candidate Python loop.  Element ``i`` equals
        ``evaluate(queries[i], utilities)`` bit for bit (same expression
        order, same clamping).
        """
        arrays = utilities.gather(queries)
        collective_recall = (self.context_recall + arrays.recall
                             - arrays.recall_current * self.context_recall)
        collective_recall_all = (self.context_recall_all + arrays.recall_all
                                 - arrays.recall_current_all * self.context_recall_all)
        return CollectiveUtilityArrays(
            queries=list(queries),
            collective_recall=_clamp_array(collective_recall),
            collective_recall_all=_clamp_array(collective_recall_all),
        )

    # -- Updates ---------------------------------------------------------------
    def update(self, query: Query, utilities: EntityUtilities) -> None:
        """Fold the selected query into the context (``Phi <- Phi u {q*}``)."""
        collective = self.evaluate(query, utilities)
        self.context_recall = collective.collective_recall
        self.context_recall_all = collective.collective_recall_all
        self.past_queries.append(query)

    def __len__(self) -> int:
        return len(self.past_queries)


def _clamp(value: float, low: float = 0.0, high: float = 1.0) -> float:
    return min(max(value, low), high)


def _clamp_array(values: np.ndarray, low: float = 0.0,
                 high: float = 1.0) -> np.ndarray:
    return np.minimum(np.maximum(values, low), high)
