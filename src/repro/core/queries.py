"""Candidate query enumeration.

Sect. VI-A of the paper: *"To enumerate candidate queries from a page, we
first tokenize the page into words ... we applied a sliding window of
``l`` words over the page for each ``l in {1, 2, ..., L}`` ... the ``l``
words in each window are taken as a candidate query"* with ``L = 3``.

Queries are represented as tuples of canonical tokens.  Stopwords, very
short tokens and the words of the seed query (which is appended to every
fired query anyway) are excluded from windows to keep the candidate space
meaningful.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.corpus.document import Page
from repro.corpus.tokenizer import DEFAULT_STOPWORDS

Query = Tuple[str, ...]


def format_query(query: Query) -> str:
    """Human-readable rendering of a query tuple."""
    return " ".join(word.replace("_", " ") for word in query)


@dataclass
class QueryStatistics:
    """Occurrence statistics for a set of enumerated queries."""

    occurrences: Counter = field(default_factory=Counter)
    pages: Dict[Query, Set[str]] = field(default_factory=lambda: defaultdict(set))
    entities: Dict[Query, Set[str]] = field(default_factory=lambda: defaultdict(set))

    def record(self, query: Query, page_id: str, entity_id: str, count: int = 1) -> None:
        """Record ``count`` occurrences of ``query`` on a page of an entity."""
        self.occurrences[query] += count
        self.pages[query].add(page_id)
        self.entities[query].add(entity_id)

    def queries(self) -> List[Query]:
        """All recorded queries."""
        return list(self.occurrences)

    def page_frequency(self, query: Query) -> int:
        """Number of distinct pages containing ``query``."""
        return len(self.pages.get(query, ()))

    def entity_support(self, query: Query) -> int:
        """Number of distinct entities whose pages contain ``query``."""
        return len(self.entities.get(query, ()))

    def merge(self, other: "QueryStatistics") -> None:
        """Fold another statistics object into this one."""
        self.occurrences.update(other.occurrences)
        for query, pages in other.pages.items():
            self.pages[query].update(pages)
        for query, entities in other.entities.items():
            self.entities[query].update(entities)


class QueryEnumerator:
    """Enumerates candidate queries from token sequences and pages."""

    def __init__(self, max_length: int = 3,
                 stopwords: Optional[Iterable[str]] = None,
                 min_word_length: int = 2,
                 exclude_words: Optional[Iterable[str]] = None) -> None:
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        self.max_length = max_length
        self.stopwords: FrozenSet[str] = (
            frozenset(stopwords) if stopwords is not None else DEFAULT_STOPWORDS
        )
        self.min_word_length = min_word_length
        self.exclude_words: FrozenSet[str] = frozenset(exclude_words or ())

    # -- Word filtering ------------------------------------------------------
    def is_usable_word(self, word: str) -> bool:
        """Whether a word may appear in a candidate query."""
        if word in self.stopwords or word in self.exclude_words:
            return False
        if len(word) < self.min_word_length:
            return False
        return True

    def content_words(self, tokens: Sequence[str]) -> List[str]:
        """Drop unusable words while preserving order."""
        return [t for t in tokens if self.is_usable_word(t)]

    # -- Enumeration -------------------------------------------------------------
    def enumerate_from_tokens(self, tokens: Sequence[str]) -> Counter:
        """Sliding-window enumeration over one token sequence.

        Returns a Counter mapping each candidate query tuple to its number
        of occurrences in the sequence.
        """
        words = self.content_words(tokens)
        counts: Counter = Counter()
        n = len(words)
        for length in range(1, self.max_length + 1):
            if n < length:
                break
            for start in range(n - length + 1):
                window = tuple(words[start:start + length])
                if len(set(window)) != length:
                    # Skip degenerate windows that repeat a word.
                    continue
                counts[window] += 1
        return counts

    def enumerate_from_page(self, page: Page) -> Counter:
        """Enumerate candidate queries from every paragraph of a page.

        Windows do not cross paragraph boundaries, matching the paper's use
        of paragraphs as semantic units.
        """
        counts: Counter = Counter()
        for paragraph in page.paragraphs:
            counts.update(self.enumerate_from_tokens(paragraph.tokens))
        return counts

    def enumerate_from_pages(self, pages: Sequence[Page]) -> QueryStatistics:
        """Enumerate and aggregate statistics over a collection of pages."""
        statistics = QueryStatistics()
        for page in pages:
            counts = self.enumerate_from_page(page)
            for query, count in counts.items():
                statistics.record(query, page.page_id, page.entity_id, count)
        return statistics


def query_contained_in_page(query: Query, page: Page) -> bool:
    """Whether ``page`` contains every word of ``query`` (bag-of-words containment).

    Containment is the proxy the learner uses for "query q can retrieve page
    p" when building reinforcement-graph edges — the whole point of utility
    inference is to avoid actually firing candidate queries.
    """
    return page.contains_all(query)


def prune_queries(statistics: QueryStatistics, min_page_frequency: int = 1,
                  max_queries: Optional[int] = None) -> List[Query]:
    """Keep frequent queries, most frequent first (ties broken lexicographically)."""
    kept = [q for q in statistics.queries()
            if statistics.page_frequency(q) >= min_page_frequency]
    kept.sort(key=lambda q: (-statistics.occurrences[q], q))
    if max_queries is not None and len(kept) > max_queries:
        kept = kept[:max_queries]
    return kept
