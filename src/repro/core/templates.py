"""Templates: query abstractions that generalise across entities.

Definition 1 of the paper: given a set of types (each a set of words), a
*template* is a sequence of units where each unit is either a literal word
or a type; a template *abstracts* a query when literal units match exactly
and type units contain the corresponding query word.

Templates are represented as tuples of unit strings; a type unit is written
``"<type_name>"`` (angle brackets never occur in canonical word tokens, so
the encoding is unambiguous).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple
from weakref import WeakKeyDictionary

from repro.core.queries import Query
from repro.corpus.knowledge_base import TypeSystem

Template = Tuple[str, ...]

_TYPE_PREFIX = "<"
_TYPE_SUFFIX = ">"


def type_unit(type_name: str) -> str:
    """Encode a type as a template unit string."""
    return f"{_TYPE_PREFIX}{type_name}{_TYPE_SUFFIX}"


def is_type_unit(unit: str) -> bool:
    """Whether a template unit denotes a type (as opposed to a literal word)."""
    return unit.startswith(_TYPE_PREFIX) and unit.endswith(_TYPE_SUFFIX)


def unit_type_name(unit: str) -> Optional[str]:
    """The type name of a type unit, or ``None`` for literal units."""
    if is_type_unit(unit):
        return unit[len(_TYPE_PREFIX):-len(_TYPE_SUFFIX)]
    return None


def format_template(template: Template) -> str:
    """Human-readable rendering of a template."""
    return " ".join(template)


#: Memo of ``abstract_query`` answers per type system.  Abstraction is a
#: pure function of the query and the type system's contents, yet the
#: selection loop rebuilds its template layer every iteration over a largely
#: unchanged candidate pool — without the memo it re-derives the same
#: templates tens of thousands of times per harvest.  Entries are keyed by
#: the type system's mutation counter so ``add_word`` after caching starts a
#: fresh memo rather than serving stale templates.
_ABSTRACTION_MEMO: "WeakKeyDictionary[TypeSystem, Tuple[int, Dict]]" = WeakKeyDictionary()


def _abstraction_memo(type_system: TypeSystem) -> Optional[Dict]:
    version = getattr(type_system, "_version", None)
    if version is None:
        return None
    try:
        entry = _ABSTRACTION_MEMO.get(type_system)
        if entry is None or entry[0] != version:
            entry = (version, {})
            _ABSTRACTION_MEMO[type_system] = entry
    except TypeError:  # non-weakref-able type system: skip caching
        return None
    return entry[1]


def abstract_query(query: Query, type_system: TypeSystem,
                   max_templates: int = 16) -> List[Template]:
    """Return the templates that abstract ``query``.

    Every typed word may independently stay literal or be abstracted to any
    of its types; the fully-literal combination (the query itself) is
    excluded because it carries no generalisation power.  The number of
    returned templates is capped at ``max_templates`` (deterministically, by
    preferring more-abstract templates first).
    """
    memo = _abstraction_memo(type_system)
    if memo is not None:
        key = (tuple(query), max_templates)
        cached = memo.get(key)
        if cached is None:
            cached = tuple(_abstract_query_uncached(query, type_system, max_templates))
            memo[key] = cached
        return list(cached)
    return _abstract_query_uncached(query, type_system, max_templates)


def _abstract_query_uncached(query: Query, type_system: TypeSystem,
                             max_templates: int) -> List[Template]:
    per_word_options: List[List[str]] = []
    any_typed = False
    for word in query:
        options = [word]
        for name in type_system.types_of(word):
            options.append(type_unit(name))
            any_typed = True
        per_word_options.append(options)
    if not any_typed:
        return []

    templates: Set[Template] = set()
    for combination in product(*per_word_options):
        template = tuple(combination)
        if template == tuple(query):
            continue
        templates.add(template)

    ordered = sorted(templates,
                     key=lambda t: (-sum(1 for unit in t if is_type_unit(unit)), t))
    return ordered[:max_templates]


def template_abstracts(template: Template, query: Query, type_system: TypeSystem) -> bool:
    """Whether ``template`` abstracts ``query`` (Definition 1)."""
    if len(template) != len(query):
        return False
    for unit, word in zip(template, query):
        name = unit_type_name(unit)
        if name is None:
            if unit != word:
                return False
        else:
            if name not in type_system.types_of(word):
                return False
    return True


def template_abstraction_level(template: Template) -> int:
    """Number of type units in the template (0 = fully literal)."""
    return sum(1 for unit in template if is_type_unit(unit))


class TemplateIndex:
    """Maps queries to their templates and vice versa for one graph build."""

    def __init__(self, type_system: TypeSystem, max_templates_per_query: int = 16) -> None:
        self.type_system = type_system
        self.max_templates_per_query = max_templates_per_query
        self._query_templates: Dict[Query, Tuple[Template, ...]] = {}
        self._template_queries: Dict[Template, Set[Query]] = {}
        self._memo: Optional[Dict] = None
        self._memo_version: Optional[int] = None

    def _current_memo(self) -> Optional[Dict]:
        """The shared abstraction memo, revalidated against the type system.

        Re-fetching the :data:`_ABSTRACTION_MEMO` entry involves a weakref
        lookup on every call; comparing the type system's mutation counter
        is much cheaper, so the entry is kept until the counter moves.
        """
        version = getattr(self.type_system, "_version", None)
        if version is None:
            return None
        if version != self._memo_version:
            self._memo = _abstraction_memo(self.type_system)
            self._memo_version = version
        return self._memo

    def add_query(self, query: Query) -> Tuple[Template, ...]:
        """Register a query, computing (and caching) its templates."""
        cached = self._query_templates.get(query)
        if cached is not None:
            return cached
        memo = self._current_memo()
        if memo is not None:
            key = (tuple(query), self.max_templates_per_query)
            templates = memo.get(key)
            if templates is None:
                templates = tuple(_abstract_query_uncached(
                    query, self.type_system, self.max_templates_per_query))
                memo[key] = templates
        else:
            templates = tuple(abstract_query(
                query, self.type_system,
                max_templates=self.max_templates_per_query))
        self._query_templates[query] = templates
        for template in templates:
            self._template_queries.setdefault(template, set()).add(query)
        return templates

    def add_queries(self, queries: Iterable[Query]) -> None:
        """Register many queries."""
        for query in queries:
            self.add_query(query)

    def templates_of(self, query: Query) -> Tuple[Template, ...]:
        """Templates of a registered query (empty tuple if unknown/untyped)."""
        return self._query_templates.get(query, ())

    def queries_of(self, template: Template) -> FrozenSet[Query]:
        """Registered queries abstracted by ``template``."""
        return frozenset(self._template_queries.get(template, ()))

    def templates(self) -> List[Template]:
        """All templates seen so far."""
        return list(self._template_queries)

    def __len__(self) -> int:
        return len(self._template_queries)
