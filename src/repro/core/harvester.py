"""The iterative harvesting loop of Fig. 1.

Starting from the entity's seed query, each iteration asks the query
selector for the next query, fires it against the search engine, and folds
the new result pages into the working set.  Selection (CPU) and fetch
(simulated I/O) times are recorded separately so that the efficiency
experiment of Fig. 14 can be reproduced.

Batched runs go through :meth:`Harvester.harvest_many`: each
:class:`HarvestJob` is an independent harvesting run (own session, own
seeded RNG, own selector instance), so job batches can be delegated to any
:class:`~repro.exec.backends.ExecutionBackend` — serial, thread pool or
sharded process pool — while remaining bit-for-bit reproducible: results
are returned in job order and every job's randomness derives only from its
seed, never from scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.aspects.relevance import RelevanceFunction
from repro.core.config import L2QConfig
from repro.core.domain_phase import DomainModel
from repro.core.queries import Query
from repro.core.selection import QuerySelector
from repro.core.session import HarvestSession
from repro.corpus.corpus import Corpus
from repro.exec.backends import ExecutionBackend, resolve_backend
from repro.perf import recorder as perf_recorder
from repro.search.engine import RunFetchAccounting, SearchEngine
from repro.utils.rng import SeededRandom
from repro.utils.timing import Stopwatch, TimingAccumulator

SELECTION_TIME = "selection"
FETCH_TIME = "fetch"


@dataclass(frozen=True)
class IterationRecord:
    """What happened in one iteration of the harvesting loop."""

    index: int
    query: Query
    result_page_ids: tuple
    new_page_ids: tuple
    selection_seconds: float
    fetch_seconds: float


@dataclass
class HarvestResult:
    """The outcome of one complete harvesting run."""

    entity_id: str
    aspect: str
    selector_name: str
    seed_page_ids: List[str] = field(default_factory=list)
    iterations: List[IterationRecord] = field(default_factory=list)
    timing: TimingAccumulator = field(default_factory=TimingAccumulator)
    #: This run's own account of engine traffic (fired queries, fetched
    #: pages, cache-key lookups).  It travels with the result across
    #: process boundaries, so orchestrators can merge batch-level fetch
    #: statistics identically on every backend — the shared engine's
    #: counters stay in whichever process ran the loop.
    fetch_accounting: Optional[RunFetchAccounting] = None

    @property
    def num_queries(self) -> int:
        """Number of non-seed queries fired."""
        return len(self.iterations)

    def queries(self) -> List[Query]:
        """The fired queries in order."""
        return [record.query for record in self.iterations]

    def gathered_after(self, num_queries: Optional[int] = None) -> List[str]:
        """Cumulative gathered page ids after ``num_queries`` iterations.

        The seed-query results count as gathered (iteration 0).  ``None``
        means "after all iterations".
        """
        limit = len(self.iterations) if num_queries is None else num_queries
        gathered: List[str] = []
        seen = set()
        for page_id in self.seed_page_ids:
            if page_id not in seen:
                seen.add(page_id)
                gathered.append(page_id)
        for record in self.iterations[:limit]:
            for page_id in record.result_page_ids:
                if page_id not in seen:
                    seen.add(page_id)
                    gathered.append(page_id)
        return gathered

    def average_selection_seconds(self) -> float:
        """Mean per-query selection time."""
        return self.timing.average(SELECTION_TIME)

    def average_fetch_seconds(self) -> float:
        """Mean per-query (simulated) fetch time."""
        return self.timing.average(FETCH_TIME)


@dataclass
class HarvestJob:
    """One harvesting run, ready to execute (single-use: the selector
    instance must be fresh, exactly as for :meth:`Harvester.harvest`)."""

    entity_id: str
    aspect: str
    selector: QuerySelector
    relevance: RelevanceFunction
    num_queries: Optional[int] = None
    domain_model: Optional[DomainModel] = None
    seed: Optional[int] = None


class Harvester:
    """Drives the iterative harvesting loop for one corpus and engine."""

    def __init__(self, corpus: Corpus, engine: SearchEngine,
                 config: Optional[L2QConfig] = None) -> None:
        self.corpus = corpus
        self.engine = engine
        self.config = config if config is not None else L2QConfig()
        self.config.validate()

    def harvest_job(self, job: HarvestJob) -> HarvestResult:
        """Execute one :class:`HarvestJob`."""
        return self.harvest(
            entity_id=job.entity_id,
            aspect=job.aspect,
            selector=job.selector,
            relevance=job.relevance,
            num_queries=job.num_queries,
            domain_model=job.domain_model,
            seed=job.seed,
        )

    def harvest_many(self, jobs: Sequence[HarvestJob], workers: int = 1,
                     backend: Union[None, str, ExecutionBackend] = None
                     ) -> List[HarvestResult]:
        """Execute a batch of jobs on an execution backend.

        ``backend`` is a registered backend name, a ready instance, or
        ``None`` for the historical behaviour (``workers=1`` serial,
        ``workers>1`` thread pool).  Results are returned in job order.
        Every job owns its session, seeded RNG and selector, and the shared
        engine's caches are thread-safe with order-independent contents, so
        every backend reproduces serial bit-for-bit (queries, result pages,
        seed pages — wall-clock timings naturally vary).

        The process backend pickles this harvester (corpus, engine
        configuration — the engine rebuilds its index per worker) and the
        job payloads into contiguous shards.  Worker-side engine counters
        stay in their workers, but every result carries its run's
        :class:`~repro.search.engine.RunFetchAccounting`; merge them with
        :func:`~repro.search.engine.merge_run_accounting` for batch-level
        fetch statistics that are identical on every backend.

        Note: shared memo caches reachable from jobs (classifier relevance
        labels, index-view postings) rely on the GIL making dict
        get-then-set races benign under the thread backend — every thread
        computes the same value, so last-write-wins is harmless.  On a
        free-threaded (no-GIL) build those caches would need the same lock
        treatment as the engine's.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        jobs = list(jobs)
        if not jobs:
            return []
        engine = resolve_backend(backend, workers=workers)
        return engine.map(self.harvest_job, jobs)

    def harvest(self, entity_id: str, aspect: str, selector: QuerySelector,
                relevance: RelevanceFunction, num_queries: Optional[int] = None,
                domain_model: Optional[DomainModel] = None,
                seed: Optional[int] = None) -> HarvestResult:
        """Run the full loop of Fig. 1 for one entity and aspect.

        Parameters
        ----------
        entity_id / aspect:
            The harvesting target.
        selector:
            A *fresh* query-selection strategy instance.
        relevance:
            The learner-visible relevance function (aspect classifier).
        num_queries:
            Number of queries to fire after the seed (defaults to the
            configured ``num_queries``).
        domain_model:
            Domain-phase knowledge, if the strategy is domain aware.
        seed:
            Randomness seed for this run (defaults to the configured seed).
        """
        rec = perf_recorder()
        if rec is None:
            return self._harvest(entity_id, aspect, selector, relevance,
                                 num_queries, domain_model, seed)
        with rec.phase("harvest", entity=entity_id, aspect=aspect,
                       selector=selector.name):
            return self._harvest(entity_id, aspect, selector, relevance,
                                 num_queries, domain_model, seed, rec=rec)

    def _harvest(self, entity_id: str, aspect: str, selector: QuerySelector,
                 relevance: RelevanceFunction, num_queries: Optional[int],
                 domain_model: Optional[DomainModel], seed: Optional[int],
                 rec=None) -> HarvestResult:
        entity = self.corpus.get_entity(entity_id)
        budget = num_queries if num_queries is not None else self.config.num_queries
        rng = SeededRandom(seed if seed is not None else self.config.random_seed)
        session = HarvestSession(
            corpus=self.corpus,
            engine=self.engine,
            entity=entity,
            aspect=aspect,
            relevance=relevance,
            config=self.config,
            rng=rng.spawn(entity_id, aspect, selector.name),
            domain_model=domain_model,
        )
        accounting = RunFetchAccounting()
        result = HarvestResult(entity_id=entity_id, aspect=aspect,
                               selector_name=selector.name,
                               fetch_accounting=accounting)

        # Iteration 0: the seed query.
        seed_results = self.engine.seed_results(entity_id, accounting=accounting)
        seed_pages = self.engine.fetch_pages(seed_results)
        session.add_pages(seed_pages)
        result.seed_page_ids = [r.page_id for r in seed_results]
        result.timing.add(
            FETCH_TIME, len(seed_results) * self.engine.simulated_fetch_seconds_per_page)

        selector.prepare(session)

        for index in range(budget):
            with Stopwatch() as select_watch:
                query = selector.select(session)
            if query is None:
                break
            results = self.engine.search(entity_id, list(query),
                                         accounting=accounting)
            pages = self.engine.fetch_pages(results)
            new_pages = session.add_pages(pages)
            session.record_query(query)
            fetch_seconds = len(results) * self.engine.simulated_fetch_seconds_per_page
            if rec is not None:
                rec.record(SELECTION_TIME, select_watch.elapsed,
                           selector=selector.name)
            result.timing.add(SELECTION_TIME, select_watch.elapsed)
            result.timing.add(FETCH_TIME, fetch_seconds)
            result.iterations.append(IterationRecord(
                index=index,
                query=query,
                result_page_ids=tuple(r.page_id for r in results),
                new_page_ids=tuple(p.page_id for p in new_pages),
                selection_seconds=select_watch.elapsed,
                fetch_seconds=fetch_seconds,
            ))
            selector.observe(session, query, new_pages)

        return result
