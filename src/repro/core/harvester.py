"""The iterative harvesting loop of Fig. 1.

Starting from the entity's seed query, each iteration asks the query
selector for the next query, fires it against the search engine, and folds
the new result pages into the working set.  Selection (CPU) and fetch
(simulated I/O) times are recorded separately so that the efficiency
experiment of Fig. 14 can be reproduced.

The loop itself lives in :class:`~repro.core.stepper.HarvestStepper`, a
resumable state machine split at the fetch boundary; :meth:`Harvester.harvest`
is a thin synchronous driver over it.  What sits between a step's
``next_action()`` and its ``feed()`` is a pluggable
:class:`~repro.search.clients.SearchClient`: the default
:class:`~repro.search.clients.InstantClient` calls the in-process engine
directly (the historical behaviour, bit-for-bit), while
:class:`~repro.search.clients.SimulatedServiceClient` models a real search
service — latency tails, QPS caps, timeouts and retries — and the async
:class:`~repro.serving.runner.ServingRunner` drives many steppers
concurrently by awaiting at that same boundary.

Batched runs go through :meth:`Harvester.harvest_many`: each
:class:`HarvestJob` is an independent harvesting run (own session, own
seeded RNG, own selector instance), so job batches can be delegated to any
:class:`~repro.exec.backends.ExecutionBackend` — serial, thread pool or
sharded process pool — while remaining bit-for-bit reproducible: results
are returned in job order and every job's randomness derives only from its
seed, never from scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.aspects.relevance import RelevanceFunction
from repro.core.config import L2QConfig
from repro.core.domain_phase import DomainModel
from repro.core.queries import Query
from repro.core.selection import QuerySelector
from repro.core.session import HarvestSession
from repro.core.stepper import Done, HarvestStepper
from repro.corpus.corpus import Corpus
from repro.exec.backends import ExecutionBackend, resolve_backend
from repro.perf import recorder as perf_recorder
from repro.search.clients import InstantClient, SearchClient
from repro.search.engine import RunFetchAccounting, SearchEngine
from repro.utils.rng import SeededRandom
from repro.utils.timing import TimingAccumulator

SELECTION_TIME = "selection"
FETCH_TIME = "fetch"
#: Measured client-side fetch latency (retries and backoff included) —
#: kept strictly apart from the paper's *simulated* per-page cost above,
#: so serving metrics never double-count into the Fig. 14 accounting.
CLIENT_TIME = "client"


@dataclass(frozen=True)
class IterationRecord:
    """What happened in one iteration of the harvesting loop.

    ``simulated_fetch_seconds`` is the *paper's* accounting — result count
    times the engine's configured per-page cost, the quantity Fig. 14
    contrasts with selection time.  ``client_seconds`` is the measured (or
    simulated-service) client latency of the fetch, including retries and
    backoff; it is 0.0 for the in-process instant client.  The two axes
    used to be conflated in a single ``fetch_seconds`` field.
    """

    index: int
    query: Query
    result_page_ids: tuple
    new_page_ids: tuple
    selection_seconds: float
    simulated_fetch_seconds: float
    client_seconds: float = 0.0

    @property
    def fetch_seconds(self) -> float:
        """Backward-compatible alias for ``simulated_fetch_seconds``."""
        return self.simulated_fetch_seconds


@dataclass
class HarvestResult:
    """The outcome of one complete harvesting run."""

    entity_id: str
    aspect: str
    selector_name: str
    seed_page_ids: List[str] = field(default_factory=list)
    iterations: List[IterationRecord] = field(default_factory=list)
    timing: TimingAccumulator = field(default_factory=TimingAccumulator)
    #: This run's own account of engine traffic (fired queries, fetched
    #: pages, cache-key lookups).  It travels with the result across
    #: process boundaries, so orchestrators can merge batch-level fetch
    #: statistics identically on every backend — the shared engine's
    #: counters stay in whichever process ran the loop.
    fetch_accounting: Optional[RunFetchAccounting] = None

    @property
    def num_queries(self) -> int:
        """Number of non-seed queries fired."""
        return len(self.iterations)

    def queries(self) -> List[Query]:
        """The fired queries in order."""
        return [record.query for record in self.iterations]

    def gathered_after(self, num_queries: Optional[int] = None) -> List[str]:
        """Cumulative gathered page ids after ``num_queries`` iterations.

        The seed-query results count as gathered (iteration 0).  ``None``
        means "after all iterations".
        """
        limit = len(self.iterations) if num_queries is None else num_queries
        gathered: List[str] = []
        seen = set()
        for page_id in self.seed_page_ids:
            if page_id not in seen:
                seen.add(page_id)
                gathered.append(page_id)
        for record in self.iterations[:limit]:
            for page_id in record.result_page_ids:
                if page_id not in seen:
                    seen.add(page_id)
                    gathered.append(page_id)
        return gathered

    def average_selection_seconds(self) -> float:
        """Mean per-query selection time."""
        return self.timing.average(SELECTION_TIME)

    def average_fetch_seconds(self) -> float:
        """Mean per-query (simulated, paper-accounting) fetch time."""
        return self.timing.average(FETCH_TIME)

    def total_client_seconds(self) -> float:
        """Total measured client-side fetch latency (0.0 for instant)."""
        return self.timing.total(CLIENT_TIME)


@dataclass
class HarvestJob:
    """One harvesting run, ready to execute (single-use: the selector
    instance must be fresh, exactly as for :meth:`Harvester.harvest`)."""

    entity_id: str
    aspect: str
    selector: QuerySelector
    relevance: RelevanceFunction
    num_queries: Optional[int] = None
    domain_model: Optional[DomainModel] = None
    seed: Optional[int] = None


def drive_stepper(stepper: HarvestStepper, client: SearchClient) -> HarvestResult:
    """The synchronous driver loop: fetch every action in-line.

    With the default :class:`~repro.search.clients.InstantClient` this
    reproduces the historical monolithic loop bit-for-bit (same engine
    calls in the same order, same RNG streams).  Any other client slots in
    between selection and ingestion without the stepper noticing.
    """
    action = stepper.next_action()
    while not isinstance(action, Done):
        outcome = client.fetch(action, accounting=stepper.accounting)
        stepper.feed(outcome.results, outcome.pages,
                     client_seconds=outcome.latency_seconds)
        action = stepper.next_action()
    return stepper.result


class Harvester:
    """Drives the iterative harvesting loop for one corpus and engine.

    ``client`` is the default :class:`~repro.search.clients.SearchClient`
    used by :meth:`harvest` when none is passed per call; ``None`` means
    the in-process instant client (the paper's semantics).
    """

    def __init__(self, corpus: Corpus, engine: SearchEngine,
                 config: Optional[L2QConfig] = None,
                 client: Optional[SearchClient] = None) -> None:
        self.corpus = corpus
        self.engine = engine
        self.config = config if config is not None else L2QConfig()
        self.config.validate()
        self.client = client

    def harvest_job(self, job: HarvestJob,
                    client: Optional[SearchClient] = None) -> HarvestResult:
        """Execute one :class:`HarvestJob`."""
        return self.harvest(
            entity_id=job.entity_id,
            aspect=job.aspect,
            selector=job.selector,
            relevance=job.relevance,
            num_queries=job.num_queries,
            domain_model=job.domain_model,
            seed=job.seed,
            client=client,
        )

    def harvest_many(self, jobs: Sequence[HarvestJob], workers: int = 1,
                     backend: Union[None, str, ExecutionBackend] = None
                     ) -> List[HarvestResult]:
        """Execute a batch of jobs on an execution backend.

        ``backend`` is a registered backend name, a ready instance, or
        ``None`` for the historical behaviour (``workers=1`` serial,
        ``workers>1`` thread pool).  Results are returned in job order.
        Every job owns its session, seeded RNG and selector, and the shared
        engine's caches are thread-safe with order-independent contents, so
        every backend reproduces serial bit-for-bit (queries, result pages,
        seed pages — wall-clock timings naturally vary).

        The process backend pickles this harvester (corpus, engine
        configuration — the engine rebuilds its index per worker) and the
        job payloads into contiguous shards.  Worker-side engine counters
        stay in their workers, but every result carries its run's
        :class:`~repro.search.engine.RunFetchAccounting`; merge them with
        :func:`~repro.search.engine.merge_run_accounting` for batch-level
        fetch statistics that are identical on every backend.

        The ``serving`` backend (see :mod:`repro.serving.runner`) drives
        the same jobs through asyncio steppers concurrently, awaiting at
        the fetch boundary; with the instant client it too is bit-identical
        to serial.

        Note: shared memo caches reachable from jobs (classifier relevance
        labels, index-view postings) rely on the GIL making dict
        get-then-set races benign under the thread backend — every thread
        computes the same value, so last-write-wins is harmless.  On a
        free-threaded (no-GIL) build those caches would need the same lock
        treatment as the engine's.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        jobs = list(jobs)
        if not jobs:
            return []
        engine = resolve_backend(backend, workers=workers)
        return engine.map(self.harvest_job, jobs)

    def harvest(self, entity_id: str, aspect: str, selector: QuerySelector,
                relevance: RelevanceFunction, num_queries: Optional[int] = None,
                domain_model: Optional[DomainModel] = None,
                seed: Optional[int] = None,
                client: Optional[SearchClient] = None) -> HarvestResult:
        """Run the full loop of Fig. 1 for one entity and aspect.

        Parameters
        ----------
        entity_id / aspect:
            The harvesting target.
        selector:
            A *fresh* query-selection strategy instance.
        relevance:
            The learner-visible relevance function (aspect classifier).
        num_queries:
            Number of queries to fire after the seed (defaults to the
            configured ``num_queries``).
        domain_model:
            Domain-phase knowledge, if the strategy is domain aware.
        seed:
            Randomness seed for this run (defaults to the configured seed).
        client:
            The search client performing the fetches (defaults to the
            harvester's configured client, then to the in-process
            :class:`~repro.search.clients.InstantClient`).
        """
        rec = perf_recorder()
        if rec is None:
            return self._harvest(entity_id, aspect, selector, relevance,
                                 num_queries, domain_model, seed, client=client)
        with rec.phase("harvest", entity=entity_id, aspect=aspect,
                       selector=selector.name):
            return self._harvest(entity_id, aspect, selector, relevance,
                                 num_queries, domain_model, seed, rec=rec,
                                 client=client)

    def stepper(self, entity_id: str, aspect: str, selector: QuerySelector,
                relevance: RelevanceFunction, num_queries: Optional[int] = None,
                domain_model: Optional[DomainModel] = None,
                seed: Optional[int] = None, rec=None) -> HarvestStepper:
        """Build the resumable state machine for one harvesting run.

        Sets up the session (seeded identically to the historical inline
        loop), the result skeleton and the run's fetch accounting; the
        caller drives it — synchronously via :func:`drive_stepper`, or
        concurrently via the serving runner.
        """
        entity = self.corpus.get_entity(entity_id)
        budget = num_queries if num_queries is not None else self.config.num_queries
        rng = SeededRandom(seed if seed is not None else self.config.random_seed)
        session = HarvestSession(
            corpus=self.corpus,
            engine=self.engine,
            entity=entity,
            aspect=aspect,
            relevance=relevance,
            config=self.config,
            rng=rng.spawn(entity_id, aspect, selector.name),
            domain_model=domain_model,
        )
        accounting = RunFetchAccounting()
        result = HarvestResult(entity_id=entity_id, aspect=aspect,
                               selector_name=selector.name,
                               fetch_accounting=accounting)
        return HarvestStepper(
            session=session,
            selector=selector,
            result=result,
            accounting=accounting,
            budget=budget,
            simulated_fetch_seconds_per_page=self.engine.simulated_fetch_seconds_per_page,
            rec=rec,
        )

    def stepper_for_job(self, job: HarvestJob, rec=None) -> HarvestStepper:
        """Build the state machine for one :class:`HarvestJob`."""
        return self.stepper(job.entity_id, job.aspect, job.selector,
                            job.relevance, num_queries=job.num_queries,
                            domain_model=job.domain_model, seed=job.seed,
                            rec=rec)

    def _harvest(self, entity_id: str, aspect: str, selector: QuerySelector,
                 relevance: RelevanceFunction, num_queries: Optional[int],
                 domain_model: Optional[DomainModel], seed: Optional[int],
                 rec=None, client: Optional[SearchClient] = None) -> HarvestResult:
        stepper = self.stepper(entity_id, aspect, selector, relevance,
                               num_queries, domain_model, seed, rec=rec)
        if client is None:
            client = self.client if self.client is not None \
                else InstantClient(self.engine)
        return drive_stepper(stepper, client)
