"""L2Q core: utility inference, domain/context awareness, selection and harvesting."""

from repro.core.config import L2QConfig
from repro.core.context import CollectiveUtilities, ContextTracker
from repro.core.domain_phase import DomainModel, DomainPhase, learn_domain_models
from repro.core.entity_phase import EntityPhase, EntityUtilities
from repro.core.harvester import (
    CLIENT_TIME,
    FETCH_TIME,
    SELECTION_TIME,
    HarvestResult,
    Harvester,
    IterationRecord,
    drive_stepper,
)
from repro.core.stepper import (
    DONE,
    Done,
    HarvestStepper,
    QueryFetch,
    SeedFetch,
    StepperProtocolError,
)
from repro.core.queries import (
    Query,
    QueryEnumerator,
    QueryStatistics,
    format_query,
    prune_queries,
    query_contained_in_page,
)
from repro.core.selection import (
    ContextAwareSelection,
    DomainQuerySelection,
    QuerySelector,
    RandomSelection,
    TemplateSelection,
    UtilityOnlySelection,
    make_selector,
    selector_names,
)
from repro.core.session import HarvestSession
from repro.core.templates import (
    Template,
    TemplateIndex,
    abstract_query,
    format_template,
    is_type_unit,
    template_abstracts,
    template_abstraction_level,
    type_unit,
    unit_type_name,
)
from repro.core.utility import (
    AssembledGraph,
    GraphAssembler,
    precision_page_regularization,
    recall_page_regularization,
    template_regularization,
)

__all__ = [
    "AssembledGraph",
    "CLIENT_TIME",
    "CollectiveUtilities",
    "ContextAwareSelection",
    "ContextTracker",
    "DONE",
    "DomainModel",
    "DomainPhase",
    "DomainQuerySelection",
    "Done",
    "EntityPhase",
    "EntityUtilities",
    "FETCH_TIME",
    "GraphAssembler",
    "HarvestResult",
    "HarvestSession",
    "HarvestStepper",
    "Harvester",
    "IterationRecord",
    "QueryFetch",
    "SeedFetch",
    "StepperProtocolError",
    "L2QConfig",
    "Query",
    "QueryEnumerator",
    "QuerySelector",
    "QueryStatistics",
    "RandomSelection",
    "SELECTION_TIME",
    "Template",
    "TemplateIndex",
    "TemplateSelection",
    "UtilityOnlySelection",
    "abstract_query",
    "drive_stepper",
    "format_query",
    "format_template",
    "is_type_unit",
    "learn_domain_models",
    "make_selector",
    "precision_page_regularization",
    "prune_queries",
    "query_contained_in_page",
    "recall_page_regularization",
    "selector_names",
    "template_abstraction_level",
    "template_abstracts",
    "template_regularization",
    "type_unit",
    "unit_type_name",
]
