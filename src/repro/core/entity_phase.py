"""The entity phase of domain-aware L2Q (Sect. IV-C).

Executed for every query selection: from the target entity's current result
pages ``P_E`` (plus frequently-occurring domain queries), build the entity
reinforcement graph, inject regularization from the current pages and from
the domain-phase template utilities (scaled by the adaptation parameter
``lambda``), and solve for the utilities ``U_E(q)`` of every candidate
query.

Besides the precision and recall of Sect. IV, the entity phase also solves
the auxiliary recall problems needed by context-aware L2Q (Sect. V):

* recall w.r.t. ``Y~`` (relevant pages among the *current* pages only, no
  domain-template regularization) — used for the redundancy term
  ``Delta(Phi, q) = R^(Y~)(q) * R(Phi)``;
* recall w.r.t. ``Y*`` (every page relevant) and its ``Y~*`` restriction —
  used for the denominator of collective precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.aspects.relevance import AllRelevant, RelevanceFunction
from repro.core.config import L2QConfig
from repro.core.domain_phase import DomainModel
from repro.core.queries import Query, QueryEnumerator, QueryStatistics, prune_queries
from repro.core.utility import (
    AssembledGraph,
    GraphAssembler,
    precision_page_regularization,
    recall_page_regularization,
    template_regularization,
)
from repro.corpus.document import Entity, Page
from repro.corpus.knowledge_base import TypeSystem
from repro.graph.random_walk import UtilityVector


@dataclass
class EntityUtilities:
    """All per-candidate utilities computed by one entity-phase run."""

    candidates: List[Query]
    assembled: AssembledGraph
    precision: UtilityVector
    recall: UtilityVector
    recall_current: UtilityVector
    recall_all: UtilityVector
    recall_current_all: UtilityVector

    def precision_of(self, query: Query) -> float:
        """Inferred (individual) precision of a candidate query."""
        return self.precision.query(query)

    def recall_of(self, query: Query) -> float:
        """Inferred (individual) recall of a candidate query."""
        return self.recall.query(query)

    def ranked_by_precision(self) -> List[Query]:
        """Candidates sorted by decreasing precision (ties lexicographic)."""
        return sorted(self.candidates, key=lambda q: (-self.precision_of(q), q))

    def ranked_by_recall(self) -> List[Query]:
        """Candidates sorted by decreasing recall (ties lexicographic)."""
        return sorted(self.candidates, key=lambda q: (-self.recall_of(q), q))


class EntityPhase:
    """Builds the entity graph and infers candidate-query utilities."""

    def __init__(self, type_system: TypeSystem, config: Optional[L2QConfig] = None) -> None:
        self.type_system = type_system
        self.config = config if config is not None else L2QConfig()
        self.config.validate()
        self._assembler = GraphAssembler(type_system, self.config)

    # -- Candidate enumeration --------------------------------------------------
    def enumerate_candidates(self, entity: Entity, current_pages: Sequence[Page],
                             domain_model: Optional[DomainModel] = None,
                             exclude: Optional[Set[Query]] = None,
                             statistics: Optional[QueryStatistics] = None,
                             observed_words: Optional[Set[str]] = None) -> List[Query]:
        """Build the candidate query set ``Q_E``.

        Candidates come from the current result pages; when a domain model
        is available, queries occurring with many domain entities are added
        as well, so that useful queries not yet visible in ``P_E`` remain
        reachable (Sect. IV-C, *Entity graph*).

        ``statistics`` (and optionally ``observed_words``) may be supplied
        by a caller that maintains them incrementally — the harvesting loop
        passes ``session.candidates`` state here so that selection does not
        re-enumerate the full working set every iteration.  When omitted,
        both are computed from scratch over ``current_pages``.
        """
        if statistics is None:
            enumerator = QueryEnumerator(
                max_length=self.config.max_query_length,
                min_word_length=self.config.min_query_word_length,
                exclude_words=entity.excluded_words(),
            )
            statistics = enumerator.enumerate_from_pages(list(current_pages))
        candidates = prune_queries(statistics, min_page_frequency=1,
                                   max_queries=self.config.max_entity_candidates)
        seen = set(candidates)
        if domain_model is not None and not domain_model.is_empty():
            excluded_words = entity.excluded_words()
            if observed_words is None:
                observed_words = set()
                for page in current_pages:
                    observed_words.update(page.token_set)
            for query in domain_model.frequent_queries:
                if query in seen:
                    continue
                if any(word in excluded_words for word in query):
                    continue
                # Require at least partial evidence for the target entity:
                # a frequent domain query none of whose words occur on any
                # current page has no grounding for this entity and would be
                # ranked purely by template transfer.
                if not any(word in observed_words for word in query):
                    continue
                candidates.append(query)
                seen.add(query)
                if len(candidates) >= self.config.max_entity_candidates * 2:
                    break
        if exclude:
            candidates = [q for q in candidates if q not in exclude]
        return candidates

    # -- Utility inference ----------------------------------------------------------
    def compute(self, entity: Entity, current_pages: Sequence[Page],
                relevance: RelevanceFunction,
                domain_model: Optional[DomainModel] = None,
                use_templates: bool = True,
                exclude: Optional[Set[Query]] = None,
                statistics: Optional[QueryStatistics] = None,
                observed_words: Optional[Set[str]] = None) -> EntityUtilities:
        """Run the entity phase and return all candidate utilities.

        Parameters
        ----------
        entity:
            The target entity.
        current_pages:
            The pages gathered so far (``P_E``).
        relevance:
            The relevance function ``Y`` (normally the aspect classifier).
        domain_model:
            Template knowledge from the domain phase; ``None`` disables
            domain awareness (the plain P / R strategies of Sect. VI-B).
        use_templates:
            Whether to build the template layer at all.
        exclude:
            Queries to exclude from the candidate set (e.g. already fired).
        statistics / observed_words:
            Incrementally-maintained enumeration state (see
            :meth:`enumerate_candidates`); computed from scratch if omitted.
        """
        pages = list(current_pages)
        candidates = self.enumerate_candidates(entity, pages, domain_model, exclude,
                                               statistics=statistics,
                                               observed_words=observed_words)
        assembled = self._assembler.assemble(pages, candidates, use_templates=use_templates)
        solver = assembled.solver(self.config)

        page_precision_reg = precision_page_regularization(pages, relevance)
        page_recall_reg = recall_page_regularization(pages, relevance)
        all_relevant = AllRelevant()
        page_recall_all_reg = recall_page_regularization(pages, all_relevant)

        template_precision_reg: Dict = {}
        template_recall_reg: Dict = {}
        template_recall_all_reg: Dict = {}
        if use_templates and domain_model is not None and not domain_model.is_empty():
            graph_templates = assembled.graph.templates.keys()
            template_precision_reg = template_regularization(
                domain_model.template_precision, graph_templates,
                self.config.adaptation_lambda)
            template_recall_reg = template_regularization(
                domain_model.template_recall, graph_templates,
                self.config.adaptation_lambda)
            template_recall_all_reg = template_regularization(
                domain_model.template_recall_all, graph_templates,
                self.config.adaptation_lambda)

        precision = solver.solve_precision(
            page_regularization=page_precision_reg,
            template_regularization=template_precision_reg)
        recall = solver.solve_recall(
            page_regularization=page_recall_reg,
            template_regularization=template_recall_reg)
        # Y~: recall restricted to the currently gathered relevant pages —
        # no domain-template regularization (the domain speaks about the
        # whole universe, not about what has already been downloaded).
        recall_current = solver.solve_recall(page_regularization=page_recall_reg)
        recall_all = solver.solve_recall(
            page_regularization=page_recall_all_reg,
            template_regularization=template_recall_all_reg)
        recall_current_all = solver.solve_recall(page_regularization=page_recall_all_reg)

        return EntityUtilities(
            candidates=candidates,
            assembled=assembled,
            precision=precision,
            recall=recall,
            recall_current=recall_current,
            recall_all=recall_all,
            recall_current_all=recall_current_all,
        )
