"""The entity phase of domain-aware L2Q (Sect. IV-C).

Executed for every query selection: from the target entity's current result
pages ``P_E`` (plus frequently-occurring domain queries), build the entity
reinforcement graph, inject regularization from the current pages and from
the domain-phase template utilities (scaled by the adaptation parameter
``lambda``), and solve for the utilities ``U_E(q)`` of every candidate
query.

Besides the precision and recall of Sect. IV, the entity phase also solves
the auxiliary recall problems needed by context-aware L2Q (Sect. V):

* recall w.r.t. ``Y~`` (relevant pages among the *current* pages only, no
  domain-template regularization) — used for the redundancy term
  ``Delta(Phi, q) = R^(Y~)(q) * R(Phi)``;
* recall w.r.t. ``Y*`` (every page relevant) and its ``Y~*`` restriction —
  used for the denominator of collective precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.aspects.relevance import AllRelevant, RelevanceFunction
from repro.core.config import L2QConfig
from repro.core.domain_phase import DomainModel
from repro.core.queries import Query, QueryEnumerator, QueryStatistics, prune_queries
from repro.core.utility import (
    AssembledGraph,
    GraphAssembler,
    precision_page_regularization,
    recall_page_regularization,
    template_regularization,
)
from repro.corpus.document import Entity, Page
from repro.corpus.knowledge_base import TypeSystem
from repro.graph.random_walk import RegularizationProblem, UtilityVector


@dataclass(frozen=True)
class CandidateUtilityArrays:
    """All five utility vectors gathered per candidate query, as arrays.

    Row ``i`` of every array is the utility of ``queries[i]`` (0.0 for a
    query absent from the graph) — exactly what the per-query scalar
    lookups :meth:`~repro.graph.random_walk.UtilityVector.query` return,
    gathered once so the selection loop can score all candidates with a
    handful of array operations.
    """

    queries: List[Query]
    precision: np.ndarray
    recall: np.ndarray
    recall_current: np.ndarray
    recall_all: np.ndarray
    recall_current_all: np.ndarray


@dataclass
class EntityUtilities:
    """All per-candidate utilities computed by one entity-phase run."""

    candidates: List[Query]
    assembled: AssembledGraph
    precision: UtilityVector
    recall: UtilityVector
    recall_current: UtilityVector
    recall_all: UtilityVector
    recall_current_all: UtilityVector
    #: Last :meth:`gather` result, keyed by the identity of the query list
    #: (the reference is retained, so the id cannot be recycled) — the
    #: scorer and the context evaluator both gather the same candidate list
    #: during one selection, so the second gather is free.
    _gather_cache: Optional[Tuple[Sequence[Query], CandidateUtilityArrays]] = \
        field(default=None, init=False, repr=False, compare=False)

    def precision_of(self, query: Query) -> float:
        """Inferred (individual) precision of a candidate query."""
        return self.precision.query(query)

    def recall_of(self, query: Query) -> float:
        """Inferred (individual) recall of a candidate query."""
        return self.recall.query(query)

    def gather(self, queries: Sequence[Query]) -> CandidateUtilityArrays:
        """Gather every utility vector for ``queries`` into aligned arrays."""
        cache = self._gather_cache
        if cache is not None and cache[0] is queries:
            return cache[1]
        index = self.assembled.graph.queries
        positions = np.asarray(
            [position if (position := index.index_of(q)) is not None else -1
             for q in queries], dtype=np.int64)
        present = positions >= 0
        safe = np.where(present, positions, 0)

        def values_of(vector: UtilityVector) -> np.ndarray:
            if vector.query_values.size == 0 or not queries:
                return np.zeros(len(queries), dtype=np.float64)
            return np.where(present, vector.query_values[safe], 0.0)

        arrays = CandidateUtilityArrays(
            queries=list(queries),
            precision=values_of(self.precision),
            recall=values_of(self.recall),
            recall_current=values_of(self.recall_current),
            recall_all=values_of(self.recall_all),
            recall_current_all=values_of(self.recall_current_all),
        )
        self._gather_cache = (queries, arrays)
        return arrays

    def ranked_by_precision(self) -> List[Query]:
        """Candidates sorted by decreasing precision (ties lexicographic)."""
        return sorted(self.candidates, key=lambda q: (-self.precision_of(q), q))

    def ranked_by_recall(self) -> List[Query]:
        """Candidates sorted by decreasing recall (ties lexicographic)."""
        return sorted(self.candidates, key=lambda q: (-self.recall_of(q), q))


class EntityPhase:
    """Builds the entity graph and infers candidate-query utilities."""

    def __init__(self, type_system: TypeSystem, config: Optional[L2QConfig] = None) -> None:
        self.type_system = type_system
        self.config = config if config is not None else L2QConfig()
        self.config.validate()
        self._assembler = GraphAssembler(type_system, self.config)
        # (domain_model, entity_id, queries): domain queries that survive the
        # entity's excluded-word filter.  The filter result is fixed for one
        # (model, entity) pair, and a long-lived phase runs one selection per
        # harvest iteration over exactly that pair.
        self._domain_usable_cache: Optional[Tuple[DomainModel, str, List[Query]]] = None

    # -- Candidate enumeration --------------------------------------------------
    def enumerate_candidates(self, entity: Entity, current_pages: Sequence[Page],
                             domain_model: Optional[DomainModel] = None,
                             exclude: Optional[Set[Query]] = None,
                             statistics: Optional[QueryStatistics] = None,
                             observed_words: Optional[Set[str]] = None) -> List[Query]:
        """Build the candidate query set ``Q_E``.

        Candidates come from the current result pages; when a domain model
        is available, queries occurring with many domain entities are added
        as well, so that useful queries not yet visible in ``P_E`` remain
        reachable (Sect. IV-C, *Entity graph*).

        ``statistics`` (and optionally ``observed_words``) may be supplied
        by a caller that maintains them incrementally — the harvesting loop
        passes ``session.candidates`` state here so that selection does not
        re-enumerate the full working set every iteration.  When omitted,
        both are computed from scratch over ``current_pages``.
        """
        if statistics is None:
            enumerator = QueryEnumerator(
                max_length=self.config.max_query_length,
                min_word_length=self.config.min_query_word_length,
                exclude_words=entity.excluded_words(),
            )
            statistics = enumerator.enumerate_from_pages(list(current_pages))
        candidates = prune_queries(statistics, min_page_frequency=1,
                                   max_queries=self.config.max_entity_candidates)
        seen = set(candidates)
        if domain_model is not None and not domain_model.is_empty():
            if observed_words is None:
                observed_words = set()
                for page in current_pages:
                    observed_words.update(page.token_set)
            cache = self._domain_usable_cache
            if (cache is not None and cache[0] is domain_model
                    and cache[1] == entity.entity_id):
                usable = cache[2]
            else:
                excluded_words = entity.excluded_words()
                usable = [query for query in domain_model.frequent_queries
                          if not any(word in excluded_words for word in query)]
                self._domain_usable_cache = (domain_model, entity.entity_id, usable)
            for query in usable:
                if query in seen:
                    continue
                # Require at least partial evidence for the target entity:
                # a frequent domain query none of whose words occur on any
                # current page has no grounding for this entity and would be
                # ranked purely by template transfer.
                if not any(word in observed_words for word in query):
                    continue
                candidates.append(query)
                seen.add(query)
                if len(candidates) >= self.config.max_entity_candidates * 2:
                    break
        if exclude:
            candidates = [q for q in candidates if q not in exclude]
        return candidates

    # -- Utility inference ----------------------------------------------------------
    def compute(self, entity: Entity, current_pages: Sequence[Page],
                relevance: RelevanceFunction,
                domain_model: Optional[DomainModel] = None,
                use_templates: bool = True,
                exclude: Optional[Set[Query]] = None,
                statistics: Optional[QueryStatistics] = None,
                observed_words: Optional[Set[str]] = None) -> EntityUtilities:
        """Run the entity phase and return all candidate utilities.

        Parameters
        ----------
        entity:
            The target entity.
        current_pages:
            The pages gathered so far (``P_E``).
        relevance:
            The relevance function ``Y`` (normally the aspect classifier).
        domain_model:
            Template knowledge from the domain phase; ``None`` disables
            domain awareness (the plain P / R strategies of Sect. VI-B).
        use_templates:
            Whether to build the template layer at all.
        exclude:
            Queries to exclude from the candidate set (e.g. already fired).
        statistics / observed_words:
            Incrementally-maintained enumeration state (see
            :meth:`enumerate_candidates`); computed from scratch if omitted.
        """
        pages = list(current_pages)
        candidates = self.enumerate_candidates(entity, pages, domain_model, exclude,
                                               statistics=statistics,
                                               observed_words=observed_words)
        assembled = self._assembler.assemble(pages, candidates, use_templates=use_templates)
        solver = assembled.solver(self.config)

        page_precision_reg = precision_page_regularization(pages, relevance)
        page_recall_reg = recall_page_regularization(pages, relevance)
        all_relevant = AllRelevant()
        page_recall_all_reg = recall_page_regularization(pages, all_relevant)

        template_precision_reg: Dict = {}
        template_recall_reg: Dict = {}
        template_recall_all_reg: Dict = {}
        if use_templates and domain_model is not None and not domain_model.is_empty():
            graph_templates = assembled.graph.templates.keys()
            template_precision_reg = template_regularization(
                domain_model.template_precision, graph_templates,
                self.config.adaptation_lambda)
            template_recall_reg = template_regularization(
                domain_model.template_recall, graph_templates,
                self.config.adaptation_lambda)
            template_recall_all_reg = template_regularization(
                domain_model.template_recall_all, graph_templates,
                self.config.adaptation_lambda)

        # The precision problem and the four recall problems (w.r.t. Y, Y~,
        # Y* and Y~*) run in one joint loop: recall problems share every
        # sparse matmul as multi-RHS columns, and the precision iteration
        # rides the same Python loop.  Y~ / Y~* carry no domain-template
        # regularization: the domain speaks about the whole universe, not
        # about what has already been downloaded.
        precision_solved, recall_solved = solver.solve_joint(
            [RegularizationProblem(
                page_regularization=page_precision_reg,
                template_regularization=template_precision_reg)],
            [
                RegularizationProblem(
                    page_regularization=page_recall_reg,
                    template_regularization=template_recall_reg),
                RegularizationProblem(page_regularization=page_recall_reg),
                RegularizationProblem(
                    page_regularization=page_recall_all_reg,
                    template_regularization=template_recall_all_reg),
                RegularizationProblem(page_regularization=page_recall_all_reg),
            ])
        precision = precision_solved[0]
        recall, recall_current, recall_all, recall_current_all = recall_solved

        return EntityUtilities(
            candidates=candidates,
            assembled=assembled,
            precision=precision,
            recall=recall,
            recall_current=recall_current,
            recall_all=recall_all,
            recall_current_all=recall_current_all,
        )
