"""Configuration of the L2Q learner.

Default values follow the paper's experimental settings (Sect. VI-A):
``alpha = 0.15``, ``lambda = 10``, maximum query length ``L = 3``, top-5
results per query, and the seed-recall parameter ``r0`` chosen by validation
(0.3 is the value our validation sweep selects most often; see
``benchmarks/test_ablation_parameters.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass
class L2QConfig:
    """All tunable parameters of the L2Q pipeline."""

    # -- Utility inference (Sect. III) ---------------------------------------
    alpha: float = 0.15
    max_solver_iterations: int = 100
    solver_tolerance: float = 1e-6

    # -- Query enumeration (Sect. VI-A) ---------------------------------------
    max_query_length: int = 3
    min_query_word_length: int = 2
    max_entity_candidates: int = 800

    # -- Domain phase (Sect. IV-B) ----------------------------------------------
    domain_min_query_pages: int = 2
    max_domain_queries: int = 4000
    domain_entity_support_fraction: float = 0.10
    min_domain_entity_support: int = 2

    # -- Entity phase (Sect. IV-C) -------------------------------------------------
    adaptation_lambda: float = 10.0
    use_retrieval_weights: bool = False

    # -- Context awareness (Sect. V) --------------------------------------------------
    seed_recall_r0: float = 0.3

    # -- Dedup-aware selection (page-level novelty) -----------------------------------
    #: Weight of the page-level redundancy discount applied to collective
    #: utilities: 0.0 disables dedup awareness entirely (the paper's exact
    #: behaviour, pinned by golden tests), 1.0 discounts a fully redundant
    #: query's collective utility to zero.
    dedup_penalty: float = 0.0
    #: w-shingle window used to fingerprint page content.
    dedup_shingle_size: int = 3
    #: MinHash signature length (must be divisible by ``dedup_bands``).
    dedup_num_hashes: int = 64
    #: LSH bands over the signature (rows per band = hashes / bands).
    dedup_bands: int = 32
    #: Estimated Jaccard at or above which a page counts as a near duplicate.
    dedup_similarity_threshold: float = 0.5
    #: Seed of the MinHash coefficients — corpus- and run-independent so
    #: signatures are comparable across sessions and backends.
    dedup_hash_seed: int = 0x5EED

    # -- Search engine (Sect. VI-A) ------------------------------------------------------
    top_k: int = 5
    ranker: str = "dirichlet"
    dirichlet_mu: float = 100.0

    # -- Harvesting loop ---------------------------------------------------------------------
    num_queries: int = 3
    random_seed: int = 1729

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range parameters."""
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.max_query_length < 1:
            raise ValueError("max_query_length must be >= 1")
        if self.adaptation_lambda <= 0:
            raise ValueError("adaptation_lambda must be positive")
        if not 0.0 < self.seed_recall_r0 < 1.0:
            raise ValueError("seed_recall_r0 must be in (0, 1)")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        if not 0.0 <= self.domain_entity_support_fraction <= 1.0:
            raise ValueError("domain_entity_support_fraction must be in [0, 1]")
        if not 0.0 <= self.dedup_penalty <= 1.0:
            raise ValueError("dedup_penalty must be in [0, 1]")
        if self.dedup_shingle_size < 1:
            raise ValueError("dedup_shingle_size must be >= 1")
        if self.dedup_num_hashes < 1 or self.dedup_bands < 1:
            raise ValueError("dedup_num_hashes and dedup_bands must be >= 1")
        if self.dedup_num_hashes % self.dedup_bands:
            raise ValueError("dedup_num_hashes must be divisible by dedup_bands")
        if not 0.0 < self.dedup_similarity_threshold <= 1.0:
            raise ValueError("dedup_similarity_threshold must be in (0, 1]")

    def domain_support_threshold(self, num_domain_entities: int) -> int:
        """Minimum number of domain entities a query must co-occur with.

        The paper restricts domain-expanded candidates to queries occurring
        with at least 50 of its ~500 domain entities; we scale the threshold
        with the (usually smaller) domain size.
        """
        scaled = int(round(self.domain_entity_support_fraction * num_domain_entities))
        return max(self.min_domain_entity_support, scaled)
