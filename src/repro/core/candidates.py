"""Incrementally-maintained candidate-query statistics.

Every selection strategy needs the pool of candidate queries enumerable from
the pages gathered so far.  Re-running
:meth:`~repro.core.queries.QueryEnumerator.enumerate_from_pages` over the
*full* working set on every ``select()`` call makes selection cost grow
superlinearly with harvested pages — the exact failure mode the paper's
efficiency experiment (Fig. 14) warns against.  :class:`CandidateStatistics`
instead folds only *new* pages' n-grams into a persistent
:class:`~repro.core.queries.QueryStatistics` as they arrive, so each
iteration's selection cost is amortised O(new pages).

The structure is owned by :class:`~repro.core.session.HarvestSession`, which
folds pages in :meth:`~repro.core.session.HarvestSession.add_pages`; the
statistics are therefore always in sync with ``session.current_pages``.
Because pages are folded in gathering order, the resulting statistics are
bit-for-bit identical to a from-scratch enumeration over the working set.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.core.queries import Query, QueryEnumerator, QueryStatistics
from repro.corpus.document import Page


class CandidateStatistics:
    """Candidate-query pool kept in sync with a growing page working set."""

    def __init__(self, enumerator: QueryEnumerator) -> None:
        self.enumerator = enumerator
        self.statistics = QueryStatistics()
        self._page_ids: Set[str] = set()
        self._observed_words: Set[str] = set()
        self._sorted_queries: Optional[List[Query]] = None

    # -- Folding -----------------------------------------------------------
    def add_page(self, page: Page) -> bool:
        """Fold one page's n-grams into the pool; returns False if already seen."""
        if page.page_id in self._page_ids:
            return False
        self._page_ids.add(page.page_id)
        self._observed_words.update(page.token_set)
        counts = self.enumerator.enumerate_from_page(page)
        for query, count in counts.items():
            self.statistics.record(query, page.page_id, page.entity_id, count)
        if counts:
            self._sorted_queries = None
        return True

    def add_pages(self, pages: Sequence[Page]) -> int:
        """Fold several pages; returns how many were genuinely new."""
        return sum(1 for page in pages if self.add_page(page))

    # -- Queries -----------------------------------------------------------
    def queries(self) -> List[Query]:
        """All candidate queries, in first-occurrence order."""
        return self.statistics.queries()

    def sorted_queries(self) -> List[Query]:
        """All candidate queries, lexicographically sorted.

        The sort is cached between page additions; a copy is returned so
        callers can never corrupt the cache in place.
        """
        if self._sorted_queries is None:
            self._sorted_queries = sorted(self.statistics.occurrences)
        return list(self._sorted_queries)

    def unfired_sorted_queries(self, fired: Set[Query]) -> List[Query]:
        """Sorted candidates not yet fired."""
        if not fired:
            return self.sorted_queries()
        return [q for q in self.sorted_queries() if q not in fired]

    # -- Introspection -----------------------------------------------------
    @property
    def num_pages(self) -> int:
        """How many distinct pages have been folded in."""
        return len(self._page_ids)

    @property
    def num_queries(self) -> int:
        """How many distinct candidate queries the pool currently holds."""
        return len(self.statistics.occurrences)

    @property
    def observed_words(self) -> Set[str]:
        """Union of all tokens seen on folded pages (grounding filter input)."""
        return self._observed_words

    def has_page(self, page_id: str) -> bool:
        """Whether a page has already been folded into the pool."""
        return page_id in self._page_ids
