"""Step-driven harvesting: the loop of Fig. 1 split at the fetch boundary.

:class:`~repro.core.harvester.Harvester` historically ran the whole
harvesting loop inline — select a query, call ``engine.search`` *in
process*, fold the results in, repeat.  That shape hard-codes the search
engine as a free, instant oracle and makes it impossible to put anything
between selection and retrieval: a rate limiter, a latency simulator, an
async scheduler, a real HTTP fetcher.

:class:`HarvestStepper` is the same loop turned inside out, as a resumable
state machine that never fetches anything itself:

* :meth:`next_action` returns what the session needs next —
  :class:`SeedFetch` (iteration 0, the entity's seed query),
  :class:`QueryFetch` (one selected query; selection runs *inside* this
  call and is timed), or :class:`Done` (budget exhausted, or the selector
  returned ``None``).  The call is idempotent: until the pending fetch is
  fed, repeated calls return the same action.
* :meth:`feed` ingests the responses for the pending action — ranked
  results plus the materialised pages — advances selection state
  (``add_pages`` / ``record_query`` / ``selector.observe``) and appends
  the :class:`~repro.core.harvester.IterationRecord`.

Who performs the fetch between those two calls is the caller's business: a
synchronous driver with an in-process client reproduces the historical
behaviour bit-for-bit (same engine calls, same order, same RNG stream),
while the async serving runner awaits at the fetch boundary so one
session's I/O overlaps another session's CPU-bound selection.

The stepper owns the run's :class:`~repro.search.engine.RunFetchAccounting`
(exposed as :attr:`accounting`); fetch executors must charge every engine
request — including failed attempts that will be retried — against it, so
the fetch budget stays honest regardless of the transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.core.queries import Query
from repro.core.selection import QuerySelector
from repro.core.session import HarvestSession
from repro.utils.timing import Stopwatch

#: Request-key component identifying the seed fetch (iteration 0).
SEED_FETCH_LABEL = "seed"


@dataclass(frozen=True)
class SeedFetch:
    """Iteration 0: fire the entity's seed query ``q(0)``."""

    entity_id: str
    #: Stable identity of this request, ``(entity, aspect, selector,
    #: "seed")`` — simulated clients derive per-request randomness from it
    #: so latency/failure draws never depend on scheduling interleavings.
    request_key: Tuple[str, ...]


@dataclass(frozen=True)
class QueryFetch:
    """One selected query to fire (iteration ``index + 1`` of the loop)."""

    entity_id: str
    query: Query
    index: int
    request_key: Tuple[str, ...]


@dataclass(frozen=True)
class Done:
    """The session is complete; no further fetches will be requested."""


#: The single terminal action instance.
DONE = Done()

#: What :meth:`HarvestStepper.next_action` may return.
Action = Union[SeedFetch, QueryFetch, Done]


class StepperProtocolError(RuntimeError):
    """``feed`` called with no pending fetch, or after :class:`Done`."""


class HarvestStepper:
    """Resumable state machine for one harvesting run.

    Built by :meth:`Harvester.stepper <repro.core.harvester.Harvester.stepper>`
    (which wires up the session, result skeleton and accounting); drive it
    with::

        action = stepper.next_action()
        while not isinstance(action, Done):
            outcome = client.fetch(action, accounting=stepper.accounting)
            stepper.feed(outcome.results, outcome.pages,
                         client_seconds=outcome.latency_seconds)
            action = stepper.next_action()
        result = stepper.result

    State advances only in :meth:`feed`; :meth:`next_action` is pure apart
    from running (and timing) the selector when a new query is needed.
    """

    def __init__(self, session: HarvestSession, selector: QuerySelector,
                 result, accounting, budget: int,
                 simulated_fetch_seconds_per_page: float,
                 rec=None) -> None:
        self.session = session
        self.selector = selector
        self.result = result
        self.accounting = accounting
        self.budget = budget
        self.per_page_cost = simulated_fetch_seconds_per_page
        self._rec = rec
        self._entity_id = session.entity.entity_id
        self._key_base = (self._entity_id, session.aspect, selector.name)
        self._index = 0
        self._done = False
        self._pending: Optional[Action] = SeedFetch(
            entity_id=self._entity_id,
            request_key=self._key_base + (SEED_FETCH_LABEL,))
        self._pending_selection_seconds = 0.0

    @property
    def done(self) -> bool:
        """Whether the run is complete (no fetch pending or forthcoming)."""
        return self._done

    # -- Protocol --------------------------------------------------------------
    def next_action(self) -> Action:
        """The next fetch the session needs, or :data:`DONE`.

        Selecting the next query happens here (and is timed as the
        iteration's ``selection_seconds``); the selector runs exactly once
        per iteration — repeated calls return the cached pending action.
        """
        if self._pending is not None:
            return self._pending
        if self._done:
            return DONE
        with Stopwatch() as select_watch:
            query = self.selector.select(self.session)
        if query is None:
            self._done = True
            return DONE
        self._pending_selection_seconds = select_watch.elapsed
        self._pending = QueryFetch(
            entity_id=self._entity_id,
            query=query,
            index=self._index,
            request_key=self._key_base + (str(self._index),))
        return self._pending

    def feed(self, results: Sequence, pages: Sequence,
             client_seconds: float = 0.0) -> None:
        """Ingest the responses for the pending fetch and advance.

        ``results`` are the engine's ranked
        :class:`~repro.search.engine.SearchResult` payloads, ``pages`` the
        materialised pages (empty on a fully failed fetch — the iteration
        is still recorded and the budget still consumed).
        ``client_seconds`` is the *measured* client-side latency of the
        fetch (retries and backoff included); it is recorded separately
        from the paper's simulated per-page cost and never mixes with it.
        """
        action = self._pending
        if action is None or isinstance(action, Done):
            raise StepperProtocolError(
                "feed() called with no pending fetch (call next_action() "
                "first, and stop once it returns Done)")
        self._pending = None
        if isinstance(action, SeedFetch):
            self._feed_seed(results, pages, client_seconds)
        else:
            self._feed_query(action, results, pages, client_seconds)

    # -- Ingestion ------------------------------------------------------------
    def _feed_seed(self, results, pages, client_seconds: float) -> None:
        # Local import: harvester imports this module at class-definition
        # time, so the timing-label constants resolve lazily.
        from repro.core.harvester import CLIENT_TIME, FETCH_TIME

        self.session.add_pages(pages)
        self.result.seed_page_ids = [r.page_id for r in results]
        self.result.timing.add(FETCH_TIME, len(results) * self.per_page_cost)
        if client_seconds:
            self.result.timing.add(CLIENT_TIME, client_seconds)
        self.selector.prepare(self.session)
        if self.budget <= 0:
            self._done = True

    def _feed_query(self, action: QueryFetch, results, pages,
                    client_seconds: float) -> None:
        from repro.core.harvester import (
            CLIENT_TIME,
            FETCH_TIME,
            SELECTION_TIME,
            IterationRecord,
        )

        new_pages = self.session.add_pages(pages)
        self.session.record_query(action.query)
        simulated = len(results) * self.per_page_cost
        if self._rec is not None:
            self._rec.record(SELECTION_TIME, self._pending_selection_seconds,
                             selector=self.selector.name)
        self.result.timing.add(SELECTION_TIME, self._pending_selection_seconds)
        self.result.timing.add(FETCH_TIME, simulated)
        if client_seconds:
            self.result.timing.add(CLIENT_TIME, client_seconds)
        self.result.iterations.append(IterationRecord(
            index=action.index,
            query=action.query,
            result_page_ids=tuple(r.page_id for r in results),
            new_page_ids=tuple(p.page_id for p in new_pages),
            selection_seconds=self._pending_selection_seconds,
            simulated_fetch_seconds=simulated,
            client_seconds=client_seconds,
        ))
        self.selector.observe(self.session, action.query, new_pages)
        self._index += 1
        if self._index >= self.budget:
            self._done = True
