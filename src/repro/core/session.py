"""The mutable state of one harvesting run (one entity, one aspect).

A :class:`HarvestSession` is created by the harvester and passed to the
query selector on every iteration; it bundles everything a selection
strategy may legitimately look at: the current result pages, the
incrementally-maintained candidate-query statistics, the past queries, the
learner-visible relevance function, the domain model and the configuration.
Ground-truth relevance is *not* part of the session — only the oracle/ideal
selector receives it, explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.aspects.relevance import RelevanceFunction
from repro.core.candidates import CandidateStatistics
from repro.core.config import L2QConfig
from repro.core.domain_phase import DomainModel
from repro.core.queries import Query, QueryEnumerator
from repro.corpus.corpus import Corpus
from repro.corpus.document import Entity, Page
from repro.dedup.novelty import NoveltyEstimator
from repro.search.engine import SearchEngine
from repro.utils.rng import SeededRandom


@dataclass
class HarvestSession:
    """Mutable state shared between the harvester and the query selector."""

    corpus: Corpus
    engine: SearchEngine
    entity: Entity
    aspect: str
    relevance: RelevanceFunction
    config: L2QConfig
    rng: SeededRandom
    domain_model: Optional[DomainModel] = None
    current_pages: List[Page] = field(default_factory=list)
    past_queries: List[Query] = field(default_factory=list)
    fired_queries: Set[Query] = field(default_factory=set)

    def __post_init__(self) -> None:
        enumerator = QueryEnumerator(
            max_length=self.config.max_query_length,
            min_word_length=self.config.min_query_word_length,
            exclude_words=self.entity.excluded_words(),
        )
        #: Candidate queries enumerated so far, kept in sync with
        #: ``current_pages``: every page added through :meth:`add_pages` is
        #: folded in exactly once, so selectors never re-enumerate the full
        #: working set (amortised O(new pages) per iteration).  The
        #: statistics double as the session's page-membership record.
        self.candidates = CandidateStatistics(enumerator)
        self.candidates.add_pages(self.current_pages)
        #: Incremental MinHash index over gathered pages, maintained under
        #: the same O(new pages) contract as ``candidates``.  Only built
        #: when the dedup penalty is active: with ``dedup_penalty == 0.0``
        #: the session does not fingerprint a single page, so the historical
        #: behaviour is reproduced bit-for-bit at zero extra cost.
        self.novelty: Optional[NoveltyEstimator] = None
        if self.config.dedup_penalty > 0.0:
            self.novelty = NoveltyEstimator(corpus=self.corpus,
                                            engine=self.engine,
                                            entity=self.entity,
                                            config=self.config)
            self.novelty.observe_pages(self.current_pages)

    # -- Page management -----------------------------------------------------
    def add_pages(self, pages: Sequence[Page]) -> List[Page]:
        """Add newly retrieved pages, returning only the genuinely new ones."""
        added: List[Page] = []
        for page in pages:
            if self.candidates.add_page(page):
                self.current_pages.append(page)
                added.append(page)
        if self.novelty is not None:
            self.novelty.observe_pages(added)
        return added

    def expected_novelty(self, query: Query) -> float:
        """Expected fraction of new content among the query's posting pages.

        1.0 when dedup awareness is disabled (no index, no penalty), so
        callers can apply the discount unconditionally.
        """
        if self.novelty is None:
            return 1.0
        return self.novelty.expected_novelty(query, self.has_page)

    def expected_novelties(self, queries: Sequence[Query]) -> List[float]:
        """Batched :meth:`expected_novelty` over a candidate set.

        One selection step scores every candidate; gathering the novelty
        estimates in a single pass keeps the vectorized selection kernel
        free of per-candidate session round-trips (the estimator's
        page-novelty cache makes each additional query O(its postings)).
        """
        if self.novelty is None:
            return [1.0] * len(queries)
        return [self.novelty.expected_novelty(query, self.has_page)
                for query in queries]

    def has_page(self, page_id: str) -> bool:
        """Whether a page has already been gathered in this session."""
        return self.candidates.has_page(page_id)

    def current_page_ids(self) -> List[str]:
        """Ids of all gathered pages, in gathering order."""
        return [page.page_id for page in self.current_pages]

    def relevant_current_pages(self) -> List[Page]:
        """Current pages the (learner-visible) relevance function accepts."""
        return [page for page in self.current_pages if self.relevance(page) == 1]

    # -- Query management --------------------------------------------------------
    def record_query(self, query: Query) -> None:
        """Record a fired query into the context ``Phi``."""
        self.past_queries.append(query)
        self.fired_queries.add(query)

    def is_fired(self, query: Query) -> bool:
        """Whether ``query`` has already been fired in this session."""
        return query in self.fired_queries
