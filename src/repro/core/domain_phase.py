"""The domain phase of domain-aware L2Q (Sect. IV-B).

Executed once per (domain, aspect): from the pages of the peer (domain)
entities, enumerate queries and templates, build the domain reinforcement
graph, and infer the utilities of templates (and queries).  The resulting
:class:`DomainModel` is what the per-iteration entity phase consumes — the
template utilities become extra regularization, and the frequently-occurring
domain queries expand the target entity's candidate pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.aspects.relevance import AllRelevant, RelevanceFunction
from repro.core.config import L2QConfig
from repro.core.queries import Query, QueryEnumerator, prune_queries
from repro.core.templates import Template
from repro.core.utility import (
    GraphAssembler,
    precision_page_regularization,
    recall_page_regularization,
)
from repro.corpus.corpus import Corpus
from repro.corpus.document import Page


@dataclass
class DomainModel:
    """Knowledge learnt once from the domain entities for one target aspect."""

    domain: str
    aspect: str
    num_domain_entities: int
    num_domain_pages: int
    template_precision: Dict[Template, float] = field(default_factory=dict)
    template_recall: Dict[Template, float] = field(default_factory=dict)
    template_recall_all: Dict[Template, float] = field(default_factory=dict)
    query_precision: Dict[Query, float] = field(default_factory=dict)
    query_recall: Dict[Query, float] = field(default_factory=dict)
    query_entity_support: Dict[Query, int] = field(default_factory=dict)
    frequent_queries: List[Query] = field(default_factory=list)

    def best_queries_by_precision(self, limit: int = 0) -> List[Query]:
        """Domain queries ranked by learnt precision (for the +q ablation)."""
        ranked = sorted(self.query_precision, key=lambda q: (-self.query_precision[q], q))
        return ranked[:limit] if limit > 0 else ranked

    def best_queries_by_recall(self, limit: int = 0) -> List[Query]:
        """Domain queries ranked by learnt recall (for the +q ablation)."""
        ranked = sorted(self.query_recall, key=lambda q: (-self.query_recall[q], q))
        return ranked[:limit] if limit > 0 else ranked

    def is_empty(self) -> bool:
        """True when the model was learnt from zero domain entities."""
        return self.num_domain_entities == 0 or not self.query_precision


class DomainPhase:
    """Learns a :class:`DomainModel` from a domain corpus."""

    def __init__(self, domain_corpus: Corpus, config: Optional[L2QConfig] = None) -> None:
        self.corpus = domain_corpus
        self.config = config if config is not None else L2QConfig()
        self.config.validate()
        self._assembler = GraphAssembler(domain_corpus.type_system, self.config)

    # -- Public API ----------------------------------------------------------
    def learn(self, aspect: str, relevance: RelevanceFunction) -> DomainModel:
        """Run the domain phase for one aspect.

        Parameters
        ----------
        aspect:
            The target aspect name (used only for bookkeeping).
        relevance:
            The relevance function ``Y`` (normally the pre-trained aspect
            classifier) evaluated on domain pages to derive regularization.
        """
        pages = list(self.corpus.iter_pages())
        num_entities = self.corpus.num_entities()
        model = DomainModel(
            domain=self.corpus.domain,
            aspect=aspect,
            num_domain_entities=num_entities,
            num_domain_pages=len(pages),
        )
        if not pages:
            return model

        queries, statistics = self._enumerate_domain_queries(pages)
        if not queries:
            return model

        assembled = self._assembler.assemble(pages, queries, use_templates=True)
        solver = assembled.solver(self.config)

        precision = solver.solve_precision(
            page_regularization=precision_page_regularization(pages, relevance))
        recall = solver.solve_recall(
            page_regularization=recall_page_regularization(pages, relevance))
        recall_all = solver.solve_recall(
            page_regularization=recall_page_regularization(pages, AllRelevant()))

        model.template_precision = precision.template_utilities()
        model.template_recall = recall.template_utilities()
        model.template_recall_all = recall_all.template_utilities()
        model.query_precision = precision.query_utilities()
        model.query_recall = recall.query_utilities()
        model.query_entity_support = {
            query: statistics.entity_support(query) for query in queries
        }

        threshold = self.config.domain_support_threshold(num_entities)
        model.frequent_queries = sorted(
            (q for q in queries if statistics.entity_support(q) >= threshold),
            key=lambda q: (-statistics.entity_support(q), q),
        )
        return model

    # -- Internals -------------------------------------------------------------
    def _enumerate_domain_queries(self, pages: Sequence[Page]):
        enumerator = QueryEnumerator(
            max_length=self.config.max_query_length,
            min_word_length=self.config.min_query_word_length,
        )
        statistics = enumerator.enumerate_from_pages(pages)
        queries = prune_queries(
            statistics,
            min_page_frequency=self.config.domain_min_query_pages,
            max_queries=self.config.max_domain_queries,
        )
        return queries, statistics


def learn_domain_models(domain_corpus: Corpus, relevance_by_aspect: Dict[str, RelevanceFunction],
                        config: Optional[L2QConfig] = None) -> Dict[str, DomainModel]:
    """Convenience: learn one :class:`DomainModel` per aspect."""
    phase = DomainPhase(domain_corpus, config)
    return {aspect: phase.learn(aspect, relevance)
            for aspect, relevance in relevance_by_aspect.items()}
