"""Inverted index with collection statistics.

The index is the storage layer beneath the retrieval models
(:mod:`repro.search.language_model`, :mod:`repro.search.bm25`).  Documents
are arbitrary token sequences keyed by a string id; in this project they are
the pages of one entity (the seed query scopes retrieval to a single
entity's page universe, see :mod:`repro.search.engine`).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple


class InvertedIndex:
    """A simple in-memory inverted index."""

    def __init__(self) -> None:
        self._postings: Dict[str, Dict[str, int]] = defaultdict(dict)
        self._doc_lengths: Dict[str, int] = {}
        self._collection_frequency: Counter = Counter()
        self._total_tokens = 0

    # -- Construction ------------------------------------------------------
    def add_document(self, doc_id: str, tokens: Sequence[str]) -> None:
        """Index one document.  Re-adding an existing id raises ``ValueError``."""
        if doc_id in self._doc_lengths:
            raise ValueError(f"document {doc_id!r} already indexed")
        counts = Counter(tokens)
        self._doc_lengths[doc_id] = len(tokens)
        self._total_tokens += len(tokens)
        for term, tf in counts.items():
            self._postings[term][doc_id] = tf
            self._collection_frequency[term] += tf

    @classmethod
    def from_documents(cls, documents: Mapping[str, Sequence[str]]) -> "InvertedIndex":
        """Build an index from a ``{doc_id: tokens}`` mapping."""
        index = cls()
        for doc_id in sorted(documents):
            index.add_document(doc_id, documents[doc_id])
        return index

    # -- Document statistics ---------------------------------------------------
    @property
    def num_documents(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    @property
    def total_tokens(self) -> int:
        """Total number of tokens across all documents."""
        return self._total_tokens

    @property
    def average_document_length(self) -> float:
        """Mean document length in tokens (0.0 for an empty index)."""
        if not self._doc_lengths:
            return 0.0
        return self._total_tokens / len(self._doc_lengths)

    def document_ids(self) -> List[str]:
        """All indexed document ids, sorted."""
        return sorted(self._doc_lengths)

    def document_length(self, doc_id: str) -> int:
        """Length of one document (raises ``KeyError`` if unknown)."""
        return self._doc_lengths[doc_id]

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    # -- Term statistics -----------------------------------------------------------
    def term_frequency(self, term: str, doc_id: str) -> int:
        """Frequency of ``term`` in ``doc_id`` (0 if absent)."""
        return self._postings.get(term, {}).get(doc_id, 0)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, {}))

    def collection_frequency(self, term: str) -> int:
        """Total occurrences of ``term`` in the collection."""
        return self._collection_frequency.get(term, 0)

    def collection_probability(self, term: str) -> float:
        """Maximum-likelihood collection probability of ``term``."""
        if self._total_tokens == 0:
            return 0.0
        return self._collection_frequency.get(term, 0) / self._total_tokens

    def postings(self, term: str) -> Dict[str, int]:
        """Return a copy of the postings for ``term`` (``{doc_id: tf}``)."""
        return dict(self._postings.get(term, {}))

    def matching_documents(self, terms: Iterable[str],
                           require_all: bool = False) -> Set[str]:
        """Documents containing any (or all) of ``terms``."""
        term_list = list(terms)
        if not term_list:
            return set()
        sets = [set(self._postings.get(term, {})) for term in term_list]
        if require_all:
            result = sets[0]
            for other in sets[1:]:
                result &= other
            return result
        result = set()
        for other in sets:
            result |= other
        return result

    def vocabulary(self) -> List[str]:
        """All indexed terms, sorted."""
        return sorted(self._postings)
