"""Inverted index with collection statistics, plus cheap scoped views.

The index is the storage layer beneath the retrieval models
(:mod:`repro.search.language_model`, :mod:`repro.search.bm25`).  Documents
are arbitrary token sequences keyed by a string id; in this project they are
web pages.

The search engine indexes the *whole* corpus exactly once and then serves
each entity through an :class:`IndexView` restricted to that entity's page
universe (the seed query scopes retrieval to a single entity, see
:mod:`repro.search.engine`).  A view exposes the same statistics interface
as a from-scratch per-entity :class:`InvertedIndex` — term frequencies,
document/collection frequencies and collection probabilities are all
computed over the view's documents only — but shares the underlying
postings, so N entities cost one tokenization/counting pass instead of N.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import sparse


class TermDocumentMatrix:
    """An immutable CSR snapshot of an index: tf matrix plus statistic vectors.

    The matrix layer beneath the batched ranker kernels
    (:meth:`repro.search.language_model.DirichletLanguageModel.rank_many`,
    :meth:`repro.search.bm25.BM25Ranker.rank_many`): a ``docs × terms``
    term-frequency matrix with rows in sorted-document-id order and columns
    in sorted-term order, alongside the cached document-length and
    collection-frequency vectors every retrieval model needs.  Term
    frequencies are exact integers stored as float64, so all derived
    statistics match the scalar dictionary lookups bit for bit.
    """

    __slots__ = ("doc_ids", "terms", "matrix", "matrix_csc", "doc_lengths",
                 "collection_frequencies", "total_tokens", "_doc_positions",
                 "_term_positions")

    def __init__(self, doc_ids: Sequence[str], terms: Sequence[str],
                 matrix: sparse.csr_matrix, doc_lengths: np.ndarray,
                 collection_frequencies: np.ndarray, total_tokens: int) -> None:
        self.doc_ids: Tuple[str, ...] = tuple(doc_ids)
        self.terms: Tuple[str, ...] = tuple(terms)
        self.matrix = matrix.tocsr()
        # Column access (per query term) is the kernel's hot operation.
        self.matrix_csc = self.matrix.tocsc()
        self.doc_lengths = np.asarray(doc_lengths, dtype=np.float64)
        self.collection_frequencies = np.asarray(collection_frequencies,
                                                 dtype=np.float64)
        self.total_tokens = int(total_tokens)
        self._doc_positions = {doc_id: i for i, doc_id in enumerate(self.doc_ids)}
        self._term_positions = {term: j for j, term in enumerate(self.terms)}

    @property
    def num_documents(self) -> int:
        """Number of document rows."""
        return len(self.doc_ids)

    @property
    def num_terms(self) -> int:
        """Number of term columns."""
        return len(self.terms)

    def doc_position(self, doc_id: str) -> Optional[int]:
        """Row of ``doc_id``, or ``None`` if absent."""
        return self._doc_positions.get(doc_id)

    def term_position(self, term: str) -> Optional[int]:
        """Column of ``term``, or ``None`` if absent."""
        return self._term_positions.get(term)

    def term_column(self, column: int) -> Tuple[np.ndarray, np.ndarray]:
        """The sparse column ``column`` as ``(row_indices, tf_values)``."""
        csc = self.matrix_csc
        start, end = csc.indptr[column], csc.indptr[column + 1]
        return csc.indices[start:end], csc.data[start:end]

    def collection_probability(self, term: str) -> float:
        """Maximum-likelihood collection probability of ``term``."""
        if self.total_tokens == 0:
            return 0.0
        position = self._term_positions.get(term)
        if position is None:
            return 0.0
        return float(self.collection_frequencies[position]) / self.total_tokens


class InvertedIndex:
    """A simple in-memory inverted index."""

    def __init__(self) -> None:
        self._postings: Dict[str, Dict[str, int]] = defaultdict(dict)
        self._doc_lengths: Dict[str, int] = {}
        self._collection_frequency: Counter = Counter()
        self._total_tokens = 0
        self._matrix: Optional[TermDocumentMatrix] = None

    # -- Construction ------------------------------------------------------
    def add_document(self, doc_id: str, tokens: Sequence[str]) -> None:
        """Index one document.  Re-adding an existing id raises ``ValueError``."""
        if doc_id in self._doc_lengths:
            raise ValueError(f"document {doc_id!r} already indexed")
        counts = Counter(tokens)
        self._doc_lengths[doc_id] = len(tokens)
        self._total_tokens += len(tokens)
        for term, tf in counts.items():
            self._postings[term][doc_id] = tf
            self._collection_frequency[term] += tf
        # The CSR snapshot is a pure function of the postings; incremental
        # updates invalidate it and the next access rebuilds lazily.
        self._matrix = None

    @classmethod
    def from_documents(cls, documents: Mapping[str, Sequence[str]]) -> "InvertedIndex":
        """Build an index from a ``{doc_id: tokens}`` mapping."""
        index = cls()
        for doc_id in sorted(documents):
            index.add_document(doc_id, documents[doc_id])
        return index

    # -- Document statistics ---------------------------------------------------
    @property
    def num_documents(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    @property
    def total_tokens(self) -> int:
        """Total number of tokens across all documents."""
        return self._total_tokens

    @property
    def average_document_length(self) -> float:
        """Mean document length in tokens (0.0 for an empty index)."""
        if not self._doc_lengths:
            return 0.0
        return self._total_tokens / len(self._doc_lengths)

    def document_ids(self) -> List[str]:
        """All indexed document ids, sorted."""
        return sorted(self._doc_lengths)

    def document_length(self, doc_id: str) -> int:
        """Length of one document (raises ``KeyError`` if unknown)."""
        return self._doc_lengths[doc_id]

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    # -- Term statistics -----------------------------------------------------------
    def term_frequency(self, term: str, doc_id: str) -> int:
        """Frequency of ``term`` in ``doc_id`` (0 if absent)."""
        return self._postings.get(term, {}).get(doc_id, 0)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, {}))

    def collection_frequency(self, term: str) -> int:
        """Total occurrences of ``term`` in the collection."""
        return self._collection_frequency.get(term, 0)

    def collection_probability(self, term: str) -> float:
        """Maximum-likelihood collection probability of ``term``."""
        if self._total_tokens == 0:
            return 0.0
        return self._collection_frequency.get(term, 0) / self._total_tokens

    def postings(self, term: str) -> Dict[str, int]:
        """Return a copy of the postings for ``term`` (``{doc_id: tf}``)."""
        return dict(self._postings.get(term, {}))

    def matching_documents(self, terms: Iterable[str],
                           require_all: bool = False) -> Set[str]:
        """Documents containing any (or all) of ``terms``."""
        term_list = list(terms)
        if not term_list:
            return set()
        sets = [set(self._postings.get(term, {})) for term in term_list]
        if require_all:
            result = sets[0]
            for other in sets[1:]:
                result &= other
            return result
        result = set()
        for other in sets:
            result |= other
        return result

    def vocabulary(self) -> List[str]:
        """All indexed terms, sorted."""
        return sorted(self._postings)

    # -- Matrix view -------------------------------------------------------------
    def term_document_matrix(self) -> TermDocumentMatrix:
        """The (lazily built, cached) CSR snapshot of this index.

        Invalidated by :meth:`add_document`; because indexed term
        frequencies are immutable, a returned snapshot stays valid for the
        documents it covers even after the index grows.
        """
        if self._matrix is None:
            self._matrix = self._build_matrix()
        return self._matrix

    def _build_matrix(self) -> TermDocumentMatrix:
        doc_ids = sorted(self._doc_lengths)
        terms = sorted(self._postings)
        doc_positions = {doc_id: i for i, doc_id in enumerate(doc_ids)}
        rows: List[int] = []
        cols: List[int] = []
        data: List[int] = []
        for column, term in enumerate(terms):
            for doc_id, tf in self._postings[term].items():
                rows.append(doc_positions[doc_id])
                cols.append(column)
                data.append(tf)
        matrix = sparse.csr_matrix(
            (np.asarray(data, dtype=np.float64),
             (np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64))),
            shape=(len(doc_ids), len(terms)))
        doc_lengths = np.asarray([self._doc_lengths[d] for d in doc_ids],
                                 dtype=np.float64)
        collection = np.asarray([self._collection_frequency[t] for t in terms],
                                dtype=np.float64)
        return TermDocumentMatrix(doc_ids, terms, matrix, doc_lengths,
                                  collection, self._total_tokens)

    # -- Scoped views -----------------------------------------------------------
    def view(self, doc_ids: Iterable[str]) -> "IndexView":
        """A view of this index restricted to ``doc_ids``."""
        return IndexView(self, doc_ids)


class _SnapshotPostings(Mapping):
    """Lazy ``{term: {doc_id: tf}}`` postings over a CSR snapshot.

    Backs :class:`AttachedInvertedIndex`: per-term postings dicts are
    materialised from the snapshot's CSC columns on first access and cached.
    Column row-indices are sorted, so each dict's insertion order is sorted
    doc-id order — the same order :meth:`InvertedIndex.add_document` produces
    when documents arrive in sorted id order, keeping every iteration-order-
    sensitive consumer bit-identical to the rebuilt index.
    """

    __slots__ = ("_snapshot", "_cache")

    def __init__(self, snapshot: TermDocumentMatrix) -> None:
        self._snapshot = snapshot
        self._cache: Dict[str, Dict[str, int]] = {}

    def __getitem__(self, term: str) -> Dict[str, int]:
        postings = self._cache.get(term)
        if postings is None:
            column = self._snapshot.term_position(term)
            if column is None:
                raise KeyError(term)
            rows, values = self._snapshot.term_column(column)
            doc_ids = self._snapshot.doc_ids
            postings = {doc_ids[row]: int(tf)
                        for row, tf in zip(rows, values)}
            self._cache[term] = postings
        return postings

    def __iter__(self):
        return iter(self._snapshot.terms)

    def __len__(self) -> int:
        return self._snapshot.num_terms

    def __contains__(self, term: object) -> bool:
        return self._snapshot.term_position(term) is not None  # type: ignore[arg-type]


class AttachedInvertedIndex(InvertedIndex):
    """A read-only :class:`InvertedIndex` reconstructed from a CSR snapshot.

    The attach-construction path of the shared corpus store: instead of
    re-tokenising and re-counting every document, the index adopts a
    published :class:`TermDocumentMatrix` (typically zero-copy views over a
    shared-memory segment) as its matrix snapshot and serves the dictionary
    interface through lazy per-term postings.  All statistics — term/
    document/collection frequencies, probabilities, views — are bit-for-bit
    identical to an index built by adding the same documents in sorted id
    order, because the snapshot is a pure function of exactly that build.
    """

    def __init__(self, snapshot: TermDocumentMatrix) -> None:
        self._postings = _SnapshotPostings(snapshot)  # type: ignore[assignment]
        self._doc_lengths = {doc_id: int(length)
                             for doc_id, length
                             in zip(snapshot.doc_ids, snapshot.doc_lengths)}
        self._collection_frequency = Counter(
            {term: int(cf) for term, cf
             in zip(snapshot.terms, snapshot.collection_frequencies)})
        self._total_tokens = snapshot.total_tokens
        self._matrix = snapshot

    def add_document(self, doc_id: str, tokens: Sequence[str]) -> None:
        raise TypeError("attached indexes are read-only; "
                        "rebuild from the corpus to extend")


class IndexView:
    """A read-only restriction of an :class:`InvertedIndex` to a document subset.

    All statistics (document lengths, term/document/collection frequencies,
    collection probabilities) are reported as if only the view's documents
    had been indexed, so retrieval models ranking through a view behave
    identically to ranking over a from-scratch index of those documents.
    Per-term restricted postings are materialised lazily and cached, so a
    view costs O(1) to create and only pays for the terms actually queried.
    """

    def __init__(self, parent: InvertedIndex, doc_ids: Iterable[str]) -> None:
        self._parent = parent
        ids = set(doc_ids)
        missing = [d for d in ids if d not in parent]
        if missing:
            raise KeyError(f"documents not in parent index: {sorted(missing)[:3]!r}")
        self._doc_ids: FrozenSet[str] = frozenset(ids)
        self._total_tokens = sum(parent.document_length(d) for d in self._doc_ids)
        # term -> (restricted postings, their tf sum); the sum is cached so
        # collection_frequency stays O(1) on the ranker's innermost loop.
        self._postings_cache: Dict[str, Tuple[Dict[str, int], int]] = {}
        # The document subset is frozen and indexed term frequencies are
        # immutable, so a built snapshot never goes stale.
        self._matrix: Optional[TermDocumentMatrix] = None

    #: Shared sentinel for terms absent from a view, so caching a miss costs
    #: one dict slot instead of a fresh empty dict per term.
    _EMPTY_STATS: Tuple[Dict[str, int], int] = ({}, 0)

    def _restricted_stats(self, term: str,
                          cache_empty: bool = True) -> Tuple[Dict[str, int], int]:
        cached = self._postings_cache.get(term)
        if cached is None:
            postings = {doc_id: tf
                        for doc_id, tf in self._parent._postings.get(term, {}).items()
                        if doc_id in self._doc_ids}
            cached = (postings, sum(postings.values())) if postings else self._EMPTY_STATS
            # Misses are cached too (rankers probe absent query terms once per
            # scored document), except during vocabulary() sweeps, which would
            # otherwise pin one cache key per corpus term.
            if postings or cache_empty:
                self._postings_cache[term] = cached
        return cached

    def _restricted(self, term: str) -> Dict[str, int]:
        return self._restricted_stats(term)[0]

    # -- Document statistics ---------------------------------------------------
    @property
    def num_documents(self) -> int:
        """Number of documents in the view."""
        return len(self._doc_ids)

    @property
    def total_tokens(self) -> int:
        """Total number of tokens across the view's documents."""
        return self._total_tokens

    @property
    def average_document_length(self) -> float:
        """Mean document length in tokens (0.0 for an empty view)."""
        if not self._doc_ids:
            return 0.0
        return self._total_tokens / len(self._doc_ids)

    def document_ids(self) -> List[str]:
        """The view's document ids, sorted."""
        return sorted(self._doc_ids)

    def document_length(self, doc_id: str) -> int:
        """Length of one document (raises ``KeyError`` if outside the view)."""
        if doc_id not in self._doc_ids:
            raise KeyError(doc_id)
        return self._parent.document_length(doc_id)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_ids

    # -- Term statistics -----------------------------------------------------------
    def term_frequency(self, term: str, doc_id: str) -> int:
        """Frequency of ``term`` in ``doc_id`` (0 if absent or outside the view)."""
        if doc_id not in self._doc_ids:
            return 0
        return self._parent.term_frequency(term, doc_id)

    def document_frequency(self, term: str) -> int:
        """Number of view documents containing ``term``."""
        return len(self._restricted(term))

    def collection_frequency(self, term: str) -> int:
        """Total occurrences of ``term`` within the view."""
        return self._restricted_stats(term)[1]

    def collection_probability(self, term: str) -> float:
        """Maximum-likelihood probability of ``term`` within the view."""
        if self._total_tokens == 0:
            return 0.0
        return self.collection_frequency(term) / self._total_tokens

    def postings(self, term: str) -> Dict[str, int]:
        """Return a copy of the view-restricted postings for ``term``."""
        return dict(self._restricted(term))

    def matching_documents(self, terms: Iterable[str],
                           require_all: bool = False) -> Set[str]:
        """View documents containing any (or all) of ``terms``."""
        term_list = list(terms)
        if not term_list:
            return set()
        sets = [set(self._restricted(term)) for term in term_list]
        result = set(sets[0])
        for other in sets[1:]:
            if require_all:
                result &= other
            else:
                result |= other
        return result

    def vocabulary(self) -> List[str]:
        """Terms occurring in the view's documents, sorted."""
        return sorted(term for term in self._parent.vocabulary()
                      if self._restricted_stats(term, cache_empty=False)[0])

    # -- Matrix view -------------------------------------------------------------
    def term_document_matrix(self) -> TermDocumentMatrix:
        """The (lazily built, cached) CSR snapshot of this view.

        Built by row-slicing the parent's snapshot to the view's documents
        and dropping terms that do not occur in them, so N entity views
        share one corpus-wide matrix build and each keeps only its own
        compact vocabulary.
        """
        if self._matrix is None:
            parent = self._parent.term_document_matrix()
            doc_ids = self.document_ids()
            rows = np.asarray([parent.doc_position(d) for d in doc_ids],
                              dtype=np.int64)
            if rows.size:
                restricted = parent.matrix[rows]
            else:
                restricted = sparse.csr_matrix((0, parent.num_terms))
            frequencies = np.asarray(restricted.sum(axis=0)).ravel()
            columns = np.flatnonzero(frequencies)
            matrix = restricted[:, columns].tocsr()
            terms = [parent.terms[c] for c in columns]
            doc_lengths = (parent.doc_lengths[rows] if rows.size
                           else np.zeros(0, dtype=np.float64))
            self._matrix = TermDocumentMatrix(
                doc_ids, terms, matrix, doc_lengths,
                frequencies[columns], self._total_tokens)
        return self._matrix
