"""Pluggable retrieval models: the :class:`Ranker` protocol and its registry.

The search engine used to hardcode an ``if`` ladder over the two built-in
retrieval models (Dirichlet language model and BM25).  This module replaces
that with a registry so new models can be plugged in without touching
:mod:`repro.search.engine`::

    from repro.search.rankers import register_ranker

    @register_ranker("tf")
    def _make_tf(index, **params):
        return PlainTermFrequencyRanker(index, **params)

    engine = SearchEngine(corpus, ranker="tf")

A ranker factory receives the (entity-scoped) index plus keyword parameters
and must return an object satisfying :class:`Ranker`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, Sequence, Tuple, runtime_checkable

from repro.search.bm25 import BM25Ranker
from repro.search.language_model import DirichletLanguageModel
from repro.utils.registry import NamedRegistry

RANKER_DIRICHLET = "dirichlet"
RANKER_BM25 = "bm25"


@runtime_checkable
class Ranker(Protocol):
    """What the search engine requires of a retrieval model."""

    def rank(self, query: Sequence[str], top_k: int = 0,
             require_match: bool = True) -> List[Tuple[str, float]]:
        """Return ``(doc_id, score)`` pairs, best first."""
        ...

    def retrieval_scores(self, query: Sequence[str]) -> Dict[str, float]:
        """Normalised retrieval scores over matching documents (sum to 1)."""
        ...


RankerFactory = Callable[..., Ranker]

_REGISTRY = NamedRegistry("ranker")
#: The underlying name → factory map (exposed for tests' cleanup pops).
_RANKERS: Dict[str, RankerFactory] = _REGISTRY.factories


def register_ranker(name: str, factory: RankerFactory = None, *,
                    overwrite: bool = False):
    """Register a ranker factory under ``name``.

    Usable both as a decorator (``@register_ranker("tf")``) and as a plain
    call (``register_ranker("tf", factory)``).  Registering an
    already-taken name raises :class:`ValueError` unless ``overwrite=True``
    — two plugins silently fighting over one name would make engine
    behaviour depend on import order.  Pass ``overwrite=True`` in
    interactive sessions that re-run registration cells.
    """
    return _REGISTRY.register(name, factory, overwrite=overwrite)


def make_ranker(name: str, index, **params) -> Ranker:
    """Instantiate the registered ranker ``name`` over ``index``."""
    return _REGISTRY.make(name, index, **params)


def ranker_names() -> List[str]:
    """Names of all registered rankers, sorted."""
    return _REGISTRY.names()


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered ranker."""
    return name in _REGISTRY


# -- Built-in models ---------------------------------------------------------

@register_ranker(RANKER_DIRICHLET)
def _make_dirichlet(index, mu: float = 100.0, **_ignored) -> DirichletLanguageModel:
    return DirichletLanguageModel(index, mu=mu)


@register_ranker(RANKER_BM25)
def _make_bm25(index, k1: float = 1.2, b: float = 0.75, **_ignored) -> BM25Ranker:
    return BM25Ranker(index, k1=k1, b=b)
