"""Okapi BM25 ranking — an alternative ranker used for ablation.

The paper uses a Dirichlet-smoothed language model as its offline search
engine; BM25 is provided so that the sensitivity of L2Q to the underlying
retrieval model can be measured (``benchmarks/test_ablation_ranker.py``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.search.index import InvertedIndex


class BM25Ranker:
    """Okapi BM25 with the standard ``k1``/``b`` parameterisation."""

    def __init__(self, index: InvertedIndex, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= b <= 1.0:
            raise ValueError("b must be in [0, 1]")
        self.index = index
        self.k1 = float(k1)
        self.b = float(b)

    def idf(self, term: str) -> float:
        """Robertson-Sparck-Jones IDF (floored at 0)."""
        n = self.index.num_documents
        df = self.index.document_frequency(term)
        if n == 0 or df == 0:
            return 0.0
        return max(0.0, math.log((n - df + 0.5) / (df + 0.5) + 1.0))

    def score(self, query: Sequence[str], doc_id: str) -> float:
        """BM25 score of ``doc_id`` for ``query``."""
        if doc_id not in self.index:
            raise KeyError(f"unknown document {doc_id!r}")
        avgdl = self.index.average_document_length or 1.0
        dl = self.index.document_length(doc_id)
        total = 0.0
        for term in query:
            tf = self.index.term_frequency(term, doc_id)
            if tf == 0:
                continue
            idf = self.idf(term)
            denominator = tf + self.k1 * (1.0 - self.b + self.b * dl / avgdl)
            total += idf * tf * (self.k1 + 1.0) / denominator
        return total

    def rank(self, query: Sequence[str], top_k: int = 0,
             require_match: bool = True) -> List[Tuple[str, float]]:
        """Rank documents for ``query`` (same contract as the language model)."""
        query = [t for t in query if t]
        if not query:
            return []
        if require_match:
            candidates = sorted(self.index.matching_documents(query))
        else:
            candidates = self.index.document_ids()
        scored = [(doc_id, self.score(query, doc_id)) for doc_id in candidates]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        if top_k > 0:
            scored = scored[:top_k]
        return scored

    def retrieval_scores(self, query: Sequence[str]) -> Dict[str, float]:
        """Normalised retrieval scores over matching documents (sum to 1)."""
        ranked = self.rank(query, top_k=0, require_match=True)
        if not ranked:
            return {}
        total = sum(max(score, 0.0) for _, score in ranked)
        if total <= 0:
            return {doc_id: 1.0 / len(ranked) for doc_id, _ in ranked}
        return {doc_id: max(score, 0.0) / total for doc_id, score in ranked}
