"""Okapi BM25 ranking — an alternative ranker used for ablation.

The paper uses a Dirichlet-smoothed language model as its offline search
engine; BM25 is provided so that the sensitivity of L2Q to the underlying
retrieval model can be measured (``benchmarks/test_ablation_ranker.py``).

Like the language model, ranking runs through a vectorized kernel over the
index's CSR term–document matrix: per query term, one sparse column gather
and a handful of array operations score every candidate document at once.
The scalar :meth:`BM25Ranker.score` is the reference implementation and the
kernel matches it bit for bit (per-term contributions are accumulated in
query order; IDF values are computed with scalar ``math.log``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.search.index import InvertedIndex, TermDocumentMatrix


class BM25Ranker:
    """Okapi BM25 with the standard ``k1``/``b`` parameterisation."""

    def __init__(self, index: InvertedIndex, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= b <= 1.0:
            raise ValueError("b must be in [0, 1]")
        self.index = index
        self.k1 = float(k1)
        self.b = float(b)

    def idf(self, term: str) -> float:
        """Robertson-Sparck-Jones IDF (floored at 0)."""
        n = self.index.num_documents
        df = self.index.document_frequency(term)
        if n == 0 or df == 0:
            return 0.0
        return max(0.0, math.log((n - df + 0.5) / (df + 0.5) + 1.0))

    def score(self, query: Sequence[str], doc_id: str) -> float:
        """BM25 score of ``doc_id`` for ``query``.

        Scalar reference implementation of the vectorized
        :meth:`score_rows` kernel (which must match it bit for bit).
        """
        if doc_id not in self.index:
            raise KeyError(f"unknown document {doc_id!r}")
        avgdl = self.index.average_document_length or 1.0
        dl = self.index.document_length(doc_id)
        total = 0.0
        for term in query:
            tf = self.index.term_frequency(term, doc_id)
            if tf == 0:
                continue
            idf = self.idf(term)
            denominator = tf + self.k1 * (1.0 - self.b + self.b * dl / avgdl)
            total += idf * tf * (self.k1 + 1.0) / denominator
        return total

    # -- Vectorized kernel -------------------------------------------------------
    def score_rows(self, query: Sequence[str], matrix: TermDocumentMatrix,
                   rows: np.ndarray) -> np.ndarray:
        """Scores of ``query`` for the document rows ``rows`` of ``matrix``.

        ``rows`` are row positions into ``matrix`` in strictly increasing
        order.  Per-term contributions are accumulated in query order and
        zero-tf terms contribute an exact ``0.0`` (the scalar path skips
        them; adding zero to the non-negative partial sums is an identity),
        so the result equals the scalar :meth:`score` bit for bit.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.zeros(0, dtype=np.float64)
        num_docs = matrix.num_documents
        avgdl = (matrix.total_tokens / num_docs if num_docs else 0.0) or 1.0
        doc_lengths = matrix.doc_lengths[rows]
        total = np.zeros(rows.size, dtype=np.float64)
        for term in query:
            column = matrix.term_position(term)
            if column is None:
                continue
            col_rows, col_values = matrix.term_column(column)
            if col_rows.size == 0:
                continue
            df = col_rows.size
            idf = max(0.0, math.log((num_docs - df + 0.5) / (df + 0.5) + 1.0)) \
                if num_docs else 0.0
            tf = np.zeros(rows.size, dtype=np.float64)
            positions = np.searchsorted(rows, col_rows)
            positions = np.minimum(positions, rows.size - 1)
            inside = rows[positions] == col_rows
            tf[positions[inside]] = col_values[inside]
            denominator = tf + self.k1 * (1.0 - self.b + self.b * doc_lengths / avgdl)
            # Zero-tf rows may have a zero denominator (b = 1 and an empty
            # document); the scalar path skips them, so mask them to an
            # exact 0.0 — adding zero to the non-negative total is exact.
            with np.errstate(divide="ignore", invalid="ignore"):
                contribution = idf * tf * (self.k1 + 1.0) / denominator
            total = total + np.where(tf > 0.0, contribution, 0.0)
        return total

    def _matrix(self) -> Optional[TermDocumentMatrix]:
        builder = getattr(self.index, "term_document_matrix", None)
        return builder() if builder is not None else None

    def _candidate_rows(self, query: Sequence[str], matrix: TermDocumentMatrix,
                        require_match: bool) -> np.ndarray:
        if not require_match:
            return np.arange(matrix.num_documents, dtype=np.int64)
        columns = {matrix.term_position(term) for term in query}
        columns.discard(None)
        if not columns:
            return np.zeros(0, dtype=np.int64)
        gathered = [matrix.term_column(column)[0] for column in sorted(columns)]
        return np.unique(np.concatenate(gathered)).astype(np.int64)

    def rank(self, query: Sequence[str], top_k: int = 0,
             require_match: bool = True) -> List[Tuple[str, float]]:
        """Rank documents for ``query`` (same contract as the language model)."""
        query = [t for t in query if t]
        if not query:
            return []
        matrix = self._matrix()
        if matrix is None:
            return self._rank_scalar(query, top_k, require_match)
        rows = self._candidate_rows(query, matrix, require_match)
        scores = self.score_rows(query, matrix, rows)
        scored = [(matrix.doc_ids[row], float(score))
                  for row, score in zip(rows.tolist(), scores.tolist())]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        if top_k > 0:
            scored = scored[:top_k]
        return scored

    def rank_many(self, queries: Sequence[Sequence[str]], top_k: int = 0,
                  require_match: bool = True) -> List[List[Tuple[str, float]]]:
        """Rank a batch of queries (one CSR snapshot, shared across queries)."""
        return [self.rank(query, top_k=top_k, require_match=require_match)
                for query in queries]

    def score_matrix(self, queries: Sequence[Sequence[str]]
                     ) -> Tuple[np.ndarray, Tuple[str, ...]]:
        """All (query, document) scores as a dense ``queries × docs`` array.

        Returns the score matrix together with the document-id order of its
        columns; row ``i`` equals the scalar scores of ``queries[i]``.
        """
        matrix = self._matrix()
        if matrix is None:
            raise TypeError("index does not expose a term-document matrix")
        rows = np.arange(matrix.num_documents, dtype=np.int64)
        scores = np.vstack([
            self.score_rows([t for t in query if t], matrix, rows)
            for query in queries
        ]) if queries else np.zeros((0, matrix.num_documents))
        return scores, matrix.doc_ids

    def _rank_scalar(self, query: Sequence[str], top_k: int,
                     require_match: bool) -> List[Tuple[str, float]]:
        """Reference ranking path for indexes without a matrix view."""
        if require_match:
            candidates = sorted(self.index.matching_documents(query))
        else:
            candidates = self.index.document_ids()
        scored = [(doc_id, self.score(query, doc_id)) for doc_id in candidates]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        if top_k > 0:
            scored = scored[:top_k]
        return scored

    def retrieval_scores(self, query: Sequence[str]) -> Dict[str, float]:
        """Normalised retrieval scores over matching documents (sum to 1)."""
        ranked = self.rank(query, top_k=0, require_match=True)
        if not ranked:
            return {}
        total = sum(max(score, 0.0) for _, score in ranked)
        if total <= 0:
            return {doc_id: 1.0 / len(ranked) for doc_id, _ in ranked}
        return {doc_id: max(score, 0.0) / total for doc_id, score in ranked}
