"""The search-engine facade used by the harvesting loop.

The paper's workflow (Fig. 1) fires each selected query against a search
engine with the entity's seed query appended, so that every result page is
about the target entity.  Over the offline corpus this is equivalent to
ranking only within the target entity's page universe, which is exactly what
:class:`SearchEngine` does: it maintains one per-entity index and ranks the
entity's pages with a Dirichlet-smoothed language model (or BM25), returning
the top-``k`` results (``k = 5`` in the paper).

The engine also keeps *fetch accounting*: how many queries were fired and
how many result pages were downloaded, plus a simulated per-page fetch cost
so that the efficiency experiment (Fig. 14) can contrast selection time with
fetch time without actually sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.corpus import Corpus
from repro.corpus.document import Page
from repro.search.bm25 import BM25Ranker
from repro.search.index import InvertedIndex
from repro.search.language_model import DirichletLanguageModel

RANKER_DIRICHLET = "dirichlet"
RANKER_BM25 = "bm25"


@dataclass(frozen=True)
class SearchResult:
    """One ranked result: a page and its retrieval score."""

    page_id: str
    score: float


@dataclass
class FetchStatistics:
    """Accounting of the (simulated) cost of talking to the search engine."""

    queries_fired: int = 0
    pages_fetched: int = 0
    simulated_fetch_seconds: float = 0.0
    queries_by_entity: Dict[str, int] = field(default_factory=dict)

    def record(self, entity_id: str, num_results: int, per_page_cost: float) -> None:
        """Record one fired query and its fetched results."""
        self.queries_fired += 1
        self.pages_fetched += num_results
        self.simulated_fetch_seconds += per_page_cost * num_results
        self.queries_by_entity[entity_id] = self.queries_by_entity.get(entity_id, 0) + 1


class SearchEngine:
    """Entity-scoped top-k retrieval over an offline corpus."""

    def __init__(self, corpus: Corpus, ranker: str = RANKER_DIRICHLET,
                 top_k: int = 5, mu: float = 100.0,
                 bm25_k1: float = 1.2, bm25_b: float = 0.75,
                 simulated_fetch_seconds_per_page: float = 2.5) -> None:
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if ranker not in (RANKER_DIRICHLET, RANKER_BM25):
            raise ValueError(f"unknown ranker {ranker!r}")
        self.corpus = corpus
        self.ranker_name = ranker
        self.top_k = top_k
        self.mu = mu
        self.bm25_k1 = bm25_k1
        self.bm25_b = bm25_b
        self.simulated_fetch_seconds_per_page = simulated_fetch_seconds_per_page
        self.fetch_statistics = FetchStatistics()
        self._entity_indexes: Dict[str, InvertedIndex] = {}
        self._entity_rankers: Dict[str, object] = {}

    # -- Index management -----------------------------------------------------
    def _index_for(self, entity_id: str) -> InvertedIndex:
        index = self._entity_indexes.get(entity_id)
        if index is None:
            pages = self.corpus.pages_of(entity_id)
            if not pages:
                raise KeyError(f"entity {entity_id!r} has no pages in the corpus")
            index = InvertedIndex.from_documents({p.page_id: p.tokens for p in pages})
            self._entity_indexes[entity_id] = index
        return index

    def _ranker_for(self, entity_id: str):
        ranker = self._entity_rankers.get(entity_id)
        if ranker is None:
            index = self._index_for(entity_id)
            if self.ranker_name == RANKER_DIRICHLET:
                ranker = DirichletLanguageModel(index, mu=self.mu)
            else:
                ranker = BM25Ranker(index, k1=self.bm25_k1, b=self.bm25_b)
            self._entity_rankers[entity_id] = ranker
        return ranker

    # -- Retrieval --------------------------------------------------------------
    def search(self, entity_id: str, query: Sequence[str],
               top_k: Optional[int] = None, record_fetch: bool = True) -> List[SearchResult]:
        """Fire ``query`` for ``entity_id`` and return the top results.

        The entity's seed query is conceptually appended to ``query``; over
        the offline corpus that reduces to scoping the ranking to the
        entity's own pages, which is how the paper's experiments operate.
        """
        ranker = self._ranker_for(entity_id)
        k = top_k if top_k is not None else self.top_k
        ranked = ranker.rank(list(query), top_k=k, require_match=True)
        results = [SearchResult(page_id=page_id, score=score) for page_id, score in ranked]
        if record_fetch:
            self.fetch_statistics.record(entity_id, len(results),
                                         self.simulated_fetch_seconds_per_page)
        return results

    def fetch_pages(self, results: Sequence[SearchResult]) -> List[Page]:
        """Materialise result pages from the corpus."""
        return [self.corpus.get_page(r.page_id) for r in results]

    def retrievable_pages(self, entity_id: str, query: Sequence[str],
                          top_k: Optional[int] = None) -> List[str]:
        """Page ids ``query`` would retrieve, without recording a fetch.

        Used by the oracle/ideal strategy, which is allowed to peek at the
        engine (the paper's ideal solution feeds every candidate query to the
        search engine to compute the upper bound).
        """
        return [r.page_id for r in self.search(entity_id, query, top_k=top_k,
                                               record_fetch=False)]

    def seed_results(self, entity_id: str, top_k: Optional[int] = None) -> List[SearchResult]:
        """Fire the entity's seed query ``q(0)`` and return the results.

        The seed query uniquely identifies the entity; within the entity's
        own page universe it behaves as a broad entity query, so we rank the
        entity's pages by the seed terms (name and seed attributes), which
        naturally favours hub-like pages mentioning the entity's name.
        """
        entity = self.corpus.get_entity(entity_id)
        results = self.search(entity_id, list(entity.seed_query), top_k=top_k)
        if results:
            return results
        # Degenerate corner: the seed terms may not literally occur on any
        # page; fall back to the entity's name tokens, then to arbitrary pages.
        results = self.search(entity_id, list(entity.name_tokens), top_k=top_k)
        if results:
            return results
        pages = self.corpus.pages_of(entity_id)[: (top_k or self.top_k)]
        self.fetch_statistics.record(entity_id, len(pages),
                                     self.simulated_fetch_seconds_per_page)
        return [SearchResult(page_id=p.page_id, score=0.0) for p in pages]

    # -- Introspection --------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Clear the fetch accounting (used between experiment runs)."""
        self.fetch_statistics = FetchStatistics()

    def entity_index(self, entity_id: str) -> InvertedIndex:
        """Expose the per-entity index (useful for tests and baselines)."""
        return self._index_for(entity_id)
