"""The search-engine facade used by the harvesting loop.

The paper's workflow (Fig. 1) fires each selected query against a search
engine with the entity's seed query appended, so that every result page is
about the target entity.  Over the offline corpus this is equivalent to
ranking only within the target entity's page universe, which is exactly what
:class:`SearchEngine` does: it indexes the whole corpus *once* (see
``index_builds``), serves every entity through a cheap
:class:`~repro.search.index.IndexView` scoped to that entity's pages, and
ranks with a pluggable retrieval model resolved from the ranker registry
(:mod:`repro.search.rankers`; ``dirichlet`` and ``bm25`` are built in,
``k = 5`` results per query in the paper).

Repeated identical queries — common across harvesting runs that share an
engine, e.g. the ideal selector probing its candidate pool for every test
entity — are answered from an LRU result cache keyed by
``(entity_id, query, top_k)``.

The engine also keeps *fetch accounting*: how many queries were fired and
how many result pages were downloaded, plus a simulated per-page fetch cost
so that the efficiency experiment (Fig. 14) can contrast selection time with
fetch time without actually sleeping.  Cache hits and misses are counted in
the same :class:`FetchStatistics` structure.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.corpus import Corpus
from repro.corpus.document import Page
from repro.search.index import IndexView, InvertedIndex
from repro.search.rankers import (
    RANKER_BM25,
    RANKER_DIRICHLET,
    Ranker,
    is_registered,
    make_ranker,
    ranker_names,
)


@dataclass(frozen=True)
class SearchResult:
    """One ranked result: a page and its retrieval score."""

    page_id: str
    score: float


@dataclass
class FetchStatistics:
    """Accounting of the (simulated) cost of talking to the search engine."""

    queries_fired: int = 0
    pages_fetched: int = 0
    simulated_fetch_seconds: float = 0.0
    queries_by_entity: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    def record(self, entity_id: str, num_results: int, per_page_cost: float) -> None:
        """Record one fired query and its fetched results."""
        self.queries_fired += 1
        self.pages_fetched += num_results
        self.simulated_fetch_seconds += per_page_cost * num_results
        self.queries_by_entity[entity_id] = self.queries_by_entity.get(entity_id, 0) + 1

    def record_cache(self, hit: bool) -> None:
        """Record one result-cache lookup."""
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of ranking requests served from the result cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """A plain-JSON summary (used by benchmark matrices)."""
        return {
            "queries_fired": self.queries_fired,
            "pages_fetched": self.pages_fetched,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


#: Result-cache key: ``(entity_id, query tuple, top_k)``.
CacheKey = Tuple[str, Tuple[str, ...], int]


@dataclass
class RunFetchAccounting:
    """Per-harvest-run fetch accounting (picklable, travels with results).

    The shared engine's :class:`FetchStatistics` live in whichever process
    ran the harvest — a sharded process backend throws them away with the
    worker.  Each harvesting run therefore keeps its *own* account of what
    it asked the engine for: fired queries, fetched pages, simulated fetch
    cost, and the ordered result-cache keys it looked up.  Orchestrators
    merge these per-run accounts with :func:`merge_run_accounting`, which
    is identical on every backend because it only reads result payloads.

    Cache hits are deliberately *not* classified here: whether a lookup
    hits depends on what ran before it on the same engine, which is a
    scheduling fact.  Recording the keys and replaying them at merge time
    yields a deterministic batch-level classification instead.
    """

    queries_fired: int = 0
    pages_fetched: int = 0
    simulated_fetch_seconds: float = 0.0
    queries_by_entity: Dict[str, int] = field(default_factory=dict)
    cache_keys: List[CacheKey] = field(default_factory=list)

    def record(self, entity_id: str, num_results: int, per_page_cost: float) -> None:
        """Record one fired query and its fetched results."""
        self.queries_fired += 1
        self.pages_fetched += num_results
        self.simulated_fetch_seconds += per_page_cost * num_results
        self.queries_by_entity[entity_id] = self.queries_by_entity.get(entity_id, 0) + 1

    def record_lookup(self, key: CacheKey) -> None:
        """Record one result-cache key lookup (hit/miss decided at merge)."""
        self.cache_keys.append(key)


def merge_run_accounting(accountings: Sequence[Optional[RunFetchAccounting]]
                         ) -> FetchStatistics:
    """Fold per-run accounts into one batch-level :class:`FetchStatistics`.

    Counters are summed; cache lookups are *replayed* in run order — a key
    already seen earlier in the merged stream counts as a hit.  For a fresh
    serial engine (no eviction) this reproduces the engine's own hit/miss
    accounting exactly, and because it reads only result payloads, every
    backend — serial, thread or sharded process — merges to the same
    statistics.  ``None`` entries (results from before accounting existed)
    are skipped.
    """
    stats = FetchStatistics()
    seen: set = set()
    for accounting in accountings:
        if accounting is None:
            continue
        stats.queries_fired += accounting.queries_fired
        stats.pages_fetched += accounting.pages_fetched
        stats.simulated_fetch_seconds += accounting.simulated_fetch_seconds
        for entity_id, count in accounting.queries_by_entity.items():
            stats.queries_by_entity[entity_id] = (
                stats.queries_by_entity.get(entity_id, 0) + count)
        for key in accounting.cache_keys:
            stats.record_cache(hit=key in seen)
            seen.add(key)
    return stats


class SearchEngine:
    """Entity-scoped top-k retrieval over an offline corpus.

    Parameters
    ----------
    corpus:
        The offline corpus.
    ranker:
        Name of a registered retrieval model (see
        :func:`repro.search.rankers.ranker_names`).
    top_k:
        Default number of results per query.
    mu / bm25_k1 / bm25_b:
        Convenience parameters for the two built-in rankers.
    ranker_params:
        Extra keyword parameters passed to the ranker factory; overrides the
        convenience parameters and is the way to configure custom rankers.
    result_cache_size:
        Capacity of the LRU result cache (0 disables caching).
    """

    def __init__(self, corpus: Corpus, ranker: str = RANKER_DIRICHLET,
                 top_k: int = 5, mu: float = 100.0,
                 bm25_k1: float = 1.2, bm25_b: float = 0.75,
                 simulated_fetch_seconds_per_page: float = 2.5,
                 ranker_params: Optional[Dict[str, object]] = None,
                 result_cache_size: int = 4096) -> None:
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if not is_registered(ranker):
            raise ValueError(f"unknown ranker {ranker!r}; available: {ranker_names()}")
        if result_cache_size < 0:
            raise ValueError("result_cache_size must be non-negative")
        self.corpus = corpus
        self.ranker_name = ranker
        self.top_k = top_k
        self.mu = mu
        self.bm25_k1 = bm25_k1
        self.bm25_b = bm25_b
        self.simulated_fetch_seconds_per_page = simulated_fetch_seconds_per_page
        self.ranker_params = self._default_ranker_params(ranker)
        if ranker_params:
            self.ranker_params.update(ranker_params)
        self.result_cache_size = result_cache_size
        self.fetch_statistics = FetchStatistics()
        #: Number of full corpus indexing passes performed (1 after first use).
        self.index_builds = 0
        #: Number of times the corpus supplied a pre-built shared index
        #: (store-backed corpora; see :meth:`shared_index`).
        self.index_attaches = 0
        self._shared_index: Optional[InvertedIndex] = None
        self._entity_views: Dict[str, IndexView] = {}
        self._entity_rankers: Dict[str, Ranker] = {}
        self._result_cache: "OrderedDict[Tuple[str, Tuple[str, ...], int], Tuple[SearchResult, ...]]" = OrderedDict()
        # One engine may serve several concurrent harvesting runs
        # (Harvester.harvest_many); the lock guards the caches and counters.
        self._lock = threading.Lock()

    # -- Pickling (process-backend support) -----------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Ship configuration and corpus; leave runtime state behind.

        The lock cannot cross a process boundary and shipping the index,
        views, rankers and result cache would defeat the point of cheap
        spec-style payloads — each worker process constructs its own on
        first use.  ``index_builds`` restarts at 0 accordingly, and the
        engine-side fetch counters restart too: fetch accounting crosses
        process boundaries through the per-run
        :class:`RunFetchAccounting` attached to each harvest result
        (merged orchestrator-side by :func:`merge_run_accounting`), never
        through the engine object.
        """
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_shared_index"] = None
        state["_entity_views"] = {}
        state["_entity_rankers"] = {}
        state["_result_cache"] = OrderedDict()
        state["index_builds"] = 0
        state["index_attaches"] = 0
        state["fetch_statistics"] = FetchStatistics()
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _default_ranker_params(self, ranker: str) -> Dict[str, object]:
        if ranker == RANKER_DIRICHLET:
            return {"mu": self.mu}
        if ranker == RANKER_BM25:
            return {"k1": self.bm25_k1, "b": self.bm25_b}
        return {}

    # -- Index management -----------------------------------------------------
    def shared_index(self) -> InvertedIndex:
        """The corpus-wide index, built on first use (one pass per corpus).

        A corpus that already carries its index — a store-backed corpus
        attached from a published segment exposes it via
        ``shared_index_supplier`` — is adopted as-is instead of re-indexed:
        the supplied index is bit-identical to the one this build loop
        produces (the store writer added the same documents in the same
        sorted order), and ``index_attaches`` (not ``index_builds``) counts
        the adoption.
        """
        with self._lock:
            if self._shared_index is None:
                supplier = getattr(self.corpus, "shared_index_supplier", None)
                if supplier is not None:
                    self._shared_index = supplier()
                    self.index_attaches += 1
                else:
                    index = InvertedIndex()
                    for page in sorted(self.corpus.iter_pages(), key=lambda p: p.page_id):
                        index.add_document(page.page_id, page.tokens)
                    self._shared_index = index
                    self.index_builds += 1
            return self._shared_index

    def _index_for(self, entity_id: str) -> IndexView:
        with self._lock:
            view = self._entity_views.get(entity_id)
        if view is not None:
            return view
        pages = self.corpus.pages_of(entity_id)
        if not pages:
            raise KeyError(f"entity {entity_id!r} has no pages in the corpus")
        view = self.shared_index().view(p.page_id for p in pages)
        with self._lock:
            return self._entity_views.setdefault(entity_id, view)

    def _ranker_for(self, entity_id: str) -> Ranker:
        with self._lock:
            ranker = self._entity_rankers.get(entity_id)
        if ranker is not None:
            return ranker
        index = self._index_for(entity_id)
        ranker = make_ranker(self.ranker_name, index, **self.ranker_params)
        with self._lock:
            return self._entity_rankers.setdefault(entity_id, ranker)

    # -- Retrieval --------------------------------------------------------------
    def search(self, entity_id: str, query: Sequence[str],
               top_k: Optional[int] = None, record_fetch: bool = True,
               accounting: Optional[RunFetchAccounting] = None) -> List[SearchResult]:
        """Fire ``query`` for ``entity_id`` and return the top results.

        The entity's seed query is conceptually appended to ``query``; over
        the offline corpus that reduces to scoping the ranking to the
        entity's own pages, which is how the paper's experiments operate.

        ``accounting``, when given, receives a per-caller copy of the fetch
        and cache-lookup records (the engine's own statistics are recorded
        regardless) — the harvesting loop passes its run's account here so
        distributed backends can ship it home with the result.
        """
        k = top_k if top_k is not None else self.top_k
        results = self._ranked_results(entity_id, tuple(query), k,
                                       accounting=accounting)
        if record_fetch:
            with self._lock:
                self.fetch_statistics.record(entity_id, len(results),
                                             self.simulated_fetch_seconds_per_page)
            if accounting is not None:
                accounting.record(entity_id, len(results),
                                  self.simulated_fetch_seconds_per_page)
        return list(results)

    def _ranked_results(self, entity_id: str, query: Tuple[str, ...], k: int,
                        accounting: Optional[RunFetchAccounting] = None
                        ) -> Tuple[SearchResult, ...]:
        key = (entity_id, query, k)
        if self.result_cache_size:
            if accounting is not None:
                accounting.record_lookup(key)
            with self._lock:
                cached = self._result_cache.get(key)
                if cached is not None:
                    self._result_cache.move_to_end(key)
                self.fetch_statistics.record_cache(hit=cached is not None)
            if cached is not None:
                return cached
        ranker = self._ranker_for(entity_id)
        ranked = ranker.rank(list(query), top_k=k, require_match=True)
        results = tuple(SearchResult(page_id=page_id, score=score)
                        for page_id, score in ranked)
        if self.result_cache_size:
            with self._lock:
                self._result_cache[key] = results
                self._result_cache.move_to_end(key)
                while len(self._result_cache) > self.result_cache_size:
                    self._result_cache.popitem(last=False)
        return results

    def fetch_pages(self, results: Sequence[SearchResult]) -> List[Page]:
        """Materialise result pages from the corpus."""
        return [self.corpus.get_page(r.page_id) for r in results]

    def retrievable_pages(self, entity_id: str, query: Sequence[str],
                          top_k: Optional[int] = None) -> List[str]:
        """Page ids ``query`` would retrieve, without recording a fetch.

        Used by the oracle/ideal strategy, which is allowed to peek at the
        engine (the paper's ideal solution feeds every candidate query to the
        search engine to compute the upper bound).
        """
        return [r.page_id for r in self.search(entity_id, query, top_k=top_k,
                                               record_fetch=False)]

    def seed_results(self, entity_id: str, top_k: Optional[int] = None,
                     accounting: Optional[RunFetchAccounting] = None
                     ) -> List[SearchResult]:
        """Fire the entity's seed query ``q(0)`` and return the results.

        The seed query uniquely identifies the entity; within the entity's
        own page universe it behaves as a broad entity query, so we rank the
        entity's pages by the seed terms (name and seed attributes), which
        naturally favours hub-like pages mentioning the entity's name.
        """
        entity = self.corpus.get_entity(entity_id)
        results = self.search(entity_id, list(entity.seed_query), top_k=top_k,
                              accounting=accounting)
        if results:
            return results
        # Degenerate corner: the seed terms may not literally occur on any
        # page; fall back to the entity's name tokens, then to arbitrary pages.
        results = self.search(entity_id, list(entity.name_tokens), top_k=top_k,
                              accounting=accounting)
        if results:
            return results
        pages = self.corpus.pages_of(entity_id)[: (top_k or self.top_k)]
        with self._lock:
            self.fetch_statistics.record(entity_id, len(pages),
                                         self.simulated_fetch_seconds_per_page)
        if accounting is not None:
            accounting.record(entity_id, len(pages),
                              self.simulated_fetch_seconds_per_page)
        return [SearchResult(page_id=p.page_id, score=0.0) for p in pages]

    # -- Introspection --------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Clear the fetch accounting (used between experiment runs)."""
        with self._lock:
            self.fetch_statistics = FetchStatistics()

    def entity_index(self, entity_id: str) -> IndexView:
        """The entity's scoped view of the shared corpus index.

        The view exposes the full statistics interface of a from-scratch
        per-entity :class:`InvertedIndex` (useful for tests and baselines).
        """
        return self._index_for(entity_id)
