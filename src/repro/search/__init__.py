"""Search-engine substrate: shared inverted index, entity-scoped views,
pluggable rankers and the entity-scoped engine."""

from repro.search.bm25 import BM25Ranker
from repro.search.engine import (
    FetchStatistics,
    SearchEngine,
    SearchResult,
)
from repro.search.index import IndexView, InvertedIndex
from repro.search.language_model import DirichletLanguageModel
from repro.search.rankers import (
    RANKER_BM25,
    RANKER_DIRICHLET,
    Ranker,
    is_registered,
    make_ranker,
    ranker_names,
    register_ranker,
)

__all__ = [
    "BM25Ranker",
    "DirichletLanguageModel",
    "FetchStatistics",
    "IndexView",
    "InvertedIndex",
    "RANKER_BM25",
    "RANKER_DIRICHLET",
    "Ranker",
    "SearchEngine",
    "SearchResult",
    "is_registered",
    "make_ranker",
    "ranker_names",
    "register_ranker",
]
