"""Search-engine substrate: inverted index, rankers and the entity-scoped engine."""

from repro.search.bm25 import BM25Ranker
from repro.search.engine import (
    RANKER_BM25,
    RANKER_DIRICHLET,
    FetchStatistics,
    SearchEngine,
    SearchResult,
)
from repro.search.index import InvertedIndex
from repro.search.language_model import DirichletLanguageModel

__all__ = [
    "BM25Ranker",
    "DirichletLanguageModel",
    "FetchStatistics",
    "InvertedIndex",
    "RANKER_BM25",
    "RANKER_DIRICHLET",
    "SearchEngine",
    "SearchResult",
]
