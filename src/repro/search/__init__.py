"""Search-engine substrate: shared inverted index, entity-scoped views,
pluggable rankers and the entity-scoped engine."""

from repro.search.bm25 import BM25Ranker
from repro.search.clients import (
    CLIENT_INSTANT,
    CLIENT_KINDS,
    CLIENT_SIMULATED,
    ClientSpec,
    FetchOutcome,
    InstantClient,
    LatencyModel,
    SearchClient,
    SimulatedServiceClient,
    TokenBucket,
    make_client,
)
from repro.search.engine import (
    FetchStatistics,
    SearchEngine,
    SearchResult,
)
from repro.search.index import IndexView, InvertedIndex
from repro.search.language_model import DirichletLanguageModel
from repro.search.rankers import (
    RANKER_BM25,
    RANKER_DIRICHLET,
    Ranker,
    is_registered,
    make_ranker,
    ranker_names,
    register_ranker,
)

__all__ = [
    "BM25Ranker",
    "CLIENT_INSTANT",
    "CLIENT_KINDS",
    "CLIENT_SIMULATED",
    "ClientSpec",
    "DirichletLanguageModel",
    "FetchOutcome",
    "FetchStatistics",
    "InstantClient",
    "LatencyModel",
    "SearchClient",
    "SimulatedServiceClient",
    "TokenBucket",
    "IndexView",
    "InvertedIndex",
    "RANKER_BM25",
    "RANKER_DIRICHLET",
    "Ranker",
    "SearchEngine",
    "SearchResult",
    "is_registered",
    "make_client",
    "make_ranker",
    "ranker_names",
    "register_ranker",
]
