"""Query-likelihood language model with Dirichlet smoothing.

This is the retrieval model the paper itself uses as its offline "search
engine": *"we used a language model with Dirichlet smoothing [29] as the
search engine"* (Sect. VI-A).  The score of a document ``d`` for a query
``q`` is::

    score(q, d) = sum_{w in q} log( (tf(w, d) + mu * p(w | C)) / (|d| + mu) )

where ``p(w | C)`` is the collection language model and ``mu`` the Dirichlet
prior.  Unseen query terms (zero collection probability) are smoothed with a
small epsilon so the score remains finite.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.search.index import InvertedIndex

_UNSEEN_EPSILON = 1e-9


class DirichletLanguageModel:
    """Ranks documents of an :class:`InvertedIndex` by query likelihood."""

    def __init__(self, index: InvertedIndex, mu: float = 100.0) -> None:
        if mu <= 0:
            raise ValueError("the Dirichlet prior mu must be positive")
        self.index = index
        self.mu = float(mu)

    def term_probability(self, term: str, doc_id: str) -> float:
        """Smoothed probability of ``term`` under the document model of ``doc_id``."""
        tf = self.index.term_frequency(term, doc_id)
        collection_p = self.index.collection_probability(term)
        if collection_p <= 0.0:
            collection_p = _UNSEEN_EPSILON
        doc_length = self.index.document_length(doc_id)
        return (tf + self.mu * collection_p) / (doc_length + self.mu)

    def score(self, query: Sequence[str], doc_id: str) -> float:
        """Log query likelihood of ``query`` under ``doc_id``'s document model."""
        if not query:
            return float("-inf")
        return sum(math.log(self.term_probability(term, doc_id)) for term in query)

    def rank(self, query: Sequence[str], top_k: int = 0,
             require_match: bool = True) -> List[Tuple[str, float]]:
        """Rank documents for ``query``.

        Parameters
        ----------
        query:
            Query tokens.
        top_k:
            If positive, truncate the ranking to the top ``top_k`` documents.
        require_match:
            If True (the default), only documents containing at least one
            query term are returned — a pure smoothing score over unrelated
            documents is not a retrieval.
        """
        query = [t for t in query if t]
        if not query:
            return []
        if require_match:
            candidates = sorted(self.index.matching_documents(query))
        else:
            candidates = self.index.document_ids()
        scored = [(doc_id, self.score(query, doc_id)) for doc_id in candidates]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        if top_k > 0:
            scored = scored[:top_k]
        return scored

    def retrieval_scores(self, query: Sequence[str]) -> Dict[str, float]:
        """Return the normalised retrieval scores of all matching documents.

        The scores are exponentiated log-likelihoods normalised to sum to 1,
        usable as edge weights ``W_pq`` in the reinforcement graph ("we can
        use a retrieval model to quantify the strength between page p and
        query q", Sect. III).
        """
        ranked = self.rank(query, top_k=0, require_match=True)
        if not ranked:
            return {}
        max_log = max(score for _, score in ranked)
        weights = {doc_id: math.exp(score - max_log) for doc_id, score in ranked}
        total = sum(weights.values())
        if total <= 0:
            return {doc_id: 1.0 / len(weights) for doc_id in weights}
        return {doc_id: weight / total for doc_id, weight in weights.items()}
