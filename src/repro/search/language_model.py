"""Query-likelihood language model with Dirichlet smoothing.

This is the retrieval model the paper itself uses as its offline "search
engine": *"we used a language model with Dirichlet smoothing [29] as the
search engine"* (Sect. VI-A).  The score of a document ``d`` for a query
``q`` is::

    score(q, d) = sum_{w in q} log( (tf(w, d) + mu * p(w | C)) / (|d| + mu) )

where ``p(w | C)`` is the collection language model and ``mu`` the Dirichlet
prior.  Unseen query terms (zero collection probability) are smoothed with a
small epsilon so the score remains finite.

Ranking runs through a vectorized kernel over the index's CSR
term–document matrix (:meth:`repro.search.index.InvertedIndex.term_document_matrix`):
one dense column gather plus array arithmetic per query term, scoring the
whole candidate set at once.  The scalar :meth:`score` is kept as the
reference implementation; the kernel reproduces it bit for bit (term
contributions are accumulated in query order and logarithms are taken with
:func:`repro.utils.vectorize.exact_log`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.search.index import InvertedIndex, TermDocumentMatrix
from repro.utils.vectorize import exact_log

_UNSEEN_EPSILON = 1e-9


class DirichletLanguageModel:
    """Ranks documents of an :class:`InvertedIndex` by query likelihood."""

    def __init__(self, index: InvertedIndex, mu: float = 100.0) -> None:
        if mu <= 0:
            raise ValueError("the Dirichlet prior mu must be positive")
        self.index = index
        self.mu = float(mu)

    def term_probability(self, term: str, doc_id: str) -> float:
        """Smoothed probability of ``term`` under the document model of ``doc_id``."""
        tf = self.index.term_frequency(term, doc_id)
        collection_p = self.index.collection_probability(term)
        if collection_p <= 0.0:
            collection_p = _UNSEEN_EPSILON
        doc_length = self.index.document_length(doc_id)
        return (tf + self.mu * collection_p) / (doc_length + self.mu)

    def score(self, query: Sequence[str], doc_id: str) -> float:
        """Log query likelihood of ``query`` under ``doc_id``'s document model.

        Scalar reference implementation of the vectorized
        :meth:`score_rows` kernel (which must match it bit for bit).
        """
        if not query:
            return float("-inf")
        return sum(math.log(self.term_probability(term, doc_id)) for term in query)

    # -- Vectorized kernel -------------------------------------------------------
    def score_rows(self, query: Sequence[str], matrix: TermDocumentMatrix,
                   rows: np.ndarray) -> np.ndarray:
        """Scores of ``query`` for the document rows ``rows`` of ``matrix``.

        ``rows`` are row positions into ``matrix`` in strictly increasing
        order.  Contributions are accumulated term by term in query order,
        so the result equals ``[self.score(query, doc_id) for doc_id in
        rows]`` bit for bit.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.zeros(0, dtype=np.float64)
        if not query:
            return np.full(rows.size, float("-inf"))
        doc_lengths = matrix.doc_lengths[rows]
        total: Optional[np.ndarray] = None
        for term in query:
            collection_p = matrix.collection_probability(term)
            if collection_p <= 0.0:
                collection_p = _UNSEEN_EPSILON
            tf = np.zeros(rows.size, dtype=np.float64)
            column = matrix.term_position(term)
            if column is not None:
                col_rows, col_values = matrix.term_column(column)
                positions = np.searchsorted(rows, col_rows)
                positions = np.minimum(positions, rows.size - 1)
                inside = rows[positions] == col_rows
                tf[positions[inside]] = col_values[inside]
            probabilities = (tf + self.mu * collection_p) / (doc_lengths + self.mu)
            contribution = exact_log(probabilities)
            total = contribution if total is None else total + contribution
        assert total is not None
        return total

    def _matrix(self) -> Optional[TermDocumentMatrix]:
        builder = getattr(self.index, "term_document_matrix", None)
        return builder() if builder is not None else None

    def _candidate_rows(self, query: Sequence[str], matrix: TermDocumentMatrix,
                        require_match: bool) -> np.ndarray:
        if not require_match:
            return np.arange(matrix.num_documents, dtype=np.int64)
        columns = {matrix.term_position(term) for term in query}
        columns.discard(None)
        if not columns:
            return np.zeros(0, dtype=np.int64)
        gathered = [matrix.term_column(column)[0] for column in sorted(columns)]
        return np.unique(np.concatenate(gathered)).astype(np.int64)

    def _rank_rows(self, query: Sequence[str], matrix: TermDocumentMatrix,
                   rows: np.ndarray, top_k: int) -> List[Tuple[str, float]]:
        scores = self.score_rows(query, matrix, rows)
        scored = [(matrix.doc_ids[row], float(score))
                  for row, score in zip(rows.tolist(), scores.tolist())]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        if top_k > 0:
            scored = scored[:top_k]
        return scored

    def rank(self, query: Sequence[str], top_k: int = 0,
             require_match: bool = True) -> List[Tuple[str, float]]:
        """Rank documents for ``query``.

        Parameters
        ----------
        query:
            Query tokens.
        top_k:
            If positive, truncate the ranking to the top ``top_k`` documents.
        require_match:
            If True (the default), only documents containing at least one
            query term are returned — a pure smoothing score over unrelated
            documents is not a retrieval.
        """
        query = [t for t in query if t]
        if not query:
            return []
        matrix = self._matrix()
        if matrix is None:
            return self._rank_scalar(query, top_k, require_match)
        rows = self._candidate_rows(query, matrix, require_match)
        return self._rank_rows(query, matrix, rows, top_k)

    def rank_many(self, queries: Sequence[Sequence[str]], top_k: int = 0,
                  require_match: bool = True) -> List[List[Tuple[str, float]]]:
        """Rank a batch of queries (one CSR snapshot, shared across queries)."""
        return [self.rank(query, top_k=top_k, require_match=require_match)
                for query in queries]

    def score_matrix(self, queries: Sequence[Sequence[str]]
                     ) -> Tuple[np.ndarray, Tuple[str, ...]]:
        """All (query, document) scores as a dense ``queries × docs`` array.

        Returns the score matrix together with the document-id order of its
        columns.  Row ``i`` equals ``[self.score(queries[i], d) for d in
        doc_ids]`` bit for bit (empty queries score ``-inf`` everywhere).
        """
        matrix = self._matrix()
        if matrix is None:
            raise TypeError("index does not expose a term-document matrix")
        rows = np.arange(matrix.num_documents, dtype=np.int64)
        scores = np.vstack([
            self.score_rows([t for t in query if t], matrix, rows)
            for query in queries
        ]) if queries else np.zeros((0, matrix.num_documents))
        return scores, matrix.doc_ids

    def _rank_scalar(self, query: Sequence[str], top_k: int,
                     require_match: bool) -> List[Tuple[str, float]]:
        """Reference ranking path for indexes without a matrix view."""
        if require_match:
            candidates = sorted(self.index.matching_documents(query))
        else:
            candidates = self.index.document_ids()
        scored = [(doc_id, self.score(query, doc_id)) for doc_id in candidates]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        if top_k > 0:
            scored = scored[:top_k]
        return scored

    def retrieval_scores(self, query: Sequence[str]) -> Dict[str, float]:
        """Return the normalised retrieval scores of all matching documents.

        The scores are exponentiated log-likelihoods normalised to sum to 1,
        usable as edge weights ``W_pq`` in the reinforcement graph ("we can
        use a retrieval model to quantify the strength between page p and
        query q", Sect. III).
        """
        ranked = self.rank(query, top_k=0, require_match=True)
        if not ranked:
            return {}
        max_log = max(score for _, score in ranked)
        weights = {doc_id: math.exp(score - max_log) for doc_id, score in ranked}
        total = sum(weights.values())
        if total <= 0:
            return {doc_id: 1.0 / len(weights) for doc_id in weights}
        return {doc_id: weight / total for doc_id, weight in weights.items()}
