"""Search-client adapters: what sits between a session and the engine.

The harvesting loop (:mod:`repro.core.stepper`) never talks to the
:class:`~repro.search.engine.SearchEngine` directly any more — it emits
fetch *actions* and ingests fetch *outcomes*.  A :class:`SearchClient`
executes those actions:

* :class:`InstantClient` — the in-process oracle of the paper: zero
  latency, no failures, a plain pass-through to the engine.  The default,
  and bit-for-bit identical to the historical inline loop.
* :class:`SimulatedServiceClient` — wraps *any* engine in the failure
  modes of a real search service: seeded lognormal latency (parametrised
  by p50/p99), a :class:`TokenBucket` QPS cap, injected timeout and
  failure rates, and deterministic retry with exponential backoff.  Every
  attempt — including failed ones that will be retried — is charged
  against the run's fetch budget through the existing
  :class:`~repro.search.engine.RunFetchAccounting` (a failed attempt is a
  fired query that fetched zero pages), so retries are never free.

Determinism contract: every stochastic draw of the simulated client
(latency, timeout, failure) derives from ``(client seed, request key,
attempt)`` via :func:`~repro.utils.rng.derive_seed` — never from shared
RNG call order — so session results and the deterministic serving metrics
are identical regardless of how concurrent sessions interleave.  Only the
token bucket's waits depend on global request *order* (rate limiting is
inherently a shared-timeline concern); they are therefore reported
separately (``throttle_seconds``) and excluded from the
deterministically-compared metrics blocks.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence, Union

from repro.corpus.document import Page
from repro.search.engine import RunFetchAccounting, SearchEngine, SearchResult
from repro.utils.rng import SeededRandom, derive_seed

CLIENT_INSTANT = "instant"
CLIENT_SIMULATED = "simulated"

#: Registered client kinds (the CLI's ``--client`` choices).
CLIENT_KINDS = (CLIENT_INSTANT, CLIENT_SIMULATED)

#: z-score of the 99th percentile of the standard normal distribution;
#: turns a (p50, p99) pair into the lognormal's (mu, sigma).
_Z99 = 2.3263478740408408


@dataclass(frozen=True)
class FetchOutcome:
    """What one fetch action produced.

    ``latency_seconds`` is the client's *simulated/measured* latency for
    the whole request (all attempts, backoff delays included), on the
    deterministic axis; ``throttle_seconds`` is the token-bucket wait,
    which depends on global request order and is kept apart.  ``results``
    and ``pages`` are empty when every attempt failed (``exhausted``) —
    the session records the iteration anyway and the budget is consumed.
    """

    results: Sequence[SearchResult]
    pages: Sequence[Page]
    latency_seconds: float = 0.0
    throttle_seconds: float = 0.0
    attempts: int = 1
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    exhausted: bool = False


@dataclass
class ClientStats:
    """Aggregate accounting of one client's traffic (all sessions).

    ``engine_queries`` counts queries the engine actually served (observed
    through the run accounting around successful attempts);
    ``retry_queries`` counts the failed attempts charged to the fetch
    budget at zero pages.  Their sum equals the merged accounting's
    ``queries_fired`` — the invariant the serving CI smoke asserts.
    """

    requests: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    exhausted: int = 0
    engine_queries: int = 0
    retry_queries: int = 0
    latency_seconds: float = 0.0
    throttle_seconds: float = 0.0

    def as_dict(self) -> dict:
        """Plain-JSON summary (wall-clock-free: all simulated axes)."""
        return {
            "requests": self.requests,
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "exhausted": self.exhausted,
            "engine_queries": self.engine_queries,
            "retry_queries": self.retry_queries,
        }


class SearchClient:
    """Contract between the harvesting loop and any search transport.

    ``fetch`` executes one stepper action (:class:`~repro.core.stepper.SeedFetch`
    or :class:`~repro.core.stepper.QueryFetch`) and returns a
    :class:`FetchOutcome`.  Implementations must charge every engine
    request to ``accounting`` (the run's fetch budget) — including
    attempts that fail and are retried.
    """

    name: str = "abstract"

    def __init__(self, engine: SearchEngine) -> None:
        self.engine = engine
        self.stats = ClientStats()

    def fetch(self, action, accounting: Optional[RunFetchAccounting] = None
              ) -> FetchOutcome:
        """Execute one fetch action (dispatches on the action's type)."""
        if hasattr(action, "query"):
            return self.query_fetch(action, accounting=accounting)
        return self.seed_fetch(action, accounting=accounting)

    def seed_fetch(self, action, accounting=None) -> FetchOutcome:
        raise NotImplementedError

    def query_fetch(self, action, accounting=None) -> FetchOutcome:
        raise NotImplementedError


class InstantClient(SearchClient):
    """The paper's semantics: an in-process engine call, instantly.

    A pure pass-through — same engine methods, same argument shapes, same
    call order as the historical inline loop, so the default harvesting
    path stays bit-for-bit identical (pinned by the golden fig13 snapshot
    and the backend-equivalence suite).
    """

    name = CLIENT_INSTANT

    def seed_fetch(self, action, accounting=None) -> FetchOutcome:
        results = self.engine.seed_results(action.entity_id,
                                           accounting=accounting)
        pages = self.engine.fetch_pages(results)
        self.stats.requests += 1
        self.stats.attempts += 1
        return FetchOutcome(results=results, pages=pages)

    def query_fetch(self, action, accounting=None) -> FetchOutcome:
        results = self.engine.search(action.entity_id, list(action.query),
                                     accounting=accounting)
        pages = self.engine.fetch_pages(results)
        self.stats.requests += 1
        self.stats.attempts += 1
        return FetchOutcome(results=results, pages=pages)


class TokenBucket:
    """A deterministic token bucket on a virtual clock.

    Admits one request per :meth:`reserve` call, refilling ``rate`` tokens
    per virtual second up to ``capacity``.  With no explicit arrival time
    the internal clock is used (it advances only by imposed waits), which
    makes the wait *sequence* a pure function of the number of requests —
    order-independent in aggregate, which is why serving reports can sum
    throttle waits deterministically even under concurrency.

    The admission invariant (property-tested): over any virtual-time
    window ``[t1, t2]``, at most ``capacity + rate * (t2 - t1)`` requests
    are admitted.
    """

    def __init__(self, rate: float, capacity: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None \
            else max(1.0, self.rate / 10.0)
        if self.capacity < 1.0:
            raise ValueError("capacity must be >= 1 token")
        self._tokens = self.capacity
        self._clock = 0.0

    @property
    def clock(self) -> float:
        """The current virtual time (advanced by arrivals and waits)."""
        return self._clock

    def _refill(self, now: float) -> None:
        elapsed = now - self._clock
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._clock = now

    def reserve(self, now: Optional[float] = None) -> float:
        """Admit one request; return how long it must wait for its token.

        ``now`` is the request's virtual arrival time (clamped to be
        monotone); ``None`` means "at the current virtual clock".
        """
        arrival = self._clock if now is None else max(self._clock, float(now))
        self._refill(arrival)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        wait = (1.0 - self._tokens) / self.rate
        self._refill(arrival + wait)
        self._tokens = max(0.0, self._tokens - 1.0)
        return wait


@dataclass(frozen=True)
class LatencyModel:
    """Seeded lognormal service latency parametrised by its p50 and p99."""

    p50: float
    p99: float

    def __post_init__(self) -> None:
        if self.p50 <= 0 or self.p99 < self.p50:
            raise ValueError("need 0 < p50 <= p99")

    @property
    def mu(self) -> float:
        return math.log(self.p50)

    @property
    def sigma(self) -> float:
        return math.log(self.p99 / self.p50) / _Z99

    def sample(self, rng: SeededRandom) -> float:
        """Draw one latency (seconds)."""
        return math.exp(self.mu + self.sigma * rng.gauss(0.0, 1.0))


@dataclass(frozen=True)
class ClientSpec:
    """Declarative, picklable recipe for building a client per engine.

    Orchestrators that prepare one engine per split (or per worker) carry
    a spec instead of a live client; :func:`make_client` instantiates it
    against each engine.  Defaults model a fast, mostly-healthy search
    service; the serving benchmark's headline numbers are measured under
    these defaults.
    """

    kind: str = CLIENT_INSTANT
    latency_p50: float = 0.025
    latency_p99: float = 0.1
    qps_limit: Optional[float] = 500.0
    burst: Optional[float] = None
    timeout_rate: float = 0.05
    failure_rate: float = 0.05
    timeout_seconds: Optional[float] = None
    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    seed: int = 17

    def __post_init__(self) -> None:
        if self.kind not in CLIENT_KINDS:
            raise ValueError(f"unknown client kind {self.kind!r}; "
                             f"available: {list(CLIENT_KINDS)}")
        if not 0.0 <= self.timeout_rate <= 1.0 or not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("timeout_rate/failure_rate must be in [0, 1]")
        if self.timeout_rate + self.failure_rate >= 1.0:
            raise ValueError("timeout_rate + failure_rate must stay < 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def as_dict(self) -> dict:
        """Plain-JSON rendering (for benchmark artifacts)."""
        return {
            "kind": self.kind,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "qps_limit": self.qps_limit,
            "burst": self.burst,
            "timeout_rate": self.timeout_rate,
            "failure_rate": self.failure_rate,
            "timeout_seconds": self.timeout_seconds,
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_multiplier": self.backoff_multiplier,
            "seed": self.seed,
        }


class SimulatedServiceClient(SearchClient):
    """Any engine, dressed up as a flaky remote search service.

    Each request runs up to ``1 + max_retries`` attempts.  Per attempt, a
    request-keyed RNG draws a lognormal service latency and one uniform
    variate classifying the attempt: timeout (charged the full
    ``timeout_seconds`` window), failure (charged the drawn latency), or
    success (the real engine call happens, charged the drawn latency).
    Failed attempts charge one fired query at zero pages to the run's
    :class:`~repro.search.engine.RunFetchAccounting` and wait a
    deterministic exponential backoff (``backoff_base * multiplier **
    attempt``) before retrying.  A request whose every attempt failed
    returns an empty, ``exhausted`` outcome — the harvest records the
    iteration and moves on, exactly like a production fleet would.
    """

    name = CLIENT_SIMULATED

    def __init__(self, engine: SearchEngine,
                 spec: Optional[ClientSpec] = None) -> None:
        super().__init__(engine)
        if spec is None:
            spec = ClientSpec(kind=CLIENT_SIMULATED)
        elif spec.kind != CLIENT_SIMULATED:
            spec = replace(spec, kind=CLIENT_SIMULATED)
        self.spec = spec
        self.latency = LatencyModel(spec.latency_p50, spec.latency_p99)
        self.timeout_seconds = spec.timeout_seconds if spec.timeout_seconds \
            is not None else 2.0 * spec.latency_p99
        self.bucket = TokenBucket(spec.qps_limit, spec.burst) \
            if spec.qps_limit else None
        # One client serves many concurrent sessions; the lock guards the
        # shared bucket and the aggregate stats (the event loop interleaves
        # sessions only between awaits, but thread backends may share too).
        self._lock = threading.Lock()

    # -- Request execution -----------------------------------------------------
    def seed_fetch(self, action, accounting=None) -> FetchOutcome:
        return self._request(
            action, accounting,
            lambda: self.engine.seed_results(action.entity_id,
                                             accounting=accounting))

    def query_fetch(self, action, accounting=None) -> FetchOutcome:
        return self._request(
            action, accounting,
            lambda: self.engine.search(action.entity_id, list(action.query),
                                       accounting=accounting))

    def _request(self, action, accounting: Optional[RunFetchAccounting],
                 engine_call: Callable[[], Sequence[SearchResult]]
                 ) -> FetchOutcome:
        spec = self.spec
        rng = SeededRandom(derive_seed(spec.seed, "request",
                                       *action.request_key))
        latency = 0.0
        throttle = 0.0
        attempts = retries = timeouts = failures = 0
        outcome: Optional[FetchOutcome] = None
        for attempt in range(spec.max_retries + 1):
            if self.bucket is not None:
                with self._lock:
                    throttle += self.bucket.reserve()
            attempts += 1
            service_latency = self.latency.sample(rng)
            verdict = rng.random()
            if verdict < spec.timeout_rate:
                timeouts += 1
                latency += self.timeout_seconds
            elif verdict < spec.timeout_rate + spec.failure_rate:
                failures += 1
                latency += service_latency
            else:
                latency += service_latency
                before = accounting.queries_fired if accounting else 0
                results = engine_call()
                served = (accounting.queries_fired - before) if accounting else 1
                pages = self.engine.fetch_pages(results)
                outcome = FetchOutcome(
                    results=results, pages=pages,
                    latency_seconds=latency, throttle_seconds=throttle,
                    attempts=attempts, retries=attempts - 1,
                    timeouts=timeouts, failures=failures)
                self._fold_stats(outcome, engine_queries=served)
                return outcome
            # Failed attempt: a fired query that fetched nothing — charged
            # to the fetch budget so retries are never free.
            if accounting is not None:
                accounting.record(action.entity_id, 0,
                                  self.engine.simulated_fetch_seconds_per_page)
            if attempt < spec.max_retries:
                retries += 1
                latency += spec.backoff_base * spec.backoff_multiplier ** attempt
        outcome = FetchOutcome(
            results=(), pages=(),
            latency_seconds=latency, throttle_seconds=throttle,
            attempts=attempts, retries=retries,
            timeouts=timeouts, failures=failures, exhausted=True)
        self._fold_stats(outcome, engine_queries=0)
        return outcome

    def _fold_stats(self, outcome: FetchOutcome, engine_queries: int) -> None:
        with self._lock:
            stats = self.stats
            stats.requests += 1
            stats.attempts += outcome.attempts
            stats.retries += outcome.retries
            stats.timeouts += outcome.timeouts
            stats.failures += outcome.failures
            stats.exhausted += 1 if outcome.exhausted else 0
            stats.engine_queries += engine_queries
            stats.retry_queries += outcome.timeouts + outcome.failures
            stats.latency_seconds += outcome.latency_seconds
            stats.throttle_seconds += outcome.throttle_seconds


def make_client(client: Union[None, str, ClientSpec, SearchClient],
                engine: SearchEngine) -> SearchClient:
    """Coerce a client argument (name, spec, instance or None) to a client.

    ``None`` and ``"instant"`` give the in-process pass-through;
    ``"simulated"`` gives a simulated service under the default
    :class:`ClientSpec`; a spec builds its kind against ``engine``; a
    ready instance is returned as-is.
    """
    if client is None or client == CLIENT_INSTANT:
        return InstantClient(engine)
    if client == CLIENT_SIMULATED:
        return SimulatedServiceClient(engine)
    if isinstance(client, ClientSpec):
        if client.kind == CLIENT_INSTANT:
            return InstantClient(engine)
        return SimulatedServiceClient(engine, client)
    if isinstance(client, SearchClient):
        return client
    raise TypeError(f"client must be None, a kind name, a ClientSpec or a "
                    f"SearchClient, got {type(client).__name__}")
