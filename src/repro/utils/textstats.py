"""Small text-statistics helpers shared by the corpus and search packages."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple


def term_frequencies(tokens: Sequence[str]) -> Dict[str, int]:
    """Return a term-frequency dictionary for a token sequence."""
    return dict(Counter(tokens))


def document_frequencies(documents: Iterable[Sequence[str]]) -> Dict[str, int]:
    """Return, for each term, the number of documents containing it."""
    df: Counter = Counter()
    for tokens in documents:
        df.update(set(tokens))
    return dict(df)


def ngrams(tokens: Sequence[str], n: int) -> List[Tuple[str, ...]]:
    """Return all contiguous ``n``-grams of ``tokens`` (empty list if too short)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if len(tokens) < n:
        return []
    return [tuple(tokens[i:i + n]) for i in range(len(tokens) - n + 1)]


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Return the Jaccard similarity of two token collections."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = sa | sb
    if not union:
        return 0.0
    return len(sa & sb) / len(union)


def vocabulary_size(documents: Iterable[Sequence[str]]) -> int:
    """Return the number of distinct terms across ``documents``."""
    vocab = set()
    for tokens in documents:
        vocab.update(tokens)
    return len(vocab)


def average_length(documents: Sequence[Sequence[str]]) -> float:
    """Return the mean token count per document (0.0 for no documents)."""
    if not documents:
        return 0.0
    return sum(len(tokens) for tokens in documents) / len(documents)
