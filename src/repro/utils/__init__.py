"""Shared utilities: seeded randomness, timing, logging and text statistics."""

from repro.utils.rng import SeededRandom, derive_seed
from repro.utils.timing import Stopwatch, TimingAccumulator

__all__ = [
    "SeededRandom",
    "derive_seed",
    "Stopwatch",
    "TimingAccumulator",
]
