"""Deterministic random number helpers.

Every stochastic component in the reproduction (corpus generation, entity
splits, the RND baseline, tie-breaking in query selection) draws its
randomness from a :class:`SeededRandom` instance so that experiments are
repeatable bit-for-bit given the same seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from a base seed and a sequence of labels.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 rather than ``hash``), so the same ``(base_seed, labels)`` pair
    always yields the same child seed.

    Parameters
    ----------
    base_seed:
        The parent seed.
    labels:
        Arbitrary hashable labels (they are stringified) identifying the
        component requesting a seed, e.g. ``("corpus", "researcher", 3)``.

    Returns
    -------
    int
        A 63-bit non-negative integer seed.
    """
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


class SeededRandom:
    """A thin wrapper around :class:`random.Random` with convenience helpers.

    The wrapper exists so that call sites never touch the global
    :mod:`random` state and so that child generators can be spawned
    deterministically with :meth:`spawn`.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def spawn(self, *labels: object) -> "SeededRandom":
        """Create an independent child generator identified by ``labels``."""
        return SeededRandom(derive_seed(self.seed, *labels))

    # -- Thin delegations -------------------------------------------------
    def random(self) -> float:
        """Return a float uniformly in ``[0, 1)``."""
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniformly in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Return a float uniformly in ``[low, high]``."""
        return self._rng.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        """Return a Gaussian sample."""
        return self._rng.gauss(mu, sigma)

    def choice(self, items: Sequence[T]) -> T:
        """Return a uniformly random element of ``items``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(items)

    def choices(self, items: Sequence[T], weights: Optional[Sequence[float]] = None,
                k: int = 1) -> List[T]:
        """Return ``k`` elements sampled with replacement."""
        return self._rng.choices(items, weights=weights, k=k)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """Return ``k`` distinct elements sampled without replacement.

        If ``k`` exceeds the population size the whole population is
        returned in shuffled order instead of raising, which is the
        behaviour every caller in this project wants.
        """
        population = list(items)
        if k >= len(population):
            self._rng.shuffle(population)
            return population
        return self._rng.sample(population, k)

    def shuffle(self, items: List[T]) -> List[T]:
        """Shuffle ``items`` in place and return it for chaining."""
        self._rng.shuffle(items)
        return items

    def shuffled(self, items: Iterable[T]) -> List[T]:
        """Return a shuffled copy of ``items``."""
        copy = list(items)
        self._rng.shuffle(copy)
        return copy

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Return one element sampled proportionally to ``weights``."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        return self._rng.choices(items, weights=weights, k=1)[0]

    def poisson_like(self, mean: float, maximum: int) -> int:
        """Return a small non-negative integer with the given mean.

        A cheap substitute for a Poisson draw used when sampling "how many
        sentences / paragraphs" counts; clamped to ``[0, maximum]``.
        """
        if mean <= 0:
            return 0
        value = 0
        remaining = mean
        while remaining > 0 and value < maximum:
            if self._rng.random() < min(remaining, 1.0):
                value += 1
            remaining -= 1.0
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SeededRandom(seed={self.seed})"
