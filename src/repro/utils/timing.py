"""Wall-clock timing helpers used for the efficiency experiment (Fig. 14)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


class Stopwatch:
    """A context-manager stopwatch measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class TimingAccumulator:
    """Accumulates named timing samples and reports their averages.

    Used by the harvester to separate *selection* time (CPU-bound query
    selection) from *fetch* time (simulated I/O to the search engine),
    mirroring the columns of the paper's Fig. 14.
    """

    samples: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        """Record one sample for category ``name``."""
        self.samples.setdefault(name, []).append(float(seconds))

    def merge(self, other: "TimingAccumulator") -> None:
        """Fold another accumulator's samples into this one."""
        for name, values in other.samples.items():
            self.samples.setdefault(name, []).extend(values)

    def total(self, name: str) -> float:
        """Return the sum of samples recorded for ``name`` (0.0 if none)."""
        return float(sum(self.samples.get(name, [])))

    def count(self, name: str) -> int:
        """Return how many samples were recorded for ``name``."""
        return len(self.samples.get(name, []))

    def average(self, name: str) -> float:
        """Return the mean sample for ``name`` (0.0 if none recorded)."""
        values = self.samples.get(name, [])
        if not values:
            return 0.0
        return float(sum(values)) / len(values)

    def categories(self) -> List[str]:
        """Return the list of recorded category names."""
        return sorted(self.samples)
