"""A tiny named-factory registry shared by the ranker and scenario registries.

Both registries want the same semantics: decorator-or-plain registration,
duplicate names rejected unless ``overwrite=True`` (with idempotent
re-registration of the *same* factory object), lookup errors that list the
available names, and sorted introspection.  Keeping the logic here means the
two registries cannot drift apart.
"""

from __future__ import annotations

from typing import Callable, Dict, List


class NamedRegistry:
    """Factories registered under unique names, for one ``kind`` of thing."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.factories: Dict[str, Callable] = {}

    def register(self, name: str, factory: Callable = None, *,
                 overwrite: bool = False):
        """Register ``factory`` under ``name`` (decorator or plain call).

        Registering an already-taken name raises :class:`ValueError` unless
        ``overwrite=True`` or the factory is the very same object (so
        re-running a registration cell is harmless).
        """

        def _store(f: Callable) -> Callable:
            if not overwrite and name in self.factories \
                    and self.factories[name] is not f:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass overwrite=True to replace it")
            self.factories[name] = f
            return f

        if factory is not None:
            return _store(factory)
        return _store

    def make(self, name: str, *args, **kwargs):
        """Instantiate the factory registered under ``name``."""
        try:
            factory = self.factories[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; "
                f"available: {self.names()}") from None
        return factory(*args, **kwargs)

    def names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(self.factories)

    def __contains__(self, name: str) -> bool:
        return name in self.factories
