"""Project-wide logging configuration.

The library never configures the root logger on import; applications and
benchmarks opt in by calling :func:`configure_logging`.
"""

from __future__ import annotations

import logging
from typing import Optional

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def configure_logging(level: int = logging.INFO, fmt: Optional[str] = None) -> None:
    """Configure the ``repro`` logger hierarchy with a stream handler.

    Calling this more than once is safe: existing handlers attached to the
    ``repro`` logger are replaced rather than duplicated.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(fmt or _FORMAT))
    logger.addHandler(handler)
    logger.propagate = False


def get_logger(name: str) -> logging.Logger:
    """Return a child logger under the ``repro`` namespace."""
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
