"""Exact-arithmetic helpers for the vectorized scoring kernels.

The selection hot path is pinned by a golden snapshot
(``tests/data/fig13_smoke_golden.json``) that is compared *exactly*, so the
sparse-matrix kernels in :mod:`repro.search` / :mod:`repro.core` must
reproduce the scalar reference implementations bit for bit.  Two scalar
operations stand in the way:

* ``math.log(x)`` and ``numpy.log(x)`` may disagree by an ULP (libm vs the
  vectorized polynomial), and
* Python's ``x ** 0.5`` may disagree with both ``numpy.sqrt`` and
  ``numpy.power``.

:func:`exact_log` and :func:`exact_pow_half` close the gap: they reduce an
array to its unique values, apply the *scalar* libm call per unique value,
and scatter the results back.  Scoring arrays here are highly repetitive
(term frequencies, clamped utilities), so the unique set is small and the
scalar loop negligible — and the output is bit-identical to mapping the
scalar operation over the array, independent of the numpy version or CPU.

:func:`first_lexicographic_argmax` replicates the selection loop's
"strictly greater wins" tuple comparison: the returned index is the first
position attaining the lexicographic maximum of ``(primary, secondary)``.
"""

from __future__ import annotations

import math

import numpy as np

#: Below this many elements the dedup-and-scatter machinery costs more than
#: simply mapping the scalar libm call over the array (which is what the
#: helpers are bit-identical to in the first place).  Page-granularity
#: classifier batches sit far under it; training batches far over.
_SMALL_EXACT = 64

#: Below this many stored values :func:`rowwise_ordered_sum` replays the
#: scalar accumulation directly — the dense scatter plus one numpy add per
#: column has too much constant overhead for a handful of short rows.
_SMALL_ROWSUM = 512


def exact_log(values: np.ndarray) -> np.ndarray:
    """Elementwise ``math.log`` over a float array (bit-identical to scalar).

    Raises ``ValueError`` (from ``math.log``) on non-positive inputs, just
    like the scalar reference path would.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size <= _SMALL_EXACT:
        logs = np.array([math.log(v) for v in values.ravel().tolist()],
                        dtype=np.float64)
        return logs.reshape(values.shape)
    unique, inverse = np.unique(values, return_inverse=True)
    logs = np.array([math.log(v) for v in unique.tolist()], dtype=np.float64)
    return logs[inverse].reshape(values.shape)


def exact_exp(values: np.ndarray) -> np.ndarray:
    """Elementwise ``math.exp`` over a float array (bit-identical to scalar).

    The classifier posterior kernel needs it: ``numpy.exp`` may differ from
    libm's ``exp`` by an ULP, and the aspect-relevance scores feed selection
    decisions that are pinned byte-for-byte.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size <= _SMALL_EXACT:
        exps = np.array([math.exp(v) for v in values.ravel().tolist()],
                        dtype=np.float64)
        return exps.reshape(values.shape)
    unique, inverse = np.unique(values, return_inverse=True)
    exps = np.array([math.exp(v) for v in unique.tolist()], dtype=np.float64)
    return exps[inverse].reshape(values.shape)


def exact_pow_half(values: np.ndarray) -> np.ndarray:
    """Elementwise Python ``x ** 0.5`` over a float array (bit-identical)."""
    values = np.asarray(values, dtype=np.float64)
    unique, inverse = np.unique(values, return_inverse=True)
    roots = np.array([v ** 0.5 for v in unique.tolist()], dtype=np.float64)
    return roots[inverse].reshape(values.shape)


def rowwise_ordered_sum(indptr: np.ndarray, values: np.ndarray,
                        init: np.ndarray) -> np.ndarray:
    """Per-row left-to-right sum of a ragged array, seeded by ``init``.

    Replays, for every row at once, the scalar accumulation
    ``acc = init[i]; for v in row: acc += v``.  Float addition is
    order-dependent, so ``np.add.reduceat`` (pairwise summation) or a
    matmul (unspecified order) would not be bit-identical to the scalar
    loop.  Instead the ragged rows are scattered into a dense
    ``rows x max_row_length`` matrix padded with ``+0.0`` and accumulated
    column by column.

    The ``+0.0`` padding is bitwise-safe only when no partial sum can be
    ``-0.0`` (``x + 0.0 == x`` for every other ``x``).  That holds for the
    log-likelihood accumulations this serves: every addend is non-positive
    and a left-to-right sum of non-positive floats never produces ``-0.0``.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    n_rows = len(indptr) - 1
    totals = np.array(init, dtype=np.float64, copy=True)
    if n_rows == 0 or values.size == 0:
        return totals
    if values.size <= _SMALL_ROWSUM:
        # Small batches (page-granularity scoring): replay the scalar loop
        # outright.  Python float ``+`` is the same IEEE-754 addition in the
        # same left-to-right order, so this is bit-identical by definition
        # and skips the scatter set-up cost entirely.
        value_list = values.tolist()
        bounds = indptr.tolist()
        accumulators = totals.tolist()
        for i in range(n_rows):
            acc = accumulators[i]
            for j in range(bounds[i], bounds[i + 1]):
                acc += value_list[j]
            accumulators[i] = acc
        return np.asarray(accumulators, dtype=np.float64)
    lengths = np.diff(indptr)
    width = int(lengths.max())
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), lengths)
    positions = np.arange(values.size, dtype=np.int64) - indptr[rows]
    padded = np.zeros((n_rows, width), dtype=np.float64)
    padded[rows, positions] = values
    for j in range(width):
        totals = totals + padded[:, j]
    return totals


def first_lexicographic_argmax(primary: np.ndarray,
                               secondary: np.ndarray) -> int:
    """Index of the first lexicographic maximum of ``(primary, secondary)``.

    Equivalent to scanning the pairs in order and keeping the current best
    only when a later pair compares *strictly greater* — the tie-break
    contract of :class:`repro.core.selection.ContextAwareSelection`.
    """
    primary = np.asarray(primary)
    secondary = np.asarray(secondary)
    if primary.size == 0:
        raise ValueError("argmax of empty candidate arrays")
    best_primary = primary.max()
    on_primary = primary == best_primary
    best_secondary = secondary[on_primary].max()
    return int(np.flatnonzero(on_primary & (secondary == best_secondary))[0])
