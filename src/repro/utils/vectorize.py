"""Exact-arithmetic helpers for the vectorized scoring kernels.

The selection hot path is pinned by a golden snapshot
(``tests/data/fig13_smoke_golden.json``) that is compared *exactly*, so the
sparse-matrix kernels in :mod:`repro.search` / :mod:`repro.core` must
reproduce the scalar reference implementations bit for bit.  Two scalar
operations stand in the way:

* ``math.log(x)`` and ``numpy.log(x)`` may disagree by an ULP (libm vs the
  vectorized polynomial), and
* Python's ``x ** 0.5`` may disagree with both ``numpy.sqrt`` and
  ``numpy.power``.

:func:`exact_log` and :func:`exact_pow_half` close the gap: they reduce an
array to its unique values, apply the *scalar* libm call per unique value,
and scatter the results back.  Scoring arrays here are highly repetitive
(term frequencies, clamped utilities), so the unique set is small and the
scalar loop negligible — and the output is bit-identical to mapping the
scalar operation over the array, independent of the numpy version or CPU.

:func:`first_lexicographic_argmax` replicates the selection loop's
"strictly greater wins" tuple comparison: the returned index is the first
position attaining the lexicographic maximum of ``(primary, secondary)``.
"""

from __future__ import annotations

import math

import numpy as np


def exact_log(values: np.ndarray) -> np.ndarray:
    """Elementwise ``math.log`` over a float array (bit-identical to scalar).

    Raises ``ValueError`` (from ``math.log``) on non-positive inputs, just
    like the scalar reference path would.
    """
    values = np.asarray(values, dtype=np.float64)
    unique, inverse = np.unique(values, return_inverse=True)
    logs = np.array([math.log(v) for v in unique.tolist()], dtype=np.float64)
    return logs[inverse].reshape(values.shape)


def exact_pow_half(values: np.ndarray) -> np.ndarray:
    """Elementwise Python ``x ** 0.5`` over a float array (bit-identical)."""
    values = np.asarray(values, dtype=np.float64)
    unique, inverse = np.unique(values, return_inverse=True)
    roots = np.array([v ** 0.5 for v in unique.tolist()], dtype=np.float64)
    return roots[inverse].reshape(values.shape)


def first_lexicographic_argmax(primary: np.ndarray,
                               secondary: np.ndarray) -> int:
    """Index of the first lexicographic maximum of ``(primary, secondary)``.

    Equivalent to scanning the pairs in order and keeping the current best
    only when a later pair compares *strictly greater* — the tie-break
    contract of :class:`repro.core.selection.ContextAwareSelection`.
    """
    primary = np.asarray(primary)
    secondary = np.asarray(secondary)
    if primary.size == 0:
        raise ValueError("argmax of empty candidate arrays")
    best_primary = primary.max()
    on_primary = primary == best_primary
    best_secondary = secondary[on_primary].max()
    return int(np.flatnonzero(on_primary & (secondary == best_secondary))[0])
