"""Write-once, attach-many corpus + index store over shared buffers.

The distributed path's dominant fixed cost is worker-side preparation:
every process rebuilds the corpus and the corpus-wide inverted index from a
:class:`~repro.exec.specs.CorpusSpec`.  This module removes that cost: the
orchestrator *publishes* a realised corpus — entities, per-page pickled
blobs and the index's :class:`~repro.search.index.TermDocumentMatrix`
arrays (CSR ``indptr``/``indices``/``data``, document-length and
collection-frequency vectors, doc-id/term tables) — into one
``multiprocessing.shared_memory`` segment or mmap'd file, and workers
*attach*: numeric arrays become zero-copy ``np.ndarray`` views over the
shared buffer and feed a read-only
:class:`~repro.search.index.AttachedInvertedIndex`; pages deserialise
lazily, one blob at a time, on first access.

Layout of a published segment::

    [8-byte magic][8-byte LE header length][JSON header][payload]

The JSON header names every section's (payload-relative) offset, length
and — for arrays — dtype and shape.  Pages are streamed into the writer in
sorted page-id order (:meth:`CorpusStoreWriter.add_page` enforces this), so
the stored doc-id order equals the order
:meth:`~repro.search.engine.SearchEngine.shared_index` adds documents in
and an attached index is bit-for-bit the index a worker would have rebuilt.

Memory model and cleanup
------------------------
The publishing process owns the segment: :func:`release` (or the module's
``atexit`` hook) unlinks it.  Unlinking only removes the *name* — processes
that already attached keep valid mappings until they exit, so releasing a
store while a persistent worker pool still holds attachments is safe.
Attachments are cached per process and stay open for the process lifetime;
a worker whose segment has vanished before it ever attached simply falls
back to the rebuild path (see :meth:`~repro.exec.specs.CorpusSpec.build`).

On platforms without the ``fork`` start method and older than Python 3.13,
the ``resource_tracker`` may unlink a shm segment when an attaching worker
exits (bpo-39959); the rebuild fallback keeps runs correct there, and
``mmap`` mode avoids the tracker entirely.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import mmap as mmap_module
import os
import pickle
import struct
import tempfile
import uuid
from dataclasses import dataclass
from pathlib import Path
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.aspects.classifier import AspectClassifierSuite
from repro.corpus.corpus import Corpus, content_digester, feed_entity, feed_page
from repro.corpus.document import Entity, Page
from repro.corpus.domains import get_domain
from repro.corpus.synthetic import BaseCorpus, CorpusConfig, CorpusGenerator
from repro.corpus.tokenizer import Tokenizer
from repro.search.index import (
    AttachedInvertedIndex,
    InvertedIndex,
    TermDocumentMatrix,
)

#: Store modes (the CLI's ``--corpus-store`` choices).
MODE_AUTO = "auto"
MODE_OFF = "off"
MODE_SHM = "shm"
MODE_MMAP = "mmap"
STORE_MODES = (MODE_AUTO, MODE_OFF, MODE_SHM, MODE_MMAP)

_MAGIC = b"L2QSTOR1"
_HEADER_PREFIX = struct.Struct("<Q")
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class StoreError(RuntimeError):
    """Base error of the corpus store (publish or attach failed)."""


class StoreNotFoundError(StoreError):
    """The handle's segment/file no longer exists (released or never published)."""


@dataclass(frozen=True)
class StoreHandle:
    """A picklable reference to one published store.

    ``mode`` is ``"shm"`` or ``"mmap"``; ``name`` is the shared-memory
    segment name or the file path; ``digest`` is the
    :meth:`~repro.corpus.corpus.Corpus.content_digest` of the clean
    realisation the store serialises (computed incrementally at publish
    time), so attached corpora can answer digest checks without
    re-hashing.
    """

    mode: str
    name: str
    size: int
    digest: Optional[str] = None

    def key(self) -> Tuple[str, str]:
        """Process-local cache key of this handle's segment."""
        return (self.mode, self.name)


#: Segments this process published, keyed by handle key.  Entries own the
#: underlying resource and are unlinked by :func:`release` / at exit.
_PUBLISHED: Dict[Tuple[str, str], object] = {}

#: Attachments opened by this process, keyed by handle key.  Shared across
#: every spec/cell that attaches the same store, so one worker maps each
#: segment once and all cells share one lazy page cache and one index.
_ATTACHMENTS: Dict[Tuple[str, str], "StoreAttachment"] = {}

_ATEXIT_REGISTERED = False
_DEFAULT_MODE: Optional[str] = None


def _register_atexit() -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(release_all)
        _ATEXIT_REGISTERED = True


def default_mode() -> str:
    """The concrete mode ``"auto"`` resolves to (probed once per process)."""
    global _DEFAULT_MODE
    if _DEFAULT_MODE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _DEFAULT_MODE = MODE_SHM
        except Exception:
            _DEFAULT_MODE = MODE_MMAP
    return _DEFAULT_MODE


def resolve_mode(mode: str) -> str:
    """Validate and resolve a store mode (``auto`` → probed concrete mode)."""
    if mode not in STORE_MODES:
        raise ValueError(f"unknown corpus-store mode {mode!r}; "
                         f"options: {STORE_MODES}")
    return default_mode() if mode == MODE_AUTO else mode


def _classifier_digest(meta: Mapping[str, object],
                       arrays: Mapping[str, Mapping[str, np.ndarray]]) -> str:
    """Content digest of one serialised classifier suite.

    Hashes the canonical JSON of the metadata plus the raw bytes of every
    per-aspect prior/log-prob array.  Recomputed over the attached views at
    attach time; a mismatch means the block is corrupt (or was produced by
    an incompatible writer) and the attaching side falls back to retraining.
    """
    digest = hashlib.sha256()
    digest.update(json.dumps(meta, sort_keys=True).encode("utf-8"))
    for aspect in meta["aspects"]:
        entry = arrays[aspect]
        digest.update(np.ascontiguousarray(entry["prior"]).tobytes())
        digest.update(np.ascontiguousarray(entry["logprob"]).tobytes())
    return digest.hexdigest()


# -- Writer ------------------------------------------------------------------
class CorpusStoreWriter:
    """Streams one corpus into a publishable segment.

    Feed pages in sorted page-id order via :meth:`add_page` — each page is
    pickled immediately (only its compact blob is retained) and folded into
    the inverted index and the running content digest, so arbitrarily large
    corpora never materialise as object graphs in the publishing process.
    """

    def __init__(self, config: CorpusConfig,
                 entities: Mapping[str, Entity]) -> None:
        self._config = config.base_config()
        self._entities = {eid: entities[eid] for eid in sorted(entities)}
        self._index = InvertedIndex()
        self._page_blobs = bytearray()
        self._page_ids: List[str] = []
        self._page_entity_ids: List[str] = []
        self._page_offsets: List[int] = [0]
        self._classifier_suites: Dict[str, Tuple[Dict[str, object],
                                                 Dict[str, Dict[str, np.ndarray]]]] = {}
        self._published = False
        # The clean-corpus content digest, fed incrementally in the same
        # canonical order Corpus.content_digest uses (entities sorted, then
        # pages in sorted id order == stream order).
        self._digest = content_digester(self._config.domain)
        for entity_id, entity in self._entities.items():
            feed_entity(self._digest, entity_id, entity)

    @property
    def num_pages(self) -> int:
        """Number of pages streamed so far."""
        return len(self._page_ids)

    def add_page(self, page: Page) -> None:
        """Append one page (pages must arrive in sorted page-id order)."""
        if self._published:
            raise StoreError("writer already published")
        if self._page_ids and page.page_id <= self._page_ids[-1]:
            raise StoreError(
                f"pages must be streamed in sorted page-id order; got "
                f"{page.page_id!r} after {self._page_ids[-1]!r}")
        if page.entity_id not in self._entities:
            raise StoreError(f"page {page.page_id!r} references unknown "
                             f"entity {page.entity_id!r}")
        # Pickle a cache-free copy: a publisher that already computed
        # page.tokens must produce the same bytes as one that did not.
        blob = pickle.dumps(
            Page(page_id=page.page_id, entity_id=page.entity_id,
                 paragraphs=page.paragraphs),
            protocol=_PICKLE_PROTOCOL)
        self._page_blobs += blob
        self._page_offsets.append(len(self._page_blobs))
        self._page_ids.append(page.page_id)
        self._page_entity_ids.append(page.entity_id)
        self._index.add_document(page.page_id, page.tokens)
        feed_page(self._digest, page)

    def add_pages(self, pages: Iterable[Page]) -> None:
        """Stream every page of an iterable (e.g. ``generate_pages()``)."""
        for page in pages:
            self.add_page(page)

    def add_classifier_suite(self, key: str,
                             suite: AspectClassifierSuite) -> None:
        """Publish a trained aspect-classifier suite alongside the corpus.

        The suite's raw-array state (shared vocabulary table plus one
        class-prior vector and log-probability matrix per aspect) lands as
        zero-copy-attachable sections; workers restore it with
        :meth:`StoreAttachment.classifier_suite` instead of retraining.
        ``key`` is the caller's suite identity (e.g. derived from the split
        seed).  The classifier block does not enter the corpus content
        digest — the stored corpus stays byte-compatible with a store that
        carries no classifiers.
        """
        if self._published:
            raise StoreError("writer already published")
        if key in self._classifier_suites:
            raise StoreError(f"classifier suite {key!r} already added")
        self._classifier_suites[key] = suite.to_state()

    def _assemble(self) -> Tuple[bytes, bytearray, str]:
        sections: Dict[str, Dict[str, object]] = {}
        payload = bytearray()

        def put_bytes(name: str, data: bytes) -> None:
            sections[name] = {"offset": len(payload), "length": len(data)}
            payload.extend(data)

        def put_array(name: str, array: np.ndarray) -> None:
            data = np.ascontiguousarray(array).tobytes()
            sections[name] = {"offset": len(payload), "length": len(data),
                              "dtype": str(array.dtype),
                              "shape": list(array.shape)}
            payload.extend(data)

        snapshot = self._index.term_document_matrix()
        if list(snapshot.doc_ids) != self._page_ids:
            raise StoreError("index doc order diverged from page stream order")
        digest = self._digest.hexdigest()

        put_bytes("config", pickle.dumps(self._config, protocol=_PICKLE_PROTOCOL))
        put_bytes("entities", pickle.dumps(self._entities, protocol=_PICKLE_PROTOCOL))
        put_bytes("page_ids", pickle.dumps(tuple(self._page_ids),
                                           protocol=_PICKLE_PROTOCOL))
        put_bytes("page_entity_ids", pickle.dumps(tuple(self._page_entity_ids),
                                                  protocol=_PICKLE_PROTOCOL))
        put_array("page_offsets", np.asarray(self._page_offsets, dtype=np.int64))
        put_bytes("pages", bytes(self._page_blobs))
        put_array("indptr", snapshot.matrix.indptr)
        put_array("indices", snapshot.matrix.indices)
        put_array("data", snapshot.matrix.data)
        put_array("doc_lengths", snapshot.doc_lengths)
        put_array("collection_frequencies", snapshot.collection_frequencies)
        put_bytes("terms", pickle.dumps(snapshot.terms, protocol=_PICKLE_PROTOCOL))

        if self._classifier_suites:
            classifier_table: Dict[str, Dict[str, object]] = {}
            for key in sorted(self._classifier_suites):
                meta, arrays = self._classifier_suites[key]
                classifier_table[key] = {
                    "meta": meta,
                    "digest": _classifier_digest(meta, arrays),
                }
                for aspect in meta["aspects"]:
                    put_array(f"clf/{key}/{aspect}/prior",
                              arrays[aspect]["prior"])
                    put_array(f"clf/{key}/{aspect}/logprob",
                              arrays[aspect]["logprob"])
            put_bytes("classifiers", pickle.dumps(classifier_table,
                                                  protocol=_PICKLE_PROTOCOL))

        header = {
            "version": 1,
            "domain": self._config.domain,
            "digest": digest,
            "total_tokens": snapshot.total_tokens,
            "matrix_shape": [snapshot.num_documents, snapshot.num_terms],
            "sections": sections,
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        prefix = _MAGIC + _HEADER_PREFIX.pack(len(header_bytes)) + header_bytes
        return prefix, payload, digest

    def publish(self, mode: str = MODE_AUTO) -> StoreHandle:
        """Seal the writer into a shared segment and return its handle."""
        if self._published:
            raise StoreError("writer already published")
        mode = resolve_mode(mode)
        if mode == MODE_OFF:
            raise StoreError("cannot publish with the store disabled")
        prefix, payload, digest = self._assemble()
        total = len(prefix) + len(payload)
        _register_atexit()
        if mode == MODE_SHM:
            from multiprocessing import shared_memory

            try:
                segment = shared_memory.SharedMemory(create=True, size=total)
            except Exception as error:
                raise StoreError(f"shared-memory publish failed: {error}") from error
            segment.buf[:len(prefix)] = prefix
            segment.buf[len(prefix):total] = payload
            handle = StoreHandle(mode=MODE_SHM, name=segment.name,
                                 size=total, digest=digest)
            _PUBLISHED[handle.key()] = segment
        else:
            path = Path(tempfile.gettempdir()) / \
                f"l2q_store_{uuid.uuid4().hex[:16]}.bin"
            try:
                with open(path, "wb") as fh:
                    fh.write(prefix)
                    fh.write(payload)
            except OSError as error:
                raise StoreError(f"mmap publish failed: {error}") from error
            handle = StoreHandle(mode=MODE_MMAP, name=str(path),
                                 size=total, digest=digest)
            _PUBLISHED[handle.key()] = path
        self._published = True
        return handle


def publish_store(config: CorpusConfig, entities: Mapping[str, Entity],
                  pages: Iterable[Page], *, mode: str = MODE_AUTO,
                  expected_digest: Optional[str] = None) -> StoreHandle:
    """Publish one realised corpus (entities + page stream) as a store.

    ``pages`` must iterate in sorted page-id order
    (:meth:`~repro.corpus.corpus.Corpus.iter_pages` does).  When
    ``expected_digest`` is given, the writer's incrementally computed
    digest must match it — a cheap end-to-end check that the stream really
    was the corpus the caller believes it published.
    """
    writer = CorpusStoreWriter(config, entities)
    writer.add_pages(pages)
    handle = writer.publish(mode=mode)
    if expected_digest is not None and handle.digest != expected_digest:
        release(handle)
        raise StoreError(
            f"published digest {handle.digest} does not match the "
            f"caller's corpus digest {expected_digest}")
    return handle


def publish_generated(config: CorpusConfig, *,
                      mode: str = MODE_AUTO) -> StoreHandle:
    """Stream-generate a base corpus straight into a store.

    The large-corpus path: pages flow from
    :meth:`~repro.corpus.synthetic.CorpusGenerator.generate_pages` into the
    writer one at a time and are dropped after pickling, so the publishing
    process never holds the full page set as objects.
    """
    generator = CorpusGenerator(config.base_config())
    entities = generator.generate_entities()
    writer = CorpusStoreWriter(config, entities)
    writer.add_pages(generator.generate_pages(entities))
    return writer.publish(mode=mode)


# -- Attachment --------------------------------------------------------------
def _open_shm(name: str):
    """Attach a shm segment, avoiding resource-tracker ownership if possible."""
    from multiprocessing import shared_memory

    try:
        # Python >= 3.13: attaching must not enrol the segment with this
        # process's resource tracker (the tracker would unlink it at exit).
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class _LazyPageMap(Mapping):
    """``{page_id: Page}`` over a store's pickled blobs, loaded per access."""

    __slots__ = ("_attachment", "_page_ids", "_positions", "_cache")

    def __init__(self, attachment: "StoreAttachment") -> None:
        self._attachment = attachment
        self._page_ids = attachment.page_ids()
        self._positions = {pid: i for i, pid in enumerate(self._page_ids)}
        self._cache: Dict[str, Page] = {}

    def __getitem__(self, page_id: str) -> Page:
        page = self._cache.get(page_id)
        if page is None:
            position = self._positions.get(page_id)
            if position is None:
                raise KeyError(page_id)
            page = self._attachment.load_page(position)
            self._cache[page_id] = page
        return page

    def __iter__(self):
        return iter(self._page_ids)

    def __len__(self) -> int:
        return len(self._page_ids)

    def __contains__(self, page_id: object) -> bool:
        return page_id in self._positions


class StoreBackedCorpus(Corpus):
    """A :class:`Corpus` whose pages and index live in a published store.

    Construction touches only the store's metadata sections — pages
    deserialise lazily on first access and the corpus-wide index attaches
    as read-only array views (see :meth:`shared_index_supplier`), so an
    engine over this corpus performs **zero** worker-side index builds.
    Pickling ships only the :class:`StoreHandle`; the receiving process
    re-attaches.
    """

    def __init__(self, attachment: "StoreAttachment") -> None:
        # Mirror Corpus.__init__ without realising any page: the store
        # already knows the page → entity map and wrote validated data.
        self.domain_spec = attachment.domain_spec()
        self.entities = dict(attachment.entities())
        self.pages = _LazyPageMap(attachment)
        self.type_system = self.domain_spec.build_type_system()
        self.tokenizer = Tokenizer(self.type_system)
        self._pages_by_entity = attachment.pages_by_entity()
        self._vocabulary = None
        self._attachment = attachment
        #: The handle this corpus attached (probed by batch outcomes).
        self.store_handle = attachment.handle
        #: Publish-time content digest — answers digest checks without a
        #: full re-hash (the bytes *are* the orchestrator's corpus).
        self.store_digest = attachment.digest

    def shared_index_supplier(self) -> InvertedIndex:
        """The attached read-only corpus-wide index.

        :meth:`~repro.search.engine.SearchEngine.shared_index` calls this
        instead of re-indexing every page when the corpus carries it.
        """
        return self._attachment.index()

    def classifier_suite(self, key: str) -> AspectClassifierSuite:
        """A trained suite published with this corpus.

        Raises :class:`StoreError` when the store carries no suite under
        ``key`` (or its digest check fails) — callers fall back to the
        bit-identical retrain path.
        """
        return self._attachment.classifier_suite(key)

    def subset(self, entity_ids: Iterable[str]) -> Corpus:
        keep = set(entity_ids)
        unknown = keep - set(self.entities)
        if unknown:
            raise KeyError(f"unknown entity ids: {sorted(unknown)}")
        entities = {eid: self.entities[eid] for eid in keep}
        # Realise only the kept entities' pages (in global page-id order,
        # matching the dict order Corpus.subset produces from generated
        # corpora) instead of loading every blob to filter.
        pages = {pid: self.pages[pid]
                 for pid in self.pages
                 if pid in {p for eid in keep
                            for p in self._pages_by_entity.get(eid, [])}}
        return Corpus(self.domain_spec, entities, pages,
                      type_system=self.type_system)

    def __reduce__(self):
        return (attach_corpus, (self.store_handle,))


class StoreAttachment:
    """One process's mapping of a published store.

    Cheap to create (header parse + a few small pickles) and cached per
    process by :func:`attach` — every spec/cell attaching the same handle
    shares one page cache and one attached index.
    """

    def __init__(self, handle: StoreHandle) -> None:
        self.handle = handle
        self._segment = None
        self._mmap = None
        self._file = None
        if handle.mode == MODE_SHM:
            try:
                self._segment = _open_shm(handle.name)
            except FileNotFoundError as error:
                raise StoreNotFoundError(
                    f"shared-memory segment {handle.name!r} not found "
                    f"(released, or published by another machine?)") from error
            except Exception as error:
                raise StoreError(f"cannot attach {handle!r}: {error}") from error
            self._buf = self._segment.buf
            # Attachments live for the process lifetime: numpy views over
            # `buf` stay exported, so SharedMemory.close() can never succeed
            # and its __del__ would spray ignored BufferErrors at interpreter
            # teardown.  Detach the close; the OS reclaims mappings at exit.
            self._segment.close = lambda: None  # type: ignore[method-assign]
        elif handle.mode == MODE_MMAP:
            try:
                self._file = open(handle.name, "rb")
            except FileNotFoundError as error:
                raise StoreNotFoundError(
                    f"store file {handle.name!r} not found") from error
            self._mmap = mmap_module.mmap(self._file.fileno(), 0,
                                          access=mmap_module.ACCESS_READ)
            self._buf = memoryview(self._mmap)
        else:
            raise StoreError(f"unknown store mode {handle.mode!r}")
        if bytes(self._buf[:8]) != _MAGIC:
            self.close()
            raise StoreError(f"{handle.name!r} is not a corpus store segment")
        (header_length,) = _HEADER_PREFIX.unpack(bytes(self._buf[8:16]))
        self._header = json.loads(
            bytes(self._buf[16:16 + header_length]).decode("utf-8"))
        self._base = 16 + header_length
        self.digest: Optional[str] = self._header.get("digest")
        self._pickles: Dict[str, object] = {}
        self._page_offsets: Optional[np.ndarray] = None
        self._pages_section: Optional[Tuple[int, int]] = None
        self._snapshot: Optional[TermDocumentMatrix] = None
        self._classifier_cache: Dict[str, AspectClassifierSuite] = {}
        self._index: Optional[AttachedInvertedIndex] = None
        self._corpus: Optional[StoreBackedCorpus] = None
        self._base_corpus: Optional[BaseCorpus] = None
        self._closed = False

    # -- Section access ------------------------------------------------------
    def _section(self, name: str) -> Dict[str, object]:
        try:
            return self._header["sections"][name]
        except KeyError:
            raise StoreError(f"store has no section {name!r}") from None

    def _section_view(self, name: str) -> memoryview:
        section = self._section(name)
        start = self._base + int(section["offset"])
        return self._buf[start:start + int(section["length"])]

    def _unpickle(self, name: str) -> object:
        value = self._pickles.get(name)
        if value is None:
            value = pickle.loads(self._section_view(name))
            self._pickles[name] = value
        return value

    def _array(self, name: str) -> np.ndarray:
        """A zero-copy read-only array view over the shared buffer."""
        section = self._section(name)
        shape = tuple(section["shape"])
        count = int(np.prod(shape)) if shape else 1
        array = np.frombuffer(self._buf, dtype=np.dtype(section["dtype"]),
                              count=count,
                              offset=self._base + int(section["offset"]))
        array = array.reshape(shape)
        if array.flags.writeable:
            array.flags.writeable = False
        return array

    # -- Corpus pieces -------------------------------------------------------
    def domain_spec(self):
        """The registry domain spec this store's corpus belongs to."""
        return get_domain(self._header["domain"])

    def config(self) -> CorpusConfig:
        """The (perturbation-free) base config of the stored corpus."""
        return self._unpickle("config")

    def entities(self) -> Dict[str, Entity]:
        """The stored entities, keyed (and sorted) by entity id."""
        return self._unpickle("entities")

    def page_ids(self) -> Tuple[str, ...]:
        """All page ids, sorted (the storage and doc-id order)."""
        return self._unpickle("page_ids")

    def pages_by_entity(self) -> Dict[str, List[str]]:
        """``{entity_id: [page_id, ...]}``, page lists sorted."""
        out: Dict[str, List[str]] = {}
        for page_id, entity_id in zip(self.page_ids(),
                                      self._unpickle("page_entity_ids")):
            out.setdefault(entity_id, []).append(page_id)
        return out

    def load_page(self, position: int) -> Page:
        """Deserialise the page at ``position`` in the page table."""
        if self._page_offsets is None:
            self._page_offsets = self._array("page_offsets")
            section = self._section("pages")
            self._pages_section = (self._base + int(section["offset"]),
                                   int(section["length"]))
        start_base, _ = self._pages_section
        start = start_base + int(self._page_offsets[position])
        end = start_base + int(self._page_offsets[position + 1])
        return pickle.loads(self._buf[start:end])

    def snapshot(self) -> TermDocumentMatrix:
        """The corpus-wide CSR snapshot as views over the shared buffer."""
        if self._snapshot is None:
            shape = tuple(self._header["matrix_shape"])
            matrix = sparse.csr_matrix(
                (self._array("data"), self._array("indices"),
                 self._array("indptr")),
                shape=shape, copy=False)
            # The stored arrays came from a canonical CSR build: mark them
            # so scipy never attempts an in-place sort of read-only views.
            matrix.has_sorted_indices = True
            matrix.has_canonical_format = True
            self._snapshot = TermDocumentMatrix(
                self.page_ids(), self._unpickle("terms"), matrix,
                self._array("doc_lengths"),
                self._array("collection_frequencies"),
                int(self._header["total_tokens"]))
        return self._snapshot

    def classifier_keys(self) -> List[str]:
        """Keys of the trained suites this store carries (sorted; may be empty)."""
        if "classifiers" not in self._header["sections"]:
            return []
        return sorted(self._unpickle("classifiers"))

    def classifier_suite(self, key: str) -> AspectClassifierSuite:
        """Attach one published trained suite (cached per process).

        The per-aspect prior/log-prob arrays stay zero-copy views over the
        shared buffer; only the small metadata block is unpickled.  The
        block's content digest is recomputed over the attached bytes first —
        raises :class:`StoreError` on a missing key, a store without a
        classifier block, or a digest mismatch, and the caller falls back
        to the bit-identical retrain path.
        """
        suite = self._classifier_cache.get(key)
        if suite is None:
            table = self._unpickle("classifiers") \
                if "classifiers" in self._header["sections"] else {}
            entry = table.get(key)
            if entry is None:
                raise StoreError(f"store has no classifier suite {key!r}")
            meta = entry["meta"]
            arrays = {
                aspect: {"prior": self._array(f"clf/{key}/{aspect}/prior"),
                         "logprob": self._array(f"clf/{key}/{aspect}/logprob")}
                for aspect in meta["aspects"]
            }
            if _classifier_digest(meta, arrays) != entry["digest"]:
                raise StoreError(
                    f"classifier suite {key!r} failed its digest check")
            suite = AspectClassifierSuite.from_state(meta, arrays)
            self._classifier_cache[key] = suite
        return suite

    def index(self) -> AttachedInvertedIndex:
        """The read-only corpus-wide inverted index (built once, shared)."""
        if self._index is None:
            self._index = AttachedInvertedIndex(self.snapshot())
        return self._index

    def corpus(self) -> StoreBackedCorpus:
        """The clean realised corpus, lazily page-backed by this store."""
        if self._corpus is None:
            self._corpus = StoreBackedCorpus(self)
        return self._corpus

    def base_corpus(self) -> BaseCorpus:
        """The stored corpus as a shareable, perturbable base snapshot."""
        if self._base_corpus is None:
            self._base_corpus = BaseCorpus(
                config=self.config(),
                entities=MappingProxyType(self.entities()),
                pages=_LazyPageMap(self))
        return self._base_corpus

    def close(self) -> None:
        """Drop this process's mapping (the segment itself stays published).

        Live array views keep shm buffers exported; closing then raises
        ``BufferError`` and the mapping stays open — harmless, the OS
        reclaims it at process exit.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self._segment is not None:
                self._segment.close()
            if self._mmap is not None:
                self._mmap.close()
            if self._file is not None:
                self._file.close()
        except BufferError:
            pass


def attach(handle: StoreHandle) -> StoreAttachment:
    """Attach a published store (process-locally cached per handle)."""
    key = handle.key()
    attachment = _ATTACHMENTS.get(key)
    if attachment is None:
        attachment = StoreAttachment(handle)
        _ATTACHMENTS[key] = attachment
    return attachment


def attach_corpus(handle: StoreHandle) -> StoreBackedCorpus:
    """Attach and return the store's clean corpus (the unpickle target)."""
    return attach(handle).corpus()


def release(handle: StoreHandle) -> None:
    """Unlink one published store (idempotent).

    Attached processes keep valid mappings until they exit; only the name
    is removed, so no new attach can succeed afterwards.
    """
    entry = _PUBLISHED.pop(handle.key(), None)
    _ATTACHMENTS.pop(handle.key(), None)
    if handle.mode == MODE_SHM:
        segment = entry
        if segment is None:
            try:
                segment = _open_shm(handle.name)
            except FileNotFoundError:
                return
            except Exception:
                return
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        try:
            segment.close()
        except BufferError:
            pass
    else:
        try:
            os.remove(handle.name)
        except FileNotFoundError:
            pass


def release_all() -> None:
    """Unlink every store this process published (the atexit hook)."""
    for key in list(_PUBLISHED):
        mode, name = key
        release(StoreHandle(mode=mode, name=name, size=0))


def published_handles() -> List[Tuple[str, str]]:
    """Keys of the stores this process currently has published."""
    return list(_PUBLISHED)
