"""Pluggable execution backends: one orchestration API, three engines.

Every fan-out site in the project — :meth:`Harvester.harvest_many`, the
split batches of :class:`~repro.eval.runner.ExperimentRunner` and the
scenario cells of :class:`~repro.eval.scenario_sweep.ScenarioSweep` —
funnels through the same tiny contract: an :class:`ExecutionBackend` maps a
callable over a list of payloads and returns the results *in payload order*.
Because every job's randomness derives only from its seed (never from
scheduling), swapping the backend changes wall-clock behaviour but not one
bit of the results.

Three engines are built in and registered through the shared
:class:`~repro.utils.registry.NamedRegistry`:

* ``serial`` — a plain in-order loop; the reference semantics.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; right for
  workloads dominated by lock-free CPU work under the GIL plus simulated
  I/O, and for shared-memory caches (one engine, one result cache).
* ``process`` — *sharded* multiprocess execution: payloads are split into
  at most ``workers`` contiguous shards, each shard is shipped to a worker
  process and executed as an in-order loop there.  Contiguous sharding
  keeps neighbouring payloads (same split, same domain) in the same worker
  so process-local caches — rebuilt corpora, trained classifier suites,
  search indexes — amortise across a shard.  Payloads and the mapped
  callable must be picklable; results travel back by pickle too.

Custom backends register the same way rankers and scenarios do::

    from repro.exec import register_backend

    @register_backend("my-cluster")
    def _my_cluster(workers: int = 8) -> MyClusterBackend:
        return MyClusterBackend(workers)
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar, Union

from repro.utils.registry import NamedRegistry

T = TypeVar("T")
R = TypeVar("R")

BACKEND_SERIAL = "serial"
BACKEND_THREAD = "thread"
BACKEND_PROCESS = "process"
BACKEND_SERVING = "serving"


class ExecutionBackend:
    """Contract shared by all execution engines.

    Attributes
    ----------
    name:
        Registry name of the engine.
    workers:
        Degree of parallelism (1 for the serial engine).
    distributed:
        True when jobs execute in *another process*: payloads must be
        picklable and in-memory side effects (cache fills, statistics
        counters) stay in the worker instead of the caller's objects.
        Orchestrators use this flag to choose spec-based payloads over
        live object graphs.
    """

    name: str = "abstract"
    workers: int = 1
    distributed: bool = False

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item and return results in item order."""
        raise NotImplementedError

    def map_tasks(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Like :meth:`map`, but schedule every item independently.

        For items that are already coarse, self-contained batches (e.g. the
        split-first :class:`~repro.exec.specs.HarvestBatchSpec` payloads),
        contiguous sharding would pin each batch to a fixed worker and lose
        load balance.  ``map_tasks`` asks the engine for per-item
        scheduling — on the process backend every item becomes its own pool
        task, so idle workers steal the next pending batch.  In-process
        engines have no sharding to bypass; the default simply delegates to
        :meth:`map`.  Results are returned in item order either way.
        """
        return self.map(fn, items)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """The reference engine: a plain in-order loop on the calling thread."""

    name = BACKEND_SERIAL

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """Fan out across a thread pool (shared memory, GIL-interleaved)."""

    name = BACKEND_THREAD

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if self.workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items))


def _run_shard(fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
    """Execute one shard serially inside a worker process.

    Module-level so it pickles by reference under every start method.
    """
    return [fn(item) for item in items]


class ProcessBackend(ExecutionBackend):
    """Sharded multiprocess execution.

    The payload list is cut into at most ``workers`` contiguous shards;
    each shard becomes one task in a :class:`ProcessPoolExecutor` and runs
    as an in-order loop in its worker.  One shard therefore pickles the
    mapped callable (and anything it closes over, e.g. a bound method's
    instance) exactly once, and process-local caches amortise across all
    payloads of the shard.

    The worker pool is created lazily and persists across :meth:`map`
    calls, so those process-local caches (rebuilt corpora, prepared
    splits) also amortise across calls — e.g. across the per-split batches
    of a multi-split evaluation.  Call :meth:`close` (or drop the backend)
    to release the workers.
    """

    name = BACKEND_PROCESS
    distributed = True

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        workers = workers if workers is not None else (multiprocessing.cpu_count() or 1)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            # Prefer fork where available: no re-import, cheap corpus reuse.
            start_method = "fork" if "fork" in available else available[0]
        elif start_method not in available:
            raise ValueError(f"start method {start_method!r} not available; "
                             f"options: {available}")
        self.workers = workers
        self.start_method = start_method
        self._pool: Optional[ProcessPoolExecutor] = None

    def shards(self, items: Sequence[T]) -> List[List[T]]:
        """Cut ``items`` into at most ``workers`` contiguous shards."""
        items = list(items)
        if not items:
            return []
        shard_count = min(self.workers, len(items))
        size = -(-len(items) // shard_count)  # ceil division
        return [items[start:start + size] for start in range(0, len(items), size)]

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                             mp_context=context)
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent).

        Safe on a half-constructed instance (``__init__`` may raise before
        ``_pool`` exists, and ``__del__`` still runs).
        """
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown()
            self._pool = None

    def _abort(self) -> None:
        """Tear the pool down after a failed future, without waiting.

        ``close()`` would block behind every still-running sibling (a
        shutdown waits by default), so one poisoned batch could hide its
        error behind minutes of doomed work.  Aborting cancels the queued
        futures and returns immediately; in-flight ones finish in workers
        that are no longer ours.  The pool is dropped either way so a
        dead/broken pool cannot poison later calls.
        """
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        shards = self.shards(items)
        if not shards:
            return []
        try:
            futures = [self._executor().submit(_run_shard, fn, shard)
                       for shard in shards]
            results: List[R] = []
            for future in futures:
                results.extend(future.result())
            return results
        except Exception:
            self._abort()
            raise

    def map_tasks(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """One pool task per item: work-stealing scheduling, results in order.

        The per-item pickling cost this pays (vs one pickle per shard in
        :meth:`map`) only makes sense for coarse payloads — whole splits or
        sweep cells — where load balance matters more than dispatch
        overhead.
        """
        items = list(items)
        if not items:
            return []
        try:
            futures = [self._executor().submit(fn, item) for item in items]
            return [future.result() for future in futures]
        except Exception:
            self._abort()
            raise


_REGISTRY = NamedRegistry("backend")


def register_backend(name: str, factory: Callable[..., ExecutionBackend] = None,
                     *, overwrite: bool = False):
    """Register a backend factory (decorator or plain call)."""
    return _REGISTRY.register(name, factory, overwrite=overwrite)


def make_backend(name: str, workers: int = 1, **params) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    return _REGISTRY.make(name, workers=workers, **params)


def backend_names() -> List[str]:
    """Names of all registered backends, sorted."""
    return _REGISTRY.names()


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered backend."""
    return name in _REGISTRY


def resolve_backend(backend: Union[None, str, ExecutionBackend],
                    workers: int = 1) -> ExecutionBackend:
    """Coerce a backend argument (name, instance or None) to an instance.

    ``None`` preserves the historical ``workers=N`` behaviour: one worker
    means serial, several mean a thread pool.  A string resolves through
    the registry with ``workers`` forwarded; an instance is returned as-is
    (its own worker count wins).
    """
    if backend is None:
        return SerialBackend() if workers == 1 else ThreadBackend(workers)
    if isinstance(backend, str):
        return make_backend(backend, workers=workers)
    if isinstance(backend, ExecutionBackend):
        return backend
    raise TypeError(f"backend must be None, a registered name or an "
                    f"ExecutionBackend, got {type(backend).__name__}")


@register_backend(BACKEND_SERIAL)
def _serial_backend(workers: int = 1) -> SerialBackend:
    del workers  # The serial engine is single-worker by definition.
    return SerialBackend()


@register_backend(BACKEND_THREAD)
def _thread_backend(workers: int = 4) -> ThreadBackend:
    return ThreadBackend(workers)


@register_backend(BACKEND_PROCESS)
def _process_backend(workers: int = 4,
                     start_method: Optional[str] = None) -> ProcessBackend:
    return ProcessBackend(workers, start_method=start_method)


@register_backend(BACKEND_SERVING)
def _serving_backend(workers: int = 8, **params) -> ExecutionBackend:
    # Lazy import: repro.serving imports the harvester, which imports this
    # module — resolving the backend class at build time breaks the cycle.
    from repro.serving.runner import ServingBackend

    return ServingBackend(workers=workers, **params)
