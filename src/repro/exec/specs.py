"""Self-contained, picklable job specifications for distributed backends.

A process worker cannot receive live object graphs cheaply: the search
engine carries a lock, classifier suites and indexes are large, and shared
caches would stop being shared.  Distributed execution therefore ships
*specs* — plain dataclasses saying how to rebuild the world (config in) —
and receives plain result dataclasses back (result out).  Because every
component is deterministic given its seeds, a worker rebuilding a corpus,
split, classifier suite or engine from a spec produces bit-for-bit the
objects the caller would have built locally.

Workers keep small process-local caches (:meth:`CorpusSpec.build_base`
backed by a module-level LRU) so the expensive rebuilds amortise across the
contiguous shard a :class:`~repro.exec.backends.ProcessBackend` assigns
them — and, because the worker pool persists across ``map`` calls, across
successive batches too.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Optional, Tuple, TypeVar

from repro.core.config import L2QConfig
from repro.corpus.corpus import Corpus
from repro.corpus.synthetic import BaseCorpus, build_base, realise_base
from repro.perf import recorder as perf_recorder
from repro.scenarios import ScenarioSpec
from repro.store import StoreError, StoreHandle, attach

V = TypeVar("V")


class _ProcessLocalCache:
    """A tiny keyed LRU for per-worker rebuilt state.

    Keys are ``repr`` strings of spec dataclasses: deterministic within a
    process and cheap, without requiring hashability of nested configs.
    """

    def __init__(self, capacity: int = 4) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, object]" = OrderedDict()

    def reserve(self, capacity: int) -> None:
        """Grow (never shrink) the capacity.

        Orchestrators that know how many distinct keys a workload touches
        (e.g. the number of splits in an evaluation) reserve room for all
        of them, so interleaved work-stolen batches cannot thrash the
        cache into evict-and-rebuild cycles.  Only entries actually built
        occupy memory; capacity is just the eviction bound.
        """
        if capacity > self.capacity:
            self.capacity = capacity

    def get_or_build(self, key: str, build: Callable[[], V]) -> V:
        if key in self._entries:
            self._entries.move_to_end(key)
            return self._entries[key]  # type: ignore[return-value]
        value = build()
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return value


def stable_key(payload: object) -> str:
    """Content-address a plain-data payload (short sha256 hex digest).

    The identity primitive of the checkpoint/resume layer: the same
    payload yields the same key in any process on any machine, so a
    resumed campaign recognises work journalled by a previous —
    possibly killed — orchestrator.  ``payload`` must be JSON-encodable
    plain data (the caller canonicalises dataclasses first).
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


_BASE_CACHE = _ProcessLocalCache(capacity=4)

#: Realised-corpus cache keyed by full spec repr: scenarios whose config
#: overrides prevent base sharing (``shares_base == False``) land here, so
#: repeated cells of such a scenario in one worker still build once.
_CORPUS_CACHE = _ProcessLocalCache(capacity=4)

#: Process-local count of realised-corpus builds (cache misses of
#: :meth:`CorpusSpec.build`) — a test/diagnostic probe, like
#: :func:`repro.corpus.synthetic.base_generation_count`.
_CORPUS_BUILDS = 0


def corpus_build_count() -> int:
    """How many realised corpora this process built (cache misses)."""
    return _CORPUS_BUILDS


def reserve_base_slots(count: int) -> None:
    """Grow the worker's base- and corpus-cache capacity to ``count``.

    Dispatchers call this (via the ``base_slots`` carried on batch and cell
    specs) with the number of distinct base keys in flight, so a worker
    shard touching many ``(domain, sizes, seed)`` bases cannot thrash either
    cache into evict-and-rebuild cycles.
    """
    _BASE_CACHE.reserve(count)
    _CORPUS_CACHE.reserve(count)


@dataclass(frozen=True)
class CorpusSpec:
    """How to rebuild one evaluation corpus from configuration alone.

    ``scenario`` is an optional :class:`~repro.scenarios.ScenarioSpec`
    (itself a frozen, picklable dataclass); ``None`` means the clean
    corpus.  :meth:`build` realises scenarios against a process-locally
    cached shared base, so all cells of one domain landing in the same
    worker shard pay base generation once.

    ``store_handle`` optionally points at a published corpus store
    (:mod:`repro.store`) holding this spec's *clean* realisation: workers
    then attach zero-copy instead of regenerating, falling back to the
    rebuild path automatically when the segment is gone.  The handle never
    changes what corpus the spec denotes — only how fast a worker gets it.
    """

    domain: str
    num_entities: int
    pages_per_entity: int
    seed: int
    scenario: Optional[ScenarioSpec] = None
    store_handle: Optional[StoreHandle] = None

    def base_key(self) -> str:
        """Cache key of the shared base this spec realises against."""
        return repr((self.domain, self.num_entities, self.pages_per_entity,
                     self.seed))

    def build_base(self) -> BaseCorpus:
        """The (process-locally cached) shared base corpus of this spec.

        With a live store attached, the base is served straight from the
        store's lazily page-backed snapshot — no generation at all.
        """
        def generate() -> BaseCorpus:
            if self.store_handle is not None:
                try:
                    return attach(self.store_handle).base_corpus()
                except StoreError:
                    pass  # released or unreachable: fall back to generation
            return build_base(domain=self.domain,
                              num_entities=self.num_entities,
                              pages_per_entity=self.pages_per_entity,
                              seed=self.seed)

        return _BASE_CACHE.get_or_build(self.base_key(), generate)

    def build(self) -> Corpus:
        """Rebuild the corpus this spec describes (deterministic).

        Realised corpora are cached per worker by full spec repr, so every
        spec — including non-base-sharing scenarios — builds at most once
        per process.  The build is timed as ``corpus-attach`` (store served)
        or ``corpus-rebuild`` (generated) when profiling is on; cache hits
        are not timed.
        """
        return _CORPUS_CACHE.get_or_build(repr(self), self._build_fresh)

    def _build_fresh(self) -> Corpus:
        global _CORPUS_BUILDS
        _CORPUS_BUILDS += 1
        if self.scenario is None and self.store_handle is not None:
            try:
                attachment = attach(self.store_handle)
            except StoreError:
                attachment = None
            if attachment is not None:
                rec = perf_recorder()
                if rec is None:
                    return attachment.corpus()
                with rec.phase("corpus-attach", domain=self.domain):
                    return attachment.corpus()
        rec = perf_recorder()
        if rec is None:
            return self._rebuild()
        with rec.phase("corpus-rebuild", domain=self.domain):
            return self._rebuild()

    def _rebuild(self) -> Corpus:
        """Today's generation path (also the no-store / store-gone fallback)."""
        if self.scenario is None:
            return realise_base(self.build_base())
        if not self.scenario.shares_base:
            # Config overrides change the base generation itself; the
            # shared base would be the wrong shape.
            return self.scenario.corpus_for(
                self.domain, num_entities=self.num_entities,
                pages_per_entity=self.pages_per_entity, seed=self.seed)
        return self.scenario.corpus_from_base(self.build_base())


@dataclass(frozen=True)
class HarvestJobSpec:
    """One harvesting run as pure configuration: (method, target, budget, seed).

    The seed is derived by the orchestrator from
    ``(base_seed, split, method, entity, aspect)`` — never from execution
    order — so a worker executing this spec reproduces the serial run
    bit-for-bit.
    """

    method: str
    entity_id: str
    aspect: str
    num_queries: int
    seed: int


@dataclass(frozen=True)
class HarvestTaskContext:
    """The shared world one batch of :class:`HarvestJobSpec` runs against.

    Everything a worker needs to rebuild the prepared split — corpus,
    learner configuration, split derivation — with nothing runtime-bound
    inside.  ``config`` is carried by value; :class:`L2QConfig` is a plain
    dataclass of scalars.  ``corpus_digest`` is the orchestrator's live
    corpus digest: the worker compares it against its rebuilt corpus, so a
    spec that silently describes a *different* corpus (stale seed, wrong
    sizes) fails loudly instead of folding metrics against mismatched
    ground truth.
    """

    corpus: CorpusSpec
    config: L2QConfig
    base_seed: int
    split_index: int
    domain_fraction: float = 1.0
    corpus_digest: Optional[str] = None

    def cache_key(self) -> str:
        """Process-local cache key for the rebuilt runtime."""
        return repr(self)


@dataclass(frozen=True)
class HarvestBatchSpec:
    """One worker-sized batch of harvest jobs sharing one split context.

    The payload unit of *split-first* sharding: every spec in the batch
    belongs to the split its ``context`` describes, so the worker executing
    the batch rebuilds (or cache-hits) exactly one prepared split and runs
    the jobs as an in-order loop.  When a split is cut into several batches
    (the ``workers > num_splits`` fallback), each batch still carries the
    same context and the worker-side runtime cache dedupes preparation
    within a worker.

    ``runtime_slots`` is the number of distinct splits in flight across the
    whole dispatch: workers grow their runtime cache to at least this many
    slots, so the "each worker prepares each split at most once" guarantee
    is structural — a worker interleaving batches of many splits can never
    evict a runtime it will need again.
    """

    context: HarvestTaskContext
    specs: Tuple[HarvestJobSpec, ...]
    runtime_slots: int = 4
    #: Distinct base-corpus keys in flight across the dispatch — workers
    #: grow their base/corpus caches to at least this (see
    #: :func:`reserve_base_slots`).
    base_slots: int = 4

    def cell_key(self) -> str:
        """Stable content-addressed identity of this batch.

        Only the denotation counts: cache-tuning fields
        (``runtime_slots``, ``base_slots``) and the context corpus's
        ``store_handle`` (transport, not meaning) are excluded, so a
        resumed dispatch recognises the batch regardless of worker
        count or store availability.
        """
        context = replace(self.context,
                          corpus=replace(self.context.corpus,
                                         store_handle=None))
        return stable_key({
            "kind": "harvest-batch",
            "context": repr(context),
            "specs": [repr(spec) for spec in self.specs],
        })


@dataclass
class HarvestBatchOutcome:
    """What one executed batch ships home: results plus a preparation probe.

    ``results`` are the batch's :class:`~repro.core.harvester.HarvestResult`
    objects in spec order.  ``worker_pid`` and ``runtime_builds`` (how many
    prepared-split runtimes this batch had to *build* rather than reuse —
    0 or 1) exist so orchestrators and tests can assert the split-first
    guarantee: each worker prepares each split at most once.

    ``perf_phases`` carries the worker-side profiling view when the worker
    process had an active :class:`~repro.perf.PerfRecorder`: per-phase
    ``{count, total_seconds}`` aggregates of exactly the samples this batch
    produced (empty when worker profiling is off).  The orchestrator folds
    them into its own recorder, so sharded runs lose no phase accounting to
    the process boundary.
    """

    results: list
    worker_pid: int
    split_index: int
    runtime_builds: int
    perf_phases: dict = field(default_factory=dict)
    #: True when the batch's corpus came from an attached store segment —
    #: with it, ``index_builds`` must be 0 (the attach == rebuild guarantee
    #: is asserted by tests, not assumed).
    attached: bool = False
    #: Full corpus indexing passes the batch's engine performed (0 when a
    #: published store supplied the index, else at most 1 per runtime).
    index_builds: int = 0
    #: Aspect-classifier suites this batch had to *train* (0 when the
    #: published store carried the split's trained suite and the worker
    #: attached it, else at most 1 per runtime build).
    classifier_trainings: int = 0
    #: True when the batch's split runtime attached its classifier suite
    #: from the store instead of training.
    classifier_attached: bool = False


@dataclass(frozen=True)
class SweepCellSpec:
    """One (domain, scenario) cell of a scenario sweep, as configuration.

    ``scenario=None`` denotes the clean baseline cell.  The result travels
    back as a :class:`SweepCellResult`.
    """

    corpus: CorpusSpec
    methods: Tuple[str, ...]
    num_queries: int
    num_splits: int
    max_test_entities: Optional[int]
    max_aspects: Optional[int]
    config: Optional[L2QConfig]
    base_seed: int
    #: Distinct base-corpus keys across the sweep's dispatched cells (see
    #: :func:`reserve_base_slots`).
    base_slots: int = 4

    @property
    def domain(self) -> str:
        """Domain of this cell."""
        return self.corpus.domain

    @property
    def scenario_name(self) -> Optional[str]:
        """Scenario name, or ``None`` for the clean baseline cell."""
        return self.corpus.scenario.name if self.corpus.scenario else None

    def cell_key(self) -> str:
        """Stable content-addressed identity of this cell.

        Two specs share a key exactly when they denote the same evaluated
        cell: corpus (domain, sizes, seed, scenario pipeline), methods,
        budgets and learner config.  Transport and cache-tuning fields
        (``store_handle``, ``base_slots``) are excluded, so the key
        survives resume under a different store mode or worker count —
        the property journal replay rests on.
        """
        corpus = self.corpus
        return stable_key({
            "kind": "sweep-cell",
            "corpus": {
                "domain": corpus.domain,
                "num_entities": corpus.num_entities,
                "pages_per_entity": corpus.pages_per_entity,
                "seed": corpus.seed,
                # Perturbations are frozen dataclasses of primitives, so
                # their repr is deterministic across processes.
                "scenario": repr(corpus.scenario) if corpus.scenario else None,
            },
            "methods": list(self.methods),
            "num_queries": self.num_queries,
            "num_splits": self.num_splits,
            "max_test_entities": self.max_test_entities,
            "max_aspects": self.max_aspects,
            "config": asdict(self.config) if self.config is not None else None,
            "base_seed": self.base_seed,
        })


@dataclass
class SweepCellResult:
    """Evaluated metrics of one sweep cell (what crosses back by pickle)."""

    domain: str
    scenario: Optional[str]
    corpus_digest: str
    metrics: dict = field(default_factory=dict)
    absolute_metrics: dict = field(default_factory=dict)
    #: Per-method mean duplicate-fetch waste (repro.dedup.waste).
    duplicate_waste: dict = field(default_factory=dict)
    #: Merged per-run fetch accounting of the cell's harvest runs — this is
    #: how worker-side engine counters survive the process boundary.
    fetch: dict = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        """Plain-JSON rendering (the campaign layer's on-disk artifact).

        Every field is already JSON-plain (strings, floats, nested dicts),
        and JSON float round-trips are exact, so
        ``from_json_dict(to_json_dict(r))`` reproduces ``r`` bit-for-bit —
        the property resumed-run byte-identity rests on.
        """
        return {
            "domain": self.domain,
            "scenario": self.scenario,
            "corpus_digest": self.corpus_digest,
            "metrics": self.metrics,
            "absolute_metrics": self.absolute_metrics,
            "duplicate_waste": self.duplicate_waste,
            "fetch": self.fetch,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "SweepCellResult":
        """Rebuild a result from its :meth:`to_json_dict` rendering."""
        return cls(domain=data["domain"],
                   scenario=data["scenario"],
                   corpus_digest=data["corpus_digest"],
                   metrics=data["metrics"],
                   absolute_metrics=data["absolute_metrics"],
                   duplicate_waste=data["duplicate_waste"],
                   fetch=data["fetch"])
