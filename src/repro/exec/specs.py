"""Self-contained, picklable job specifications for distributed backends.

A process worker cannot receive live object graphs cheaply: the search
engine carries a lock, classifier suites and indexes are large, and shared
caches would stop being shared.  Distributed execution therefore ships
*specs* — plain dataclasses saying how to rebuild the world (config in) —
and receives plain result dataclasses back (result out).  Because every
component is deterministic given its seeds, a worker rebuilding a corpus,
split, classifier suite or engine from a spec produces bit-for-bit the
objects the caller would have built locally.

Workers keep small process-local caches (:meth:`CorpusSpec.build_base`
backed by a module-level LRU) so the expensive rebuilds amortise across the
contiguous shard a :class:`~repro.exec.backends.ProcessBackend` assigns
them — and, because the worker pool persists across ``map`` calls, across
successive batches too.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, TypeVar

from repro.core.config import L2QConfig
from repro.corpus.corpus import Corpus
from repro.corpus.synthetic import BaseCorpus, build_base, realise_base
from repro.scenarios import ScenarioSpec

V = TypeVar("V")


class _ProcessLocalCache:
    """A tiny keyed LRU for per-worker rebuilt state.

    Keys are ``repr`` strings of spec dataclasses: deterministic within a
    process and cheap, without requiring hashability of nested configs.
    """

    def __init__(self, capacity: int = 4) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, object]" = OrderedDict()

    def reserve(self, capacity: int) -> None:
        """Grow (never shrink) the capacity.

        Orchestrators that know how many distinct keys a workload touches
        (e.g. the number of splits in an evaluation) reserve room for all
        of them, so interleaved work-stolen batches cannot thrash the
        cache into evict-and-rebuild cycles.  Only entries actually built
        occupy memory; capacity is just the eviction bound.
        """
        if capacity > self.capacity:
            self.capacity = capacity

    def get_or_build(self, key: str, build: Callable[[], V]) -> V:
        if key in self._entries:
            self._entries.move_to_end(key)
            return self._entries[key]  # type: ignore[return-value]
        value = build()
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return value


_BASE_CACHE = _ProcessLocalCache(capacity=4)


@dataclass(frozen=True)
class CorpusSpec:
    """How to rebuild one evaluation corpus from configuration alone.

    ``scenario`` is an optional :class:`~repro.scenarios.ScenarioSpec`
    (itself a frozen, picklable dataclass); ``None`` means the clean
    corpus.  :meth:`build` realises scenarios against a process-locally
    cached shared base, so all cells of one domain landing in the same
    worker shard pay base generation once.
    """

    domain: str
    num_entities: int
    pages_per_entity: int
    seed: int
    scenario: Optional[ScenarioSpec] = None

    def base_key(self) -> str:
        """Cache key of the shared base this spec realises against."""
        return repr((self.domain, self.num_entities, self.pages_per_entity,
                     self.seed))

    def build_base(self) -> BaseCorpus:
        """The (process-locally cached) shared base corpus of this spec."""
        return _BASE_CACHE.get_or_build(
            self.base_key(),
            lambda: build_base(domain=self.domain,
                               num_entities=self.num_entities,
                               pages_per_entity=self.pages_per_entity,
                               seed=self.seed))

    def build(self) -> Corpus:
        """Rebuild the corpus this spec describes (deterministic)."""
        if self.scenario is None:
            return realise_base(self.build_base())
        if not self.scenario.shares_base:
            # Config overrides change the base generation itself; the
            # shared base would be the wrong shape.
            return self.scenario.corpus_for(
                self.domain, num_entities=self.num_entities,
                pages_per_entity=self.pages_per_entity, seed=self.seed)
        return self.scenario.corpus_from_base(self.build_base())


@dataclass(frozen=True)
class HarvestJobSpec:
    """One harvesting run as pure configuration: (method, target, budget, seed).

    The seed is derived by the orchestrator from
    ``(base_seed, split, method, entity, aspect)`` — never from execution
    order — so a worker executing this spec reproduces the serial run
    bit-for-bit.
    """

    method: str
    entity_id: str
    aspect: str
    num_queries: int
    seed: int


@dataclass(frozen=True)
class HarvestTaskContext:
    """The shared world one batch of :class:`HarvestJobSpec` runs against.

    Everything a worker needs to rebuild the prepared split — corpus,
    learner configuration, split derivation — with nothing runtime-bound
    inside.  ``config`` is carried by value; :class:`L2QConfig` is a plain
    dataclass of scalars.  ``corpus_digest`` is the orchestrator's live
    corpus digest: the worker compares it against its rebuilt corpus, so a
    spec that silently describes a *different* corpus (stale seed, wrong
    sizes) fails loudly instead of folding metrics against mismatched
    ground truth.
    """

    corpus: CorpusSpec
    config: L2QConfig
    base_seed: int
    split_index: int
    domain_fraction: float = 1.0
    corpus_digest: Optional[str] = None

    def cache_key(self) -> str:
        """Process-local cache key for the rebuilt runtime."""
        return repr(self)


@dataclass(frozen=True)
class HarvestBatchSpec:
    """One worker-sized batch of harvest jobs sharing one split context.

    The payload unit of *split-first* sharding: every spec in the batch
    belongs to the split its ``context`` describes, so the worker executing
    the batch rebuilds (or cache-hits) exactly one prepared split and runs
    the jobs as an in-order loop.  When a split is cut into several batches
    (the ``workers > num_splits`` fallback), each batch still carries the
    same context and the worker-side runtime cache dedupes preparation
    within a worker.

    ``runtime_slots`` is the number of distinct splits in flight across the
    whole dispatch: workers grow their runtime cache to at least this many
    slots, so the "each worker prepares each split at most once" guarantee
    is structural — a worker interleaving batches of many splits can never
    evict a runtime it will need again.
    """

    context: HarvestTaskContext
    specs: Tuple[HarvestJobSpec, ...]
    runtime_slots: int = 4


@dataclass
class HarvestBatchOutcome:
    """What one executed batch ships home: results plus a preparation probe.

    ``results`` are the batch's :class:`~repro.core.harvester.HarvestResult`
    objects in spec order.  ``worker_pid`` and ``runtime_builds`` (how many
    prepared-split runtimes this batch had to *build* rather than reuse —
    0 or 1) exist so orchestrators and tests can assert the split-first
    guarantee: each worker prepares each split at most once.

    ``perf_phases`` carries the worker-side profiling view when the worker
    process had an active :class:`~repro.perf.PerfRecorder`: per-phase
    ``{count, total_seconds}`` aggregates of exactly the samples this batch
    produced (empty when worker profiling is off).  The orchestrator folds
    them into its own recorder, so sharded runs lose no phase accounting to
    the process boundary.
    """

    results: list
    worker_pid: int
    split_index: int
    runtime_builds: int
    perf_phases: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SweepCellSpec:
    """One (domain, scenario) cell of a scenario sweep, as configuration.

    ``scenario=None`` denotes the clean baseline cell.  The result travels
    back as a :class:`SweepCellResult`.
    """

    corpus: CorpusSpec
    methods: Tuple[str, ...]
    num_queries: int
    num_splits: int
    max_test_entities: Optional[int]
    max_aspects: Optional[int]
    config: Optional[L2QConfig]
    base_seed: int

    @property
    def domain(self) -> str:
        """Domain of this cell."""
        return self.corpus.domain

    @property
    def scenario_name(self) -> Optional[str]:
        """Scenario name, or ``None`` for the clean baseline cell."""
        return self.corpus.scenario.name if self.corpus.scenario else None


@dataclass
class SweepCellResult:
    """Evaluated metrics of one sweep cell (what crosses back by pickle)."""

    domain: str
    scenario: Optional[str]
    corpus_digest: str
    metrics: dict = field(default_factory=dict)
    absolute_metrics: dict = field(default_factory=dict)
    #: Per-method mean duplicate-fetch waste (repro.dedup.waste).
    duplicate_waste: dict = field(default_factory=dict)
    #: Merged per-run fetch accounting of the cell's harvest runs — this is
    #: how worker-side engine counters survive the process boundary.
    fetch: dict = field(default_factory=dict)
