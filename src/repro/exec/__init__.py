"""Pluggable execution backends and picklable job specifications.

The orchestration API every fan-out site shares: resolve a backend
(``serial`` / ``thread`` / ``process``), hand it payloads, get results in
payload order.  See :mod:`repro.exec.backends` for the engines and
:mod:`repro.exec.specs` for the spec layer distributed backends ship
instead of live object graphs.
"""

from repro.exec.backends import (
    BACKEND_PROCESS,
    BACKEND_SERIAL,
    BACKEND_SERVING,
    BACKEND_THREAD,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_names,
    is_registered,
    make_backend,
    register_backend,
    resolve_backend,
)
from repro.exec.specs import (
    CorpusSpec,
    HarvestBatchOutcome,
    HarvestBatchSpec,
    HarvestJobSpec,
    HarvestTaskContext,
    SweepCellResult,
    SweepCellSpec,
    stable_key,
)

__all__ = [
    "BACKEND_PROCESS",
    "BACKEND_SERIAL",
    "BACKEND_SERVING",
    "BACKEND_THREAD",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "backend_names",
    "is_registered",
    "make_backend",
    "register_backend",
    "resolve_backend",
    "CorpusSpec",
    "HarvestBatchOutcome",
    "HarvestBatchSpec",
    "HarvestJobSpec",
    "HarvestTaskContext",
    "SweepCellResult",
    "SweepCellSpec",
    "stable_key",
]
