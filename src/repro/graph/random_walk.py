"""Utility inference by iterative propagation on the reinforcement graph.

The paper shows (Sect. III, *Solution*) that the regularized mutual
reinforcement equations (Eq. 13/19/20) are equivalent to random walks with
restart: probabilistic precision ``P`` is the stationary distribution of the
*backward* walk and probabilistic recall ``R`` of the *forward* walk, with
restart probability ``alpha`` and preference vector equal to the utility
regularization.  Rather than materialising the walk matrices we iterate the
reinforcement rules directly, which is the same fixed point:

Precision (Eqs. 6, 8, 15, 17) — each vertex *averages* its neighbours:

* ``P(q) = mean( C_PQ^T P_P , RQ_T P_T )``   (page side and template side)
* ``P(p) = R_PQ P_Q``
* ``P(t) = C_QT^T P_Q``

Recall (Eqs. 7, 9, 16, 18) — each vertex's mass is *split* among retrievers:

* ``R(q) = mean( R_PQ^T R_P , C_QT R_T )``
* ``R(p) = C_PQ R_Q``
* ``R(t) = R_QT^T R_Q``

where ``R_X`` / ``C_X`` denote row- / column-stochastic normalisations of the
biadjacency matrices, and each update is blended with the regularization
vector: ``U <- (1 - alpha) F(U) + alpha U_hat`` (Eq. 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.graph.reinforcement import ReinforcementGraph

try:  # pragma: no cover - exercised implicitly by every solve
    from scipy.sparse import _sparsetools as _scipy_sparsetools
    _CSR_MATVECS = _scipy_sparsetools.csr_matvecs
except (ImportError, AttributeError):  # pragma: no cover - older/newer scipy
    _CSR_MATVECS = None

MODE_PRECISION = "precision"
MODE_RECALL = "recall"
_MODES = (MODE_PRECISION, MODE_RECALL)


@dataclass(frozen=True)
class RegularizationProblem:
    """One utility-regularization ``U_hat`` triple for a multi-RHS solve.

    The entity phase solves several regularization problems on the *same*
    graph (recall w.r.t. ``Y``, ``Y~``, ``Y*``, ``Y~*``); stacking them as
    the columns of one right-hand-side matrix lets the power iteration
    share every sparse matmul across problems.
    """

    page_regularization: Optional[Mapping[Hashable, float]] = None
    query_regularization: Optional[Mapping[Hashable, float]] = None
    template_regularization: Optional[Mapping[Hashable, float]] = None


def _matmul_into(matrix: sparse.csr_matrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out <- matrix @ x`` for a 2-D dense ``x``, reusing ``out``.

    Calls the same compiled ``csr_matvecs`` kernel ``csr @ dense`` dispatches
    to (bit-identical accumulation in stored-index order), skipping the
    Python-level dispatch that dominates on the small matrices of the power
    iteration.  Falls back to the operator when the kernel is unavailable.
    """
    if _CSR_MATVECS is None:
        out[...] = matrix @ x
        return out
    out.fill(0.0)
    rows, cols = matrix.shape
    _CSR_MATVECS(rows, cols, x.shape[1], matrix.indptr, matrix.indices,
                 matrix.data, x.ravel(), out.ravel())
    return out


def _raw_csr(data: np.ndarray, indices: np.ndarray, indptr: np.ndarray,
             shape: Tuple[int, int]) -> sparse.csr_matrix:
    """A CSR matrix from pre-validated arrays, skipping constructor checks.

    The validating constructor re-derives the index dtype and walks the
    structure on every call; for matrices assembled from arrays that are
    *by construction* consistent (copies or concatenations of existing CSR
    internals) that work is pure overhead on the selection hot path.
    """
    matrix = sparse.csr_matrix.__new__(sparse.csr_matrix)
    matrix.data = data
    matrix.indices = indices
    matrix.indptr = indptr
    matrix._shape = shape
    return matrix


def _scale_rows_exact(matrix: sparse.csr_matrix, weights: np.ndarray,
                      copy: bool = True) -> sparse.csr_matrix:
    """Row-scale a CSR by per-row ``weights``, preserving stored order.

    Callers only pass powers of two (0.5 / 1.0), so every scaled entry is
    exact and a dot product against the scaled rows equals the scaled dot
    product against the original rows bit for bit.  ``copy=False`` scales a
    matrix the caller owns (e.g. a freshly materialised transpose) in
    place; with ``copy=True`` only the data array is duplicated — the
    structure arrays are shared with the (never mutated) input.
    """
    scaled = matrix.tocsr()
    data = scaled.data if not copy else scaled.data.copy()
    if data.size:
        data *= np.repeat(np.asarray(weights, dtype=np.float64),
                          np.diff(scaled.indptr))
    if not copy:
        return scaled
    return _raw_csr(data, scaled.indices, scaled.indptr, scaled.shape)


def _vstack_csr(top: sparse.csr_matrix, bottom: sparse.csr_matrix) -> sparse.csr_matrix:
    """Stack two CSR matrices vertically without canonicalising.

    ``sparse.vstack`` may re-sort indices within rows; the power iteration
    needs every row's stored order untouched so that accumulation order (and
    thus every rounding) matches a matmul against the original matrix.
    """
    top = top.tocsr()
    bottom = bottom.tocsr()
    indptr = np.concatenate([top.indptr,
                             top.indptr[-1] + bottom.indptr[1:]])
    indices = np.concatenate([top.indices, bottom.indices])
    data = np.concatenate([top.data, bottom.data])
    return _raw_csr(data, indices, indptr,
                    (top.shape[0] + bottom.shape[0], top.shape[1]))


def _raw_diagonal(scale: np.ndarray, container) -> sparse.spmatrix:
    """A diagonal matrix in CSR/CSC form from pre-validated arrays.

    ``sparse.diags(scale)`` builds a DIA matrix that the matmul dispatch
    converts to exactly this compressed form before the kernel runs;
    constructing it directly skips both the DIA detour and the validating
    constructor, changing no bits of the product.
    """
    n = scale.shape[0]
    diagonal = container.__new__(container)
    diagonal.data = scale
    diagonal.indices = np.arange(n, dtype=np.int32)
    diagonal.indptr = np.arange(n + 1, dtype=np.int32)
    diagonal._shape = (n, n)
    return diagonal


def normalize_rows(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Return a row-stochastic copy of ``matrix`` (zero rows stay zero)."""
    matrix = matrix.tocsr()
    if matrix.dtype != np.float64:
        matrix = matrix.astype(np.float64)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.divide(1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 0)
    diagonal = _raw_diagonal(scale, sparse.csr_matrix)
    return (diagonal @ matrix).tocsr()


def normalize_columns(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Return a column-stochastic copy of ``matrix`` (zero columns stay zero)."""
    matrix = matrix.tocsc()
    if matrix.dtype != np.float64:
        matrix = matrix.astype(np.float64)
    col_sums = np.asarray(matrix.sum(axis=0)).ravel()
    scale = np.divide(1.0, col_sums, out=np.zeros_like(col_sums), where=col_sums > 0)
    diagonal = _raw_diagonal(scale, sparse.csc_matrix)
    return (matrix @ diagonal).tocsr()


@dataclass
class UtilityVector:
    """Solved utilities for every vertex of a reinforcement graph."""

    mode: str
    page_values: np.ndarray
    query_values: np.ndarray
    template_values: np.ndarray
    graph: ReinforcementGraph
    iterations: int
    converged: bool

    def page(self, page_key: Hashable) -> float:
        """Utility of a page vertex (0.0 if the page is not in the graph)."""
        index = self.graph.pages.index_of(page_key)
        return float(self.page_values[index]) if index is not None else 0.0

    def query(self, query_key: Hashable) -> float:
        """Utility of a query vertex (0.0 if the query is not in the graph)."""
        index = self.graph.queries.index_of(query_key)
        return float(self.query_values[index]) if index is not None else 0.0

    def template(self, template_key: Hashable) -> float:
        """Utility of a template vertex (0.0 if absent)."""
        index = self.graph.templates.index_of(template_key)
        return float(self.template_values[index]) if index is not None else 0.0

    def query_utilities(self) -> Dict[Hashable, float]:
        """All query utilities as a dictionary."""
        return {self.graph.queries.key_of(i): float(v)
                for i, v in enumerate(self.query_values)}

    def template_utilities(self) -> Dict[Hashable, float]:
        """All template utilities as a dictionary."""
        return {self.graph.templates.key_of(i): float(v)
                for i, v in enumerate(self.template_values)}

    def page_utilities(self) -> Dict[Hashable, float]:
        """All page utilities as a dictionary."""
        return {self.graph.pages.key_of(i): float(v)
                for i, v in enumerate(self.page_values)}


class UtilitySolver:
    """Solves Eq. 13 / 19 / 20 on a reinforcement graph by power iteration."""

    def __init__(self, graph: ReinforcementGraph, alpha: float = 0.15,
                 max_iterations: int = 100, tolerance: float = 1e-6) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must lie strictly between 0 and 1")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.graph = graph
        self.alpha = float(alpha)
        self.max_iterations = max_iterations
        self.tolerance = tolerance

        pq = graph.page_query
        qt = graph.query_template
        # Row-stochastic over a page's query neighbours / a query's template neighbours.
        self._pq_row = normalize_rows(pq)
        self._qt_row = normalize_rows(qt)
        # Column-stochastic over a query's page neighbours / a template's query neighbours.
        self._pq_col = normalize_columns(pq)
        self._qt_col = normalize_columns(qt)
        # Which queries have neighbours on each side (for averaging the two sides).
        self._query_has_pages = np.asarray(pq.sum(axis=0)).ravel() > 0
        self._query_has_templates = np.asarray(qt.sum(axis=1)).ravel() > 0
        # Per-mode iteration operators with the two-sided average folded in.
        # A query connected on both sides averages them — equivalently, both
        # incoming operators carry weight 0.5 on that query's row.  0.5 is a
        # power of two, so the folded matmul is bit-identical to averaging
        # afterwards; one-sided queries keep weight 1.0, and their missing
        # side contributes an exact +0.0.  The page and template updates both
        # multiply the query vector, so their operators stack into one matrix
        # (rows are unchanged, hence every dot product is unchanged).
        # Transposes are materialised as CSR: a transposed-CSR matvec is
        # bit-identical to the CSC-view matvec it replaces, and ``.T`` inside
        # the loop would allocate a view per matmul per iteration.
        both = self._query_has_pages & self._query_has_templates
        weight = np.where(both, 0.5, 1.0)
        self._operators = {
            MODE_PRECISION: (
                _scale_rows_exact(self._pq_col.T.tocsr(), weight, copy=False),
                _scale_rows_exact(self._qt_row, weight),
                _vstack_csr(self._pq_row, self._qt_col.T.tocsr()),
            ),
            MODE_RECALL: (
                _scale_rows_exact(self._pq_row.T.tocsr(), weight, copy=False),
                _scale_rows_exact(self._qt_col, weight),
                _vstack_csr(self._pq_col, self._qt_row.T.tocsr()),
            ),
        }

    # -- Public API ----------------------------------------------------------
    def solve(self, mode: str,
              page_regularization: Optional[Mapping[Hashable, float]] = None,
              query_regularization: Optional[Mapping[Hashable, float]] = None,
              template_regularization: Optional[Mapping[Hashable, float]] = None) -> UtilityVector:
        """Solve for the utilities of every vertex.

        Parameters
        ----------
        mode:
            ``"precision"`` or ``"recall"``.
        page_regularization / query_regularization / template_regularization:
            The utility regularization ``U_hat`` per vertex key.  Missing
            vertices default to 0 (no regularization), as in the paper.
        """
        problem = RegularizationProblem(
            page_regularization=page_regularization,
            query_regularization=query_regularization,
            template_regularization=template_regularization)
        return self.solve_many(mode, [problem])[0]

    def solve_many(self, mode: str,
                   problems: Sequence[RegularizationProblem]) -> List[UtilityVector]:
        """Solve several regularization problems on this graph at once.

        The problems share every sparse matmul: their ``U_hat`` vectors are
        stacked as the columns of one right-hand-side matrix and the power
        iteration advances all columns together.  A column whose own delta
        drops below the tolerance is *frozen* (copied forward unchanged)
        while the others continue, so each returned
        :class:`UtilityVector` — values, ``iterations`` and ``converged``
        — is bit-identical to a separate :meth:`solve` of that problem.
        """
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if not problems:
            return []

        if mode == MODE_PRECISION:
            return self.solve_joint(problems, [])[0]
        return self.solve_joint([], problems)[1]

    def solve_joint(self, precision_problems: Sequence[RegularizationProblem],
                    recall_problems: Sequence[RegularizationProblem]
                    ) -> Tuple[List[UtilityVector], List[UtilityVector]]:
        """Solve precision and recall problems in one shared iteration loop.

        The two modes iterate independent state over different operators, so
        their per-column results are bit-identical to separate
        :meth:`solve_many` calls — but one Python loop drives both, halving
        the per-iteration interpreter overhead that dominates on the small
        graphs of the selection hot path.  A mode whose columns have all
        converged stops doing any work while the other finishes.
        """
        states = [_ModeIteration(self, mode, problems)
                  for mode, problems in ((MODE_PRECISION, precision_problems),
                                         (MODE_RECALL, recall_problems))
                  if problems]
        for iteration in range(1, self.max_iterations + 1):
            any_active = False
            for state in states:
                if state.step(iteration):
                    any_active = True
            if not any_active:
                break
        by_mode = {state.mode: state.results() for state in states}
        return (by_mode.get(MODE_PRECISION, []), by_mode.get(MODE_RECALL, []))

    def solve_precision(self, **kwargs) -> UtilityVector:
        """Shorthand for ``solve(MODE_PRECISION, ...)``."""
        return self.solve(MODE_PRECISION, **kwargs)

    def solve_recall(self, **kwargs) -> UtilityVector:
        """Shorthand for ``solve(MODE_RECALL, ...)``."""
        return self.solve(MODE_RECALL, **kwargs)

    def solve_recall_many(self, problems: Sequence[RegularizationProblem]
                          ) -> List[UtilityVector]:
        """Shorthand for ``solve_many(MODE_RECALL, ...)``."""
        return self.solve_many(MODE_RECALL, problems)

    # -- Internals -------------------------------------------------------------
    def _combine_sides(self, from_pages: np.ndarray, from_templates: np.ndarray) -> np.ndarray:
        """Average the page-side and template-side estimates per query.

        The paper combines the two sides "by taking their average as the
        final utility of q" (Sect. IV-A).  Queries connected to only one side
        use that side alone.  Accepts one estimate per query (1-D) or one
        column per regularization problem (2-D, the multi-RHS solve).
        """
        combined = np.zeros_like(from_pages)
        if self.graph.num_queries == 0:
            return combined
        both = self._query_has_pages & self._query_has_templates
        only_pages = self._query_has_pages & ~self._query_has_templates
        only_templates = ~self._query_has_pages & self._query_has_templates
        combined[both] = 0.5 * (from_pages[both] + from_templates[both])
        combined[only_pages] = from_pages[only_pages]
        combined[only_templates] = from_templates[only_templates]
        return combined

    @staticmethod
    def _vector(index, regularization: Optional[Mapping[Hashable, float]]) -> np.ndarray:
        values = np.zeros(len(index))
        if regularization:
            for key, value in regularization.items():
                position = index.index_of(key)
                if position is not None:
                    values[position] = float(value)
        return values


class _ModeIteration:
    """Multi-RHS power-iteration state for one mode of a joint solve.

    Pages and templates both update from the query vector alone, so they
    live stacked in one array driven by one stacked operator; the query
    update sums the two pre-scaled side operators.  All buffers are
    preallocated and ping-ponged between iterations.

    The per-iteration loop is deliberately overhead-lean: the sparse
    kernels are called with pre-extracted index arrays and pre-raveled
    buffer views (ping-ponged as whole bundles), and the per-column
    convergence bookkeeping runs on plain Python ints and lists — with at
    most a handful of problems, ``ndarray.any``-style reductions on
    length-5 boolean arrays cost more than the arithmetic they guard.
    """

    __slots__ = ("solver", "mode", "num_problems", "num_pages", "tolerance",
                 "alpha_pt_hat", "alpha_query_hat", "one_minus_alpha",
                 "query_from_pages", "query_from_templates", "pt_from_queries",
                 "op_query_from_pages", "op_query_from_templates",
                 "op_pt_from_queries", "pt_bundle", "new_pt_bundle",
                 "queries_bundle", "new_queries_bundle", "side_buffer",
                 "side_flat", "scratch", "active_columns", "frozen_columns",
                 "converged", "iterations", "last_iteration")

    @staticmethod
    def _pt_bundle_of(array: np.ndarray, num_pages: int):
        """A pages+templates buffer with its raveled kernel views.

        The page rows and template rows are contiguous leading/trailing
        blocks of the stacked array, so all three raveled views alias the
        buffer — swapping the bundle swaps the views consistently.
        """
        return (array, array[:num_pages].ravel(), array[num_pages:].ravel(),
                array.ravel())

    @staticmethod
    def _operator_args(matrix: sparse.csr_matrix):
        """The ``csr_matvecs`` argument prefix of one operator matrix."""
        rows, cols = matrix.shape
        return (rows, cols, matrix.indptr, matrix.indices, matrix.data)

    def __init__(self, solver: "UtilitySolver", mode: str,
                 problems: Sequence[RegularizationProblem]) -> None:
        self.solver = solver
        self.mode = mode
        self.num_problems = len(problems)
        graph = solver.graph
        self.num_pages = graph.num_pages
        self.tolerance = solver.tolerance
        page_hat = np.stack(
            [solver._vector(graph.pages, p.page_regularization)
             for p in problems], axis=1)
        query_hat = np.stack(
            [solver._vector(graph.queries, p.query_regularization)
             for p in problems], axis=1)
        template_hat = np.stack(
            [solver._vector(graph.templates, p.template_regularization)
             for p in problems], axis=1)
        pt_hat = np.concatenate([page_hat, template_hat], axis=0)
        # ``alpha * U_hat`` is the same product every iteration.
        self.alpha_pt_hat = solver.alpha * pt_hat
        self.alpha_query_hat = solver.alpha * query_hat
        self.one_minus_alpha = 1.0 - solver.alpha
        (self.query_from_pages, self.query_from_templates,
         self.pt_from_queries) = solver._operators[mode]
        self.op_query_from_pages = self._operator_args(self.query_from_pages)
        self.op_query_from_templates = self._operator_args(self.query_from_templates)
        self.op_pt_from_queries = self._operator_args(self.pt_from_queries)
        self.pt_bundle = self._pt_bundle_of(pt_hat.copy(), self.num_pages)
        self.new_pt_bundle = self._pt_bundle_of(np.empty_like(pt_hat),
                                                self.num_pages)
        queries = query_hat.copy()
        self.queries_bundle = (queries, queries.ravel())
        new_queries = np.empty_like(queries)
        self.new_queries_bundle = (new_queries, new_queries.ravel())
        self.side_buffer = np.empty_like(queries)
        self.side_flat = self.side_buffer.ravel()
        # One scratch spanning [pages; templates; queries]: the convergence
        # delta is a max over every vertex, so the three layers' residuals
        # reduce in a single pass.
        self.scratch = np.empty((pt_hat.shape[0] + queries.shape[0],
                                 self.num_problems))
        self.active_columns: List[int] = list(range(self.num_problems))
        self.frozen_columns: List[int] = []
        self.converged = [False] * self.num_problems
        self.iterations = [0] * self.num_problems
        self.last_iteration = 0

    def step(self, iteration: int) -> bool:
        """Advance one iteration; no-op (False) once every column converged."""
        active = self.active_columns
        if not active:
            return False
        self.last_iteration = iteration
        pt, pt_pages_flat, pt_templates_flat, _ = self.pt_bundle
        queries, queries_flat = self.queries_bundle
        new_pt, _, _, new_pt_flat = self.new_pt_bundle
        new_queries, new_queries_flat = self.new_queries_bundle

        # new_q = W_qp @ pages + W_qt @ templates (two-sided average folded
        # into the operators); new_[p;t] = W_ptq @ queries.
        if _CSR_MATVECS is not None:
            k = self.num_problems
            new_queries_flat.fill(0.0)
            rows, cols, indptr, indices, data = self.op_query_from_pages
            _CSR_MATVECS(rows, cols, k, indptr, indices, data,
                         pt_pages_flat, new_queries_flat)
            self.side_flat.fill(0.0)
            rows, cols, indptr, indices, data = self.op_query_from_templates
            _CSR_MATVECS(rows, cols, k, indptr, indices, data,
                         pt_templates_flat, self.side_flat)
            new_pt_flat.fill(0.0)
            rows, cols, indptr, indices, data = self.op_pt_from_queries
            _CSR_MATVECS(rows, cols, k, indptr, indices, data,
                         queries_flat, new_pt_flat)
        else:  # pragma: no cover - scipy without the private kernel
            num_pages = self.num_pages
            _matmul_into(self.query_from_pages, pt[:num_pages], new_queries)
            _matmul_into(self.query_from_templates, pt[num_pages:],
                         self.side_buffer)
            _matmul_into(self.pt_from_queries, queries, new_pt)
        np.add(new_queries, self.side_buffer, out=new_queries)

        np.multiply(new_pt, self.one_minus_alpha, out=new_pt)
        np.add(new_pt, self.alpha_pt_hat, out=new_pt)
        np.multiply(new_queries, self.one_minus_alpha, out=new_queries)
        np.add(new_queries, self.alpha_query_hat, out=new_queries)

        frozen = self.frozen_columns
        if frozen:
            # Frozen columns keep exactly the values they converged at —
            # a separate solve would have broken out of the loop there.
            new_pt[:, frozen] = pt[:, frozen]
            new_queries[:, frozen] = queries[:, frozen]

        scratch = self.scratch
        if scratch.shape[0]:
            boundary = pt.shape[0]
            np.subtract(new_pt, pt, out=scratch[:boundary])
            np.subtract(new_queries, queries, out=scratch[boundary:])
            np.abs(scratch, out=scratch)
            deltas = np.maximum.reduce(scratch, axis=0).tolist()
        else:
            deltas = [0.0] * self.num_problems

        self.pt_bundle, self.new_pt_bundle = self.new_pt_bundle, self.pt_bundle
        self.queries_bundle, self.new_queries_bundle = \
            self.new_queries_bundle, self.queries_bundle
        tolerance = self.tolerance
        still_active: List[int] = []
        for column in active:
            if deltas[column] < tolerance:
                self.iterations[column] = iteration
                self.converged[column] = True
                frozen.append(column)
            else:
                still_active.append(column)
        self.active_columns = still_active
        return bool(still_active)

    def results(self) -> List[UtilityVector]:
        for column in self.active_columns:
            self.iterations[column] = self.last_iteration
        num_pages = self.num_pages
        pt = self.pt_bundle[0]
        queries = self.queries_bundle[0]
        return [UtilityVector(
            mode=self.mode,
            page_values=pt[:num_pages, j].copy(),
            query_values=queries[:, j].copy(),
            template_values=pt[num_pages:, j].copy(),
            graph=self.solver.graph,
            iterations=int(self.iterations[j]),
            converged=bool(self.converged[j]),
        ) for j in range(self.num_problems)]
