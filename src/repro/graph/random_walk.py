"""Utility inference by iterative propagation on the reinforcement graph.

The paper shows (Sect. III, *Solution*) that the regularized mutual
reinforcement equations (Eq. 13/19/20) are equivalent to random walks with
restart: probabilistic precision ``P`` is the stationary distribution of the
*backward* walk and probabilistic recall ``R`` of the *forward* walk, with
restart probability ``alpha`` and preference vector equal to the utility
regularization.  Rather than materialising the walk matrices we iterate the
reinforcement rules directly, which is the same fixed point:

Precision (Eqs. 6, 8, 15, 17) — each vertex *averages* its neighbours:

* ``P(q) = mean( C_PQ^T P_P , RQ_T P_T )``   (page side and template side)
* ``P(p) = R_PQ P_Q``
* ``P(t) = C_QT^T P_Q``

Recall (Eqs. 7, 9, 16, 18) — each vertex's mass is *split* among retrievers:

* ``R(q) = mean( R_PQ^T R_P , C_QT R_T )``
* ``R(p) = C_PQ R_Q``
* ``R(t) = R_QT^T R_Q``

where ``R_X`` / ``C_X`` denote row- / column-stochastic normalisations of the
biadjacency matrices, and each update is blended with the regularization
vector: ``U <- (1 - alpha) F(U) + alpha U_hat`` (Eq. 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.graph.reinforcement import ReinforcementGraph

MODE_PRECISION = "precision"
MODE_RECALL = "recall"
_MODES = (MODE_PRECISION, MODE_RECALL)


def normalize_rows(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Return a row-stochastic copy of ``matrix`` (zero rows stay zero)."""
    matrix = matrix.tocsr(copy=True).astype(np.float64)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.divide(1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 0)
    diagonal = sparse.diags(scale)
    return (diagonal @ matrix).tocsr()


def normalize_columns(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Return a column-stochastic copy of ``matrix`` (zero columns stay zero)."""
    matrix = matrix.tocsc(copy=True).astype(np.float64)
    col_sums = np.asarray(matrix.sum(axis=0)).ravel()
    scale = np.divide(1.0, col_sums, out=np.zeros_like(col_sums), where=col_sums > 0)
    diagonal = sparse.diags(scale)
    return (matrix @ diagonal).tocsr()


@dataclass
class UtilityVector:
    """Solved utilities for every vertex of a reinforcement graph."""

    mode: str
    page_values: np.ndarray
    query_values: np.ndarray
    template_values: np.ndarray
    graph: ReinforcementGraph
    iterations: int
    converged: bool

    def page(self, page_key: Hashable) -> float:
        """Utility of a page vertex (0.0 if the page is not in the graph)."""
        index = self.graph.pages.index_of(page_key)
        return float(self.page_values[index]) if index is not None else 0.0

    def query(self, query_key: Hashable) -> float:
        """Utility of a query vertex (0.0 if the query is not in the graph)."""
        index = self.graph.queries.index_of(query_key)
        return float(self.query_values[index]) if index is not None else 0.0

    def template(self, template_key: Hashable) -> float:
        """Utility of a template vertex (0.0 if absent)."""
        index = self.graph.templates.index_of(template_key)
        return float(self.template_values[index]) if index is not None else 0.0

    def query_utilities(self) -> Dict[Hashable, float]:
        """All query utilities as a dictionary."""
        return {self.graph.queries.key_of(i): float(v)
                for i, v in enumerate(self.query_values)}

    def template_utilities(self) -> Dict[Hashable, float]:
        """All template utilities as a dictionary."""
        return {self.graph.templates.key_of(i): float(v)
                for i, v in enumerate(self.template_values)}

    def page_utilities(self) -> Dict[Hashable, float]:
        """All page utilities as a dictionary."""
        return {self.graph.pages.key_of(i): float(v)
                for i, v in enumerate(self.page_values)}


class UtilitySolver:
    """Solves Eq. 13 / 19 / 20 on a reinforcement graph by power iteration."""

    def __init__(self, graph: ReinforcementGraph, alpha: float = 0.15,
                 max_iterations: int = 100, tolerance: float = 1e-6) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must lie strictly between 0 and 1")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.graph = graph
        self.alpha = float(alpha)
        self.max_iterations = max_iterations
        self.tolerance = tolerance

        pq = graph.page_query
        qt = graph.query_template
        # Row-stochastic over a page's query neighbours / a query's template neighbours.
        self._pq_row = normalize_rows(pq)
        self._qt_row = normalize_rows(qt)
        # Column-stochastic over a query's page neighbours / a template's query neighbours.
        self._pq_col = normalize_columns(pq)
        self._qt_col = normalize_columns(qt)
        # Which queries have neighbours on each side (for averaging the two sides).
        self._query_has_pages = np.asarray(pq.sum(axis=0)).ravel() > 0
        self._query_has_templates = np.asarray(qt.sum(axis=1)).ravel() > 0

    # -- Public API ----------------------------------------------------------
    def solve(self, mode: str,
              page_regularization: Optional[Mapping[Hashable, float]] = None,
              query_regularization: Optional[Mapping[Hashable, float]] = None,
              template_regularization: Optional[Mapping[Hashable, float]] = None) -> UtilityVector:
        """Solve for the utilities of every vertex.

        Parameters
        ----------
        mode:
            ``"precision"`` or ``"recall"``.
        page_regularization / query_regularization / template_regularization:
            The utility regularization ``U_hat`` per vertex key.  Missing
            vertices default to 0 (no regularization), as in the paper.
        """
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")

        page_hat = self._vector(self.graph.pages, page_regularization)
        query_hat = self._vector(self.graph.queries, query_regularization)
        template_hat = self._vector(self.graph.templates, template_regularization)

        pages = page_hat.copy()
        queries = query_hat.copy()
        templates = template_hat.copy()

        converged = False
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            if mode == MODE_PRECISION:
                new_queries = self._combine_sides(
                    self._pq_col.T @ pages, self._qt_row @ templates)
                new_pages = self._pq_row @ queries
                new_templates = self._qt_col.T @ queries
            else:
                new_queries = self._combine_sides(
                    self._pq_row.T @ pages, self._qt_col @ templates)
                new_pages = self._pq_col @ queries
                new_templates = self._qt_row.T @ queries

            new_pages = (1.0 - self.alpha) * new_pages + self.alpha * page_hat
            new_queries = (1.0 - self.alpha) * new_queries + self.alpha * query_hat
            new_templates = (1.0 - self.alpha) * new_templates + self.alpha * template_hat

            delta = 0.0
            if new_pages.size:
                delta = max(delta, float(np.max(np.abs(new_pages - pages))))
            if new_queries.size:
                delta = max(delta, float(np.max(np.abs(new_queries - queries))))
            if new_templates.size:
                delta = max(delta, float(np.max(np.abs(new_templates - templates))))

            pages, queries, templates = new_pages, new_queries, new_templates
            if delta < self.tolerance:
                converged = True
                break

        return UtilityVector(
            mode=mode,
            page_values=pages,
            query_values=queries,
            template_values=templates,
            graph=self.graph,
            iterations=iteration,
            converged=converged,
        )

    def solve_precision(self, **kwargs) -> UtilityVector:
        """Shorthand for ``solve(MODE_PRECISION, ...)``."""
        return self.solve(MODE_PRECISION, **kwargs)

    def solve_recall(self, **kwargs) -> UtilityVector:
        """Shorthand for ``solve(MODE_RECALL, ...)``."""
        return self.solve(MODE_RECALL, **kwargs)

    # -- Internals -------------------------------------------------------------
    def _combine_sides(self, from_pages: np.ndarray, from_templates: np.ndarray) -> np.ndarray:
        """Average the page-side and template-side estimates per query.

        The paper combines the two sides "by taking their average as the
        final utility of q" (Sect. IV-A).  Queries connected to only one side
        use that side alone.
        """
        num_queries = self.graph.num_queries
        if num_queries == 0:
            return np.zeros(0)
        combined = np.zeros(num_queries)
        both = self._query_has_pages & self._query_has_templates
        only_pages = self._query_has_pages & ~self._query_has_templates
        only_templates = ~self._query_has_pages & self._query_has_templates
        combined[both] = 0.5 * (from_pages[both] + from_templates[both])
        combined[only_pages] = from_pages[only_pages]
        combined[only_templates] = from_templates[only_templates]
        return combined

    @staticmethod
    def _vector(index, regularization: Optional[Mapping[Hashable, float]]) -> np.ndarray:
        values = np.zeros(len(index))
        if regularization:
            for key, value in regularization.items():
                position = index.index_of(key)
                if position is not None:
                    values[position] = float(value)
        return values
