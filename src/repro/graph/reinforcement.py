"""The reinforcement graph of pages, queries and templates.

Sect. III of the paper models mutual reinforcement between pages and queries
with a bipartite graph ``G = (P u Q, E)`` whose adjacency ``W_pq`` encodes
whether (or how strongly) query ``q`` retrieves page ``p``.  Sect. IV extends
the graph with a third layer of templates connected to the queries they can
abstract (Fig. 5).  This module stores that tri-partite structure as two
sparse biadjacency matrices:

* ``W_PQ`` with shape ``(|P|, |Q|)`` — page-query edges;
* ``W_QT`` with shape ``(|Q|, |T|)`` — query-template edges.

Vertex identities are kept as opaque hashable keys (page ids, query tuples,
template tuples) mapped to dense indices.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse


class VertexIndex:
    """A bidirectional mapping between hashable vertex keys and dense indices."""

    def __init__(self, keys: Iterable[Hashable] = ()) -> None:
        self._key_to_index: Dict[Hashable, int] = {}
        self._keys: List[Hashable] = []
        for key in keys:
            self.add(key)

    def add(self, key: Hashable) -> int:
        """Add ``key`` (idempotent) and return its index."""
        index = self._key_to_index.get(key)
        if index is None:
            index = len(self._keys)
            self._key_to_index[key] = index
            self._keys.append(key)
        return index

    def extend(self, keys: Sequence[Hashable]) -> List[int]:
        """Add many keys (idempotent, like repeated :meth:`add`) and return
        their indices.  On an empty index with all-distinct keys — the
        common bulk-registration case — the mapping is built in one dict
        construction instead of one :meth:`add` call per key.
        """
        if not self._keys:
            mapping = {key: position for position, key in enumerate(keys)}
            if len(mapping) == len(keys):
                self._key_to_index = mapping
                self._keys = list(keys)
                return list(range(len(keys)))
        add = self.add
        return [add(key) for key in keys]

    def index_of(self, key: Hashable) -> Optional[int]:
        """Index of ``key`` or ``None`` if absent."""
        return self._key_to_index.get(key)

    def key_of(self, index: int) -> Hashable:
        """Key at ``index``."""
        return self._keys[index]

    def keys(self) -> List[Hashable]:
        """All keys in index order."""
        return list(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._key_to_index


class ReinforcementGraph:
    """Immutable page-query-template reinforcement graph.

    Build it with :class:`ReinforcementGraphBuilder`; the solver in
    :mod:`repro.graph.random_walk` consumes the two biadjacency matrices.
    """

    def __init__(self, pages: VertexIndex, queries: VertexIndex, templates: VertexIndex,
                 page_query: sparse.csr_matrix, query_template: sparse.csr_matrix) -> None:
        if page_query.shape != (len(pages), len(queries)):
            raise ValueError("page_query matrix shape does not match vertex counts")
        if query_template.shape != (len(queries), len(templates)):
            raise ValueError("query_template matrix shape does not match vertex counts")
        self.pages = pages
        self.queries = queries
        self.templates = templates
        self.page_query = page_query.tocsr()
        self.query_template = query_template.tocsr()

    # -- Introspection -------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Number of page vertices."""
        return len(self.pages)

    @property
    def num_queries(self) -> int:
        """Number of query vertices."""
        return len(self.queries)

    @property
    def num_templates(self) -> int:
        """Number of template vertices."""
        return len(self.templates)

    @property
    def num_edges(self) -> int:
        """Total number of (non-zero) edges."""
        return int(self.page_query.nnz + self.query_template.nnz)

    def query_page_neighbors(self, query_key: Hashable) -> List[Tuple[Hashable, float]]:
        """Pages adjacent to a query with their edge weights."""
        q = self.queries.index_of(query_key)
        if q is None:
            return []
        column = self.page_query.getcol(q).tocoo()
        return [(self.pages.key_of(i), float(v)) for i, v in zip(column.row, column.data)]

    def page_query_neighbors(self, page_key: Hashable) -> List[Tuple[Hashable, float]]:
        """Queries adjacent to a page with their edge weights."""
        p = self.pages.index_of(page_key)
        if p is None:
            return []
        row = self.page_query.getrow(p).tocoo()
        return [(self.queries.key_of(j), float(v)) for j, v in zip(row.col, row.data)]

    def query_template_neighbors(self, query_key: Hashable) -> List[Tuple[Hashable, float]]:
        """Templates adjacent to a query with their edge weights."""
        q = self.queries.index_of(query_key)
        if q is None:
            return []
        row = self.query_template.getrow(q).tocoo()
        return [(self.templates.key_of(j), float(v)) for j, v in zip(row.col, row.data)]

    def template_query_neighbors(self, template_key: Hashable) -> List[Tuple[Hashable, float]]:
        """Queries adjacent to a template with their edge weights."""
        t = self.templates.index_of(template_key)
        if t is None:
            return []
        column = self.query_template.getcol(t).tocoo()
        return [(self.queries.key_of(i), float(v)) for i, v in zip(column.row, column.data)]


class ReinforcementGraphBuilder:
    """Incremental builder for :class:`ReinforcementGraph`."""

    def __init__(self) -> None:
        self.pages = VertexIndex()
        self.queries = VertexIndex()
        self.templates = VertexIndex()
        self._pq_entries: Dict[Tuple[int, int], float] = {}
        self._qt_entries: Dict[Tuple[int, int], float] = {}

    def add_page(self, page_key: Hashable) -> int:
        """Register a page vertex."""
        return self.pages.add(page_key)

    def add_query(self, query_key: Hashable) -> int:
        """Register a query vertex."""
        return self.queries.add(query_key)

    def add_template(self, template_key: Hashable) -> int:
        """Register a template vertex."""
        return self.templates.add(template_key)

    def connect_page_query(self, page_key: Hashable, query_key: Hashable,
                           weight: float = 1.0) -> None:
        """Add (or accumulate) a page-query edge with the given weight."""
        if weight <= 0:
            return
        p = self.add_page(page_key)
        q = self.add_query(query_key)
        self._pq_entries[(p, q)] = self._pq_entries.get((p, q), 0.0) + float(weight)

    def connect_query_template(self, query_key: Hashable, template_key: Hashable,
                               weight: float = 1.0) -> None:
        """Add (or accumulate) a query-template edge with the given weight."""
        if weight <= 0:
            return
        q = self.add_query(query_key)
        t = self.add_template(template_key)
        self._qt_entries[(q, t)] = self._qt_entries.get((q, t), 0.0) + float(weight)

    def build(self) -> ReinforcementGraph:
        """Finalise the graph into sparse matrices."""
        page_query = _entries_to_csr(self._pq_entries, (len(self.pages), len(self.queries)))
        query_template = _entries_to_csr(self._qt_entries, (len(self.queries), len(self.templates)))
        return ReinforcementGraph(self.pages, self.queries, self.templates,
                                  page_query, query_template)


def _entries_to_csr(entries: Mapping[Tuple[int, int], float],
                    shape: Tuple[int, int]) -> sparse.csr_matrix:
    """Convert a ``{(row, col): weight}`` mapping into a CSR matrix."""
    if not entries:
        return sparse.csr_matrix(shape, dtype=np.float64)
    rows, cols, data = [], [], []
    for (row, col), value in entries.items():
        rows.append(row)
        cols.append(col)
        data.append(value)
    return sparse.csr_matrix((data, (rows, cols)), shape=shape, dtype=np.float64)
