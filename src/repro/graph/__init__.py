"""Graph substrate: reinforcement graph and the utility (random-walk) solver."""

from repro.graph.random_walk import (
    MODE_PRECISION,
    MODE_RECALL,
    UtilitySolver,
    UtilityVector,
    normalize_columns,
    normalize_rows,
)
from repro.graph.reinforcement import (
    ReinforcementGraph,
    ReinforcementGraphBuilder,
    VertexIndex,
)

__all__ = [
    "MODE_PRECISION",
    "MODE_RECALL",
    "ReinforcementGraph",
    "ReinforcementGraphBuilder",
    "UtilitySolver",
    "UtilityVector",
    "VertexIndex",
    "normalize_columns",
    "normalize_rows",
]
