"""w-shingling of token sequences into stable shingle hashes.

A page's *shingle set* is the set of contiguous ``w``-grams of its tokens
(Broder's classic near-duplicate representation).  Two pages are near
duplicates when the Jaccard similarity of their shingle sets is high; token
level noise of rate ``p`` destroys a ``w``-shingle with probability
``1 - (1 - p)^w``, so small ``w`` keeps similarity high under light noise
while still separating pages that merely share vocabulary.

Shingles are hashed to 64-bit integers with BLAKE2b rather than Python's
``hash`` (which is salted per process): signatures computed in a worker
process must agree bit-for-bit with the orchestrator's.
"""

from __future__ import annotations

import hashlib
from typing import FrozenSet, Sequence

_SHINGLE_SEPARATOR = b"\x1f"  # Cannot occur inside a token.


def _hash_shingle(tokens: Sequence[str]) -> int:
    digest = hashlib.blake2b(_SHINGLE_SEPARATOR.join(
        token.encode("utf-8") for token in tokens), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def shingle_hashes(tokens: Sequence[str], size: int) -> FrozenSet[int]:
    """The hashed ``size``-shingle set of a token sequence.

    Sequences shorter than ``size`` fall back to one shingle over the whole
    sequence (an empty set would make every short page an exact duplicate
    of every other short page).
    """
    if size < 1:
        raise ValueError("shingle size must be >= 1")
    if not tokens:
        return frozenset()
    if len(tokens) < size:
        return frozenset((_hash_shingle(tokens),))
    return frozenset(_hash_shingle(tokens[i:i + size])
                     for i in range(len(tokens) - size + 1))
