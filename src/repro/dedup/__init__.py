"""Content-similarity subsystem: w-shingling, MinHash and LSH.

The near-duplicate scenario (PR 2) exposed a failure mode the paper's
context-aware collective selection cannot see: it reasons about redundancy
at the *query* level (which relevant pages a query re-retrieves), but a
hostile corpus also contains near-copies — mirrors, syndicated articles —
that are distinct pages with almost identical content.  Re-gathering them
inflates fetched-page counts without adding recall.

This package provides the page-level machinery to detect that waste:

* :mod:`repro.dedup.shingles` — w-shingling of token sequences into stable
  64-bit shingle hashes;
* :mod:`repro.dedup.minhash` — seeded MinHash signatures whose
  component-agreement fraction estimates shingle-set Jaccard similarity;
* :mod:`repro.dedup.index` — an LSH-banded :class:`NearDuplicateIndex`
  over signatures, O(1) per lookup in the number of indexed pages;
* :mod:`repro.dedup.novelty` — the per-query expected-novelty estimate the
  harvesting loop feeds into collective selection;
* :mod:`repro.dedup.waste` — the ``duplicate_waste`` evaluation metric.

Everything is deterministic: shingle hashes are content-derived (BLAKE2,
not Python's salted ``hash``) and the MinHash coefficients derive from a
seed, so signatures agree bit-for-bit across processes and backends.
"""

from repro.dedup.index import NearDuplicateIndex
from repro.dedup.minhash import MinHasher, estimated_jaccard
from repro.dedup.novelty import NoveltyEstimator
from repro.dedup.shingles import shingle_hashes
from repro.dedup.waste import DuplicateWasteScorer

__all__ = [
    "DuplicateWasteScorer",
    "MinHasher",
    "NearDuplicateIndex",
    "NoveltyEstimator",
    "estimated_jaccard",
    "shingle_hashes",
]
