"""Seeded MinHash signatures over shingle sets.

A MinHash signature applies ``num_hashes`` universal hash functions
``h_i(x) = (a_i * x + b_i) mod p`` to a shingle set and keeps each
function's minimum.  The fraction of agreeing components of two signatures
is an unbiased estimate of the Jaccard similarity of the underlying shingle
sets, with standard error ``~ 1 / sqrt(num_hashes)``.

The coefficients derive from a seed through
:func:`~repro.utils.rng.derive_seed`, so every process constructing a
:class:`MinHasher` with the same parameters produces identical signatures —
the property all cross-backend determinism tests lean on.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.utils.rng import SeededRandom

#: Mersenne prime 2^61 - 1: large enough for 64-bit shingle hashes, small
#: enough that ``(a * x + b) % P`` stays fast in CPython.
_PRIME = (1 << 61) - 1

#: Sentinel component for an empty shingle set (no shingle can hash to it).
EMPTY_COMPONENT = _PRIME

Signature = Tuple[int, ...]


class MinHasher:
    """Computes MinHash signatures with deterministic, seeded coefficients."""

    def __init__(self, num_hashes: int = 64, seed: int = 0x5EED) -> None:
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.num_hashes = num_hashes
        self.seed = seed
        rng = SeededRandom(seed).spawn("minhash-coefficients")
        self._coefficients = tuple(
            (rng.randint(1, _PRIME - 1), rng.randint(0, _PRIME - 1))
            for _ in range(num_hashes))

    def signature(self, shingles: FrozenSet[int]) -> Signature:
        """The MinHash signature of one shingle set.

        An empty set maps to the all-:data:`EMPTY_COMPONENT` signature,
        which :func:`estimated_jaccard` treats as similar only to another
        empty signature.
        """
        if not shingles:
            return (EMPTY_COMPONENT,) * self.num_hashes
        return tuple(min((a * x + b) % _PRIME for x in shingles)
                     for a, b in self._coefficients)


def estimated_jaccard(left: Signature, right: Signature) -> float:
    """Estimated Jaccard similarity: the fraction of agreeing components."""
    if len(left) != len(right):
        raise ValueError("signatures must have the same length")
    if not left:
        return 0.0
    return sum(1 for a, b in zip(left, right) if a == b) / len(left)
