"""Shared page-fingerprinting cache.

Selection-time novelty (:mod:`repro.dedup.novelty`) and evaluation-time
waste scoring (:mod:`repro.dedup.waste`) must fingerprint pages *the same
way* — a drift between the two would silently invalidate every
penalty-on/off comparison.  Both therefore share this single
config → hasher → signature mapping, with one cached signature per page.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import L2QConfig
from repro.corpus.document import Page
from repro.dedup.minhash import MinHasher, Signature
from repro.dedup.shingles import shingle_hashes


class PageSignatureCache:
    """Computes and memoises MinHash signatures of corpus pages."""

    def __init__(self, config: L2QConfig) -> None:
        self.config = config
        self.hasher = MinHasher(num_hashes=config.dedup_num_hashes,
                                seed=config.dedup_hash_seed)
        self._signatures: Dict[str, Signature] = {}

    def signature_of(self, page: Page) -> Signature:
        """The (cached) signature of one page, keyed by ``page_id``."""
        cached = self._signatures.get(page.page_id)
        if cached is None:
            cached = self.hasher.signature(
                shingle_hashes(page.tokens, self.config.dedup_shingle_size))
            self._signatures[page.page_id] = cached
        return cached

    def get(self, page_id: str):
        """The cached signature of ``page_id``, or ``None`` if not computed."""
        return self._signatures.get(page_id)
