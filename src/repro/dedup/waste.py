"""The ``duplicate_waste`` evaluation metric.

How much of a harvest run's fetch budget went to pages that added nothing:
exact re-fetches of pages already gathered, plus near-duplicates of earlier
pages (MinHash similarity at or above the configured threshold).  The
metric replays a :class:`~repro.core.harvester.HarvestResult`'s fetched
page stream — seed results first, then each iteration's result pages — in
gathering order, so it is computable post-hoc from any backend's results
without touching the live engine.

``duplicate_waste = wasted fetches / total fetches`` in ``[0, 1]``; lower
is better.  0.0 means every fetched page was new, non-duplicate content.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import L2QConfig
from repro.dedup.index import NearDuplicateIndex
from repro.dedup.minhash import Signature
from repro.dedup.signatures import PageSignatureCache


class DuplicateWasteScorer:
    """Scores harvest runs for duplicate-fetch waste over one corpus.

    One scorer serves a whole evaluation: page signatures are computed at
    most once per corpus page (through the same
    :class:`~repro.dedup.signatures.PageSignatureCache` the selection-time
    novelty estimate uses, so the two views cannot drift apart) and shared
    across all scored runs.
    """

    def __init__(self, corpus, config: Optional[L2QConfig] = None) -> None:
        self.corpus = corpus
        self.config = config if config is not None else L2QConfig()
        self.signatures = PageSignatureCache(self.config)

    def signature_of(self, page_id: str) -> Signature:
        """The (cached) MinHash signature of one corpus page."""
        return self.signatures.signature_of(self.corpus.get_page(page_id))

    def fetched_page_ids(self, result, num_queries: Optional[int] = None) -> List[str]:
        """The fetched page stream of a run, with repeats, in fetch order."""
        limit = len(result.iterations) if num_queries is None else num_queries
        fetched: List[str] = list(result.seed_page_ids)
        for record in result.iterations[:limit]:
            fetched.extend(record.result_page_ids)
        return fetched

    def _replay(self, result) -> List[Tuple[int, int]]:
        """Cumulative ``(fetched, wasted)`` after the seed and each iteration.

        One pass over the full fetch stream — the LSH index is built once
        per run and every budget's waste is read off the prefix counters.
        A fetch is wasted when the page was already gathered earlier in the
        stream, or when its estimated similarity to any earlier page meets
        ``dedup_similarity_threshold``.  Near-duplicate pages still join
        the gathered index — they *were* gathered — so a third copy counts
        as waste against either of the first two.
        """
        index = NearDuplicateIndex(
            num_bands=self.config.dedup_bands,
            similarity_threshold=self.config.dedup_similarity_threshold)
        fetched = wasted = 0
        checkpoints: List[Tuple[int, int]] = []

        def fold(page_ids: Sequence[str]) -> None:
            nonlocal fetched, wasted
            for page_id in page_ids:
                fetched += 1
                if page_id in index:
                    wasted += 1
                    continue
                signature = self.signature_of(page_id)
                if index.is_near_duplicate(signature):
                    wasted += 1
                index.add(page_id, signature)

        fold(result.seed_page_ids)
        checkpoints.append((fetched, wasted))
        for record in result.iterations:
            fold(record.result_page_ids)
            checkpoints.append((fetched, wasted))
        return checkpoints

    def waste_by_budget(self, result,
                        budgets: Sequence[int]) -> Dict[int, float]:
        """Waste at each query budget, from a single replay of the run.

        A budget beyond the run's actual iterations reads the final
        checkpoint (the run stopped early; its stream simply ends).
        """
        checkpoints = self._replay(result)
        out: Dict[int, float] = {}
        for budget in budgets:
            fetched, wasted = checkpoints[min(budget, len(checkpoints) - 1)]
            out[budget] = wasted / fetched if fetched else 0.0
        return out

    def waste(self, result, num_queries: Optional[int] = None) -> float:
        """Fraction of fetched pages that were duplicates or near-duplicates."""
        budget = len(result.iterations) if num_queries is None else num_queries
        return self.waste_by_budget(result, (budget,))[budget]
