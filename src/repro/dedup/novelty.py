"""Per-query expected novelty over a growing gathered-page set.

Context-aware L2Q (paper Sect. V) models redundancy at the *query* level:
how much of a candidate's recall is already covered by the fired context.
It cannot see page-level redundancy — a query whose result pages are
near-copies of pages already gathered scores exactly like one retrieving
genuinely new content.  :class:`NoveltyEstimator` closes that gap:

* gathered pages are fingerprinted incrementally (w-shingles → MinHash)
  into an LSH :class:`~repro.dedup.index.NearDuplicateIndex`, O(new pages)
  per harvesting step — the same contract as
  :class:`~repro.core.candidates.CandidateStatistics`;
* a candidate query's *posting pages* — the pages it could retrieve,
  resolved through the entity's :class:`~repro.search.index.IndexView`
  (conjunctive match first, any-match fallback) — are scored for novelty:
  an already-gathered page contributes 0, an ungathered page contributes
  ``1 - max_similarity`` against the gathered index;
* the query's expected novelty is the mean over its posting pages, 1.0
  when nothing is known (no postings), so an uninformed estimate never
  penalises a query.

All iteration is over sorted page ids and all hashing is seeded, so the
estimate is deterministic across runs, threads and worker processes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.config import L2QConfig
from repro.core.queries import Query
from repro.corpus.document import Page
from repro.dedup.index import NearDuplicateIndex
from repro.dedup.minhash import Signature
from repro.dedup.signatures import PageSignatureCache


class NoveltyEstimator:
    """Estimates how much genuinely new content a candidate query buys."""

    def __init__(self, corpus, engine, entity, config: L2QConfig) -> None:
        self.corpus = corpus
        self.engine = engine
        self.entity = entity
        self.config = config
        self.signatures = PageSignatureCache(config)
        self.index = NearDuplicateIndex(
            num_bands=config.dedup_bands,
            similarity_threshold=config.dedup_similarity_threshold)
        self._postings: Dict[Query, Tuple[str, ...]] = {}
        # Page novelty is stable until another page is gathered; cache it
        # against the index version so one iteration's selection pass scores
        # each posting page once, not once per candidate query.
        self._page_novelty: Dict[str, Tuple[int, float]] = {}

    # -- Fingerprinting -----------------------------------------------------
    def signature_of(self, page: Page) -> Signature:
        """The (cached) MinHash signature of one corpus page."""
        return self.signatures.signature_of(page)

    def observe_page(self, page: Page) -> None:
        """Fold one gathered page into the signature index (idempotent)."""
        self.index.add(page.page_id, self.signature_of(page))

    def observe_pages(self, pages: Sequence[Page]) -> None:
        """Fold several gathered pages into the signature index."""
        for page in pages:
            self.observe_page(page)

    # -- Estimation --------------------------------------------------------
    def _posting_pages(self, query: Query) -> Tuple[str, ...]:
        """Pages of the entity universe a query could retrieve (sorted).

        Conjunctive matches first (the engine ranks with the seed query
        appended, which favours pages containing every query word); when a
        query has no conjunctive match — e.g. a domain-transferred query
        with only partial grounding — fall back to any-match postings.
        """
        cached = self._postings.get(query)
        if cached is None:
            view = self.engine.entity_index(self.entity.entity_id)
            matches = view.matching_documents(query, require_all=True)
            if not matches:
                matches = view.matching_documents(query, require_all=False)
            cached = tuple(sorted(matches))
            self._postings[query] = cached
        return cached

    def page_novelty(self, page_id: str) -> float:
        """Novelty of one page against the gathered set: ``1 - max_sim``."""
        cached = self._page_novelty.get(page_id)
        if cached is not None and cached[0] == self.index.version:
            return cached[1]
        signature = self.signatures.get(page_id)
        if signature is None:
            signature = self.signature_of(self.corpus.get_page(page_id))
        novelty = 1.0 - self.index.max_similarity(signature)
        self._page_novelty[page_id] = (self.index.version, novelty)
        return novelty

    def expected_novelty(self, query: Query,
                         is_gathered: Callable[[str], bool]) -> float:
        """Mean novelty of the query's posting pages, in ``[0, 1]``.

        ``is_gathered`` tells which pages the session already holds; those
        contribute zero novelty (re-fetching them is pure waste).  A query
        with no posting pages returns 1.0 — no information, no penalty.
        """
        postings = self._posting_pages(query)
        if not postings:
            return 1.0
        total = 0.0
        for page_id in postings:
            if is_gathered(page_id):
                continue
            total += self.page_novelty(page_id)
        return total / len(postings)
