"""LSH-banded index over MinHash signatures.

The classic banding trick: a signature of ``b * r`` components is cut into
``b`` bands of ``r`` rows; two signatures land in a shared bucket when any
band agrees on all ``r`` rows, which happens with probability
``1 - (1 - J^r)^b`` for true Jaccard ``J``.  Lookups therefore touch only
the pages sharing a bucket instead of every indexed page, and candidates
are verified against the full signature before being reported — the bands
control recall, the similarity check controls precision.

The index is incremental (O(bands) per added page, independent of index
size) and insertion-order independent: buckets are sets and similarity is
computed from signatures, so the same page set yields the same answers
regardless of arrival order — the same contract
:class:`~repro.core.candidates.CandidateStatistics` gives the harvesting
loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.dedup.minhash import Signature, estimated_jaccard


class NearDuplicateIndex:
    """Incremental near-duplicate lookup over MinHash signatures."""

    def __init__(self, num_bands: int = 32, similarity_threshold: float = 0.5) -> None:
        if num_bands < 1:
            raise ValueError("num_bands must be >= 1")
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in (0, 1]")
        self.num_bands = num_bands
        self.similarity_threshold = similarity_threshold
        self._signatures: Dict[str, Signature] = {}
        self._buckets: Dict[Tuple[int, Signature], Set[str]] = {}
        #: Bumped on every insertion so callers can cache lookups per state.
        self.version = 0

    def __len__(self) -> int:
        return len(self._signatures)

    def __contains__(self, page_id: str) -> bool:
        return page_id in self._signatures

    def _bands(self, signature: Signature) -> List[Tuple[int, Signature]]:
        if len(signature) % self.num_bands:
            raise ValueError(
                f"signature length {len(signature)} is not divisible by "
                f"{self.num_bands} bands")
        rows = len(signature) // self.num_bands
        return [(band, signature[band * rows:(band + 1) * rows])
                for band in range(self.num_bands)]

    # -- Construction ------------------------------------------------------
    def add(self, page_id: str, signature: Signature) -> bool:
        """Index one page's signature; returns False if already present."""
        if page_id in self._signatures:
            return False
        self._signatures[page_id] = signature
        for key in self._bands(signature):
            self._buckets.setdefault(key, set()).add(page_id)
        self.version += 1
        return True

    # -- Lookup -----------------------------------------------------------
    def candidates(self, signature: Signature) -> Set[str]:
        """Pages sharing at least one LSH bucket with ``signature``."""
        found: Set[str] = set()
        for key in self._bands(signature):
            found |= self._buckets.get(key, set())
        return found

    def max_similarity(self, signature: Signature) -> float:
        """Highest estimated Jaccard against any indexed page (0.0 if none).

        Only LSH candidates are compared, so a page whose true similarity
        is far below the banding operating point may report 0.0 — exactly
        the regime where the distinction does not matter.
        """
        best = 0.0
        for page_id in self.candidates(signature):
            best = max(best, estimated_jaccard(signature,
                                               self._signatures[page_id]))
            if best >= 1.0:
                break
        return best

    def near_duplicates(self, signature: Signature) -> List[str]:
        """Indexed pages whose estimated similarity meets the threshold."""
        return sorted(
            page_id for page_id in self.candidates(signature)
            if estimated_jaccard(signature,
                                 self._signatures[page_id]) >= self.similarity_threshold)

    def is_near_duplicate(self, signature: Signature) -> bool:
        """Whether any indexed page meets the similarity threshold."""
        return any(
            estimated_jaccard(signature, self._signatures[page_id])
            >= self.similarity_threshold
            for page_id in self.candidates(signature))

    def page_ids(self) -> List[str]:
        """All indexed page ids, sorted."""
        return sorted(self._signatures)
