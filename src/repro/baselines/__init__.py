"""Baseline query-selection strategies (LM, AQ, HR, MQ) and the ideal oracle."""

from repro.baselines.adaptive_querying import AdaptiveQueryingSelection
from repro.baselines.harvest_rate import HarvestRateSelection, HarvestRateStatistics
from repro.baselines.lm_feedback import LanguageModelFeedbackSelection
from repro.baselines.manual import ManualQuerySelection
from repro.baselines.oracle import IdealSelection

__all__ = [
    "AdaptiveQueryingSelection",
    "HarvestRateSelection",
    "HarvestRateStatistics",
    "IdealSelection",
    "LanguageModelFeedbackSelection",
    "ManualQuerySelection",
]
