"""The ideal (oracle) strategy used as the normalisation upper bound.

Sect. VI-A: *"We then select queries to maximize the product of their actual
coverage and precision, which can be obtained by feeding each candidate
query to the search engine.  Thus, it is clearly infeasible in real
applications, and only acts as a performance upper bound for
normalization."*

The ideal selector therefore (a) enumerates candidates from the *entire*
page universe of the entity, (b) fires every candidate against the engine
without cost accounting, and (c) greedily picks the candidate that maximises
``precision x recall`` of the cumulative gathered set, judged with the
ground-truth relevance function.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.aspects.relevance import RelevanceFunction
from repro.core.queries import Query, QueryEnumerator
from repro.core.selection import QuerySelector
from repro.core.session import HarvestSession


class IdealSelection(QuerySelector):
    """Greedy oracle maximising actual coverage x precision per iteration."""

    name = "IDEAL"

    def __init__(self, ground_truth: RelevanceFunction,
                 max_candidates: int = 3000) -> None:
        self.ground_truth = ground_truth
        self.max_candidates = max_candidates
        self._candidates: List[Query] = []
        self._retrieved_cache: Dict[Query, Tuple[str, ...]] = {}
        self._relevant_ids: Set[str] = set()

    # -- Lifecycle ------------------------------------------------------------
    def prepare(self, session: HarvestSession) -> None:
        universe = session.corpus.pages_of(session.entity.entity_id)
        self._relevant_ids = {p.page_id for p in universe if self.ground_truth(p) == 1}
        enumerator = QueryEnumerator(
            max_length=session.config.max_query_length,
            min_word_length=session.config.min_query_word_length,
            exclude_words=session.entity.excluded_words(),
        )
        statistics = enumerator.enumerate_from_pages(universe)
        ranked = sorted(statistics.queries(),
                        key=lambda q: (-statistics.page_frequency(q), q))
        self._candidates = ranked[: self.max_candidates]
        self._retrieved_cache = {}

    # -- Selection -----------------------------------------------------------------
    def select(self, session: HarvestSession) -> Optional[Query]:
        if not self._candidates:
            self.prepare(session)
        if not self._relevant_ids:
            return None

        gathered = set(session.current_page_ids())
        best_query: Optional[Query] = None
        best_score = float("-inf")
        for query in self._candidates:
            if session.is_fired(query):
                continue
            retrieved = self._retrieve(session, query)
            if not retrieved:
                continue
            union = gathered | set(retrieved)
            relevant_covered = len(union & self._relevant_ids)
            precision = relevant_covered / len(union) if union else 0.0
            coverage = relevant_covered / len(self._relevant_ids)
            score = precision * coverage
            if score > best_score:
                best_score = score
                best_query = query
        return best_query

    def _retrieve(self, session: HarvestSession, query: Query) -> Tuple[str, ...]:
        cached = self._retrieved_cache.get(query)
        if cached is None:
            cached = tuple(session.engine.retrievable_pages(
                session.entity.entity_id, list(query)))
            self._retrieved_cache[query] = cached
        return cached
