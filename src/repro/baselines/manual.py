"""The MQ baseline: manually designed queries.

The paper's MQ baseline asked nine graduate students to provide five queries
per (domain, aspect) — generic keywords such as ``award`` or
``distinguished`` for the researcher AWARD aspect.  The study itself cannot
be repeated offline, so the reproduction ships an equivalent fixed list of
generic aspect keywords per domain/aspect in the domain specifications
(:class:`~repro.corpus.domains.AspectSpec.manual_queries`); MQ fires them in
order.  Like the original baseline these queries are entity-independent.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.queries import Query
from repro.core.selection import QuerySelector
from repro.core.session import HarvestSession
from repro.corpus.domains import DomainSpec


class ManualQuerySelection(QuerySelector):
    """Fires a fixed, human-designed query list for the target aspect."""

    name = "MQ"

    def __init__(self, domain_spec: Optional[DomainSpec] = None) -> None:
        self.domain_spec = domain_spec

    def _queries_for(self, session: HarvestSession) -> List[Query]:
        spec = self.domain_spec if self.domain_spec is not None else session.corpus.domain_spec
        return spec.manual_queries(session.aspect)

    def select(self, session: HarvestSession) -> Optional[Query]:
        for query in self._queries_for(session):
            if not session.is_fired(query):
                return query
        return None
