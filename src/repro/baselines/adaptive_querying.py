"""The AQ baseline: adaptive query selection.

Adapted from Zerfos, Cho & Ntoulas, *Downloading textual hidden web content
through keyword queries* (JCDL 2005), which crawls a text database by
repeatedly choosing the keyword expected to return the most new documents,
using statistics estimated from the documents downloaded so far.  As the
paper notes, the original policy has no notion of relevance, so *"the query
statistics are only computed over relevant pages instead of all pages"*
(Sect. VI-C).

Implementation: for every candidate query enumerated from the current
result pages, estimate

* ``support`` — how many classifier-relevant current pages contain the
  query (the adaptive frequency statistic), and
* ``novelty`` — one minus the fraction of the query's containing pages that
  every past query already covers (a crude estimate of how many *new*
  documents the query would return, the heart of the adaptive policy).

The score is ``support * novelty``; the best unfired candidate wins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.queries import Query, query_contained_in_page
from repro.core.selection import QuerySelector, first_unfired
from repro.core.session import HarvestSession


class AdaptiveQueryingSelection(QuerySelector):
    """Frequency-adaptive query selection restricted to relevant pages."""

    name = "AQ"

    def select(self, session: HarvestSession) -> Optional[Query]:
        if not session.current_pages:
            return None
        relevant_pages = session.relevant_current_pages()
        scoring_pages = relevant_pages if relevant_pages else session.current_pages

        candidates = session.candidates.sorted_queries()
        if not candidates:
            return None

        covered_by_past = self._pages_covered_by_past(session)
        scores: Dict[Query, float] = {}
        for query in candidates:
            containing = [p for p in session.current_pages
                          if query_contained_in_page(query, p)]
            support = sum(1 for p in scoring_pages if query_contained_in_page(query, p))
            if containing:
                already = sum(1 for p in containing if p.page_id in covered_by_past)
                novelty = 1.0 - already / len(containing)
            else:
                novelty = 1.0
            scores[query] = support * (0.5 + 0.5 * novelty)

        ranked = sorted(candidates, key=lambda q: (-scores[q], q))
        return first_unfired(ranked, session)

    @staticmethod
    def _pages_covered_by_past(session: HarvestSession) -> Set[str]:
        covered: Set[str] = set()
        for query in session.past_queries:
            for page in session.current_pages:
                if query_contained_in_page(query, page):
                    covered.add(page.page_id)
        return covered
