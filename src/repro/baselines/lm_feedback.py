"""The LM baseline: language-model feedback query selection.

The paper adapts the model-based feedback of Zhai & Lafferty (CIKM 2001):
*"In each iteration, it chooses the query with maximum likelihood on the k
most relevant current pages.  In particular, we use k = 1"* (Sect. VI-C).

Implementation: the ``k`` current pages the aspect classifier scores highest
define a feedback language model (maximum-likelihood page model with the
collection model subtracted, the standard mixture-feedback estimate); every
candidate query enumerated from the current pages is scored by its
log-likelihood under the feedback model, and the best unfired candidate is
selected.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.core.queries import Query
from repro.core.selection import QuerySelector, first_unfired
from repro.core.session import HarvestSession
from repro.corpus.document import Page

_EPSILON = 1e-9


class LanguageModelFeedbackSelection(QuerySelector):
    """Query selection by maximum likelihood under a feedback language model."""

    name = "LM"

    def __init__(self, k: int = 1, background_weight: float = 0.5) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 <= background_weight < 1.0:
            raise ValueError("background_weight must be in [0, 1)")
        self.k = k
        self.background_weight = background_weight

    # -- Selection ------------------------------------------------------------
    def select(self, session: HarvestSession) -> Optional[Query]:
        if not session.current_pages:
            return None
        feedback_pages = self._top_relevant_pages(session)
        if not feedback_pages:
            feedback_pages = session.current_pages[: self.k]
        feedback_model = self._feedback_model(session, feedback_pages)
        if not feedback_model:
            return None

        candidates = self._candidates(session)
        if not candidates:
            return None
        ranked = sorted(
            candidates,
            key=lambda q: (-self._query_log_likelihood(q, feedback_model), q),
        )
        return first_unfired(ranked, session)

    # -- Internals -------------------------------------------------------------
    def _top_relevant_pages(self, session: HarvestSession) -> List[Page]:
        scored = [(session.relevance.score(page), page) for page in session.current_pages]
        scored.sort(key=lambda pair: (-pair[0], pair[1].page_id))
        return [page for _, page in scored[: self.k]]

    def _feedback_model(self, session: HarvestSession,
                        pages: Sequence[Page]) -> Dict[str, float]:
        counts: Counter = Counter()
        for page in pages:
            counts.update(t for t in page.tokens
                          if not session.corpus.tokenizer.is_stopword(t))
        total = sum(counts.values())
        if total == 0:
            return {}
        index = session.engine.entity_index(session.entity.entity_id)
        model: Dict[str, float] = {}
        for term, count in counts.items():
            page_probability = count / total
            background = index.collection_probability(term)
            adjusted = page_probability - self.background_weight * background
            if adjusted > 0:
                model[term] = adjusted
        normaliser = sum(model.values())
        if normaliser <= 0:
            return {term: count / total for term, count in counts.items()}
        return {term: value / normaliser for term, value in model.items()}

    def _candidates(self, session: HarvestSession) -> List[Query]:
        return list(session.candidates.sorted_queries())

    def _query_log_likelihood(self, query: Query, model: Dict[str, float]) -> float:
        return sum(math.log(model.get(word, _EPSILON)) for word in query)
