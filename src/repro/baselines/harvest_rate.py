"""The HR baseline: harvest-rate heuristic query selection.

Adapted from Wu, Wen, Liu & Ma, *Query selection techniques for efficient
crawling of structured web sources* (ICDE 2006).  The original method crawls
structured databases by preferring queries with a high *harvest rate* (the
fraction of retrieved records that are new/useful), estimated from current
results and from domain data.  Following the paper's adaptation
(Sect. VI-C): the query/record model becomes a bag of words, relevance is
incorporated (harvest rate = fraction of containing pages that are
relevant), and the statistics of each query are averaged over its templates
because HR is the only baseline that exploits domain data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.aspects.relevance import RelevanceFunction
from repro.core.config import L2QConfig
from repro.core.queries import Query, QueryEnumerator, prune_queries, query_contained_in_page
from repro.core.selection import QuerySelector, first_unfired
from repro.core.session import HarvestSession
from repro.core.templates import Template, TemplateIndex
from repro.corpus.corpus import Corpus


@dataclass
class HarvestRateStatistics:
    """Domain-side harvest-rate statistics, computed once per (domain, aspect)."""

    query_harvest_rate: Dict[Query, float] = field(default_factory=dict)
    template_harvest_rate: Dict[Template, float] = field(default_factory=dict)
    query_templates: Dict[Query, tuple] = field(default_factory=dict)

    @classmethod
    def from_corpus(cls, domain_corpus: Corpus, relevance: RelevanceFunction,
                    config: Optional[L2QConfig] = None) -> "HarvestRateStatistics":
        """Estimate harvest rates of domain queries and their templates."""
        config = config if config is not None else L2QConfig()
        pages = list(domain_corpus.iter_pages())
        statistics = cls()
        if not pages:
            return statistics

        enumerator = QueryEnumerator(
            max_length=config.max_query_length,
            min_word_length=config.min_query_word_length,
        )
        query_stats = enumerator.enumerate_from_pages(pages)
        queries = prune_queries(query_stats,
                                min_page_frequency=config.domain_min_query_pages,
                                max_queries=config.max_domain_queries)

        relevant_ids = {p.page_id for p in pages if relevance(p) == 1}
        for query in queries:
            containing = query_stats.pages.get(query, set())
            if not containing:
                continue
            relevant = len(containing & relevant_ids)
            statistics.query_harvest_rate[query] = relevant / len(containing)

        template_index = TemplateIndex(domain_corpus.type_system)
        template_index.add_queries(statistics.query_harvest_rate)
        template_totals: Dict[Template, List[float]] = {}
        for query, rate in statistics.query_harvest_rate.items():
            templates = template_index.templates_of(query)
            statistics.query_templates[query] = templates
            for template in templates:
                template_totals.setdefault(template, []).append(rate)
        statistics.template_harvest_rate = {
            template: sum(values) / len(values)
            for template, values in template_totals.items()
        }
        return statistics

    def domain_score(self, query: Query) -> Optional[float]:
        """Template-averaged domain harvest rate of a query (None if unseen)."""
        templates = self.query_templates.get(query, ())
        template_rates = [self.template_harvest_rate[t] for t in templates
                          if t in self.template_harvest_rate]
        direct = self.query_harvest_rate.get(query)
        if template_rates and direct is not None:
            return 0.5 * (direct + sum(template_rates) / len(template_rates))
        if template_rates:
            return sum(template_rates) / len(template_rates)
        return direct


class HarvestRateSelection(QuerySelector):
    """Harvest-rate query selection combining domain and current statistics."""

    name = "HR"

    def __init__(self, domain_statistics: Optional[HarvestRateStatistics] = None) -> None:
        self.domain_statistics = domain_statistics or HarvestRateStatistics()

    def select(self, session: HarvestSession) -> Optional[Query]:
        if not session.current_pages:
            return None
        candidates = set(session.candidates.queries())
        # HR also exploits domain data: add domain queries it has statistics for.
        excluded_words = session.entity.excluded_words()
        for query in self.domain_statistics.query_harvest_rate:
            if not any(word in excluded_words for word in query):
                candidates.add(query)
        if not candidates:
            return None

        relevant_ids = {p.page_id for p in session.relevant_current_pages()}
        scores: Dict[Query, float] = {}
        for query in candidates:
            containing = [p for p in session.current_pages
                          if query_contained_in_page(query, p)]
            current_rate: Optional[float] = None
            if containing:
                current_rate = sum(1 for p in containing
                                   if p.page_id in relevant_ids) / len(containing)
            domain_rate = self.domain_statistics.domain_score(query)
            components = [v for v in (current_rate, domain_rate) if v is not None]
            scores[query] = sum(components) / len(components) if components else 0.0

        ranked = sorted(candidates, key=lambda q: (-scores[q], q))
        return first_unfired(ranked, session)
