"""Checkpointed campaign execution over the existing backend machinery.

:class:`CampaignRunner` dispatches a compiled campaign's pending cells
through any :class:`~repro.exec.backends.ExecutionBackend` — the same
``execute_sweep_cell`` worker entry point the scenario sweep ships — and
commits every finished cell to the journaled :class:`~repro.campaign
.store.CampaignStore` before moving on.  A SIGKILL therefore loses at
most the in-flight checkpoint batch; everything journalled is skipped on
the next run, and the folded ``matrices.json`` — a pure function of the
on-disk artifacts — comes out byte-identical to an uninterrupted run.

Stores publish per (seed, domain) exactly as the sweep publishes per
domain, but only for the domains that still have pending cells — a
resumed campaign never pays publish cost for finished work.  Published
handles are recorded in the crash-safe registry
(:mod:`repro.campaign.registry`) *before* the first dispatch, so a
campaign killed between publish and release leaks nothing a resume (or
``campaign clean``) cannot reap.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.campaign.registry import (
    clean_stale_stores,
    register_store_handles,
    release_registered,
)
from repro.campaign.spec import CampaignCell, CampaignSpec, compile_cells
from repro.campaign.store import CampaignStore, JournalReplay
from repro.eval.scenario_sweep import (
    assemble_sweep_result,
    execute_sweep_cell,
    publish_domain_store,
)
from repro.exec.backends import ExecutionBackend, resolve_backend
from repro.perf import recorder as perf_recorder
from repro.store import MODE_OFF, StoreError, StoreHandle

#: Identifier of the folded campaign-matrices layout.
MATRICES_SCHEMA = "CampaignMatrices/v1"

#: Identifier of the campaign summary artifact (perf-manifest food).
SUMMARY_SCHEMA = "BENCH_campaign/v1"

#: Test/CI hook: seconds to sleep after committing each cell, so an
#: external supervisor has a deterministic window to SIGKILL a campaign
#: "mid-flight, after >= 1 journalled cell".  Unset or 0 in production.
INTERCELL_SLEEP_ENV = "REPRO_CAMPAIGN_INTERCELL_SLEEP"


@dataclass
class CampaignRunReport:
    """What one ``run`` (or resume — same code path) accomplished."""

    total: int
    #: Cells the journal already held at start (skipped, not re-executed).
    skipped: int
    #: Cells this run executed and committed.
    executed: int
    #: Cells still pending when the run stopped (``max_cells`` budget).
    remaining: int
    #: Journal anomalies replay tolerated (torn/corrupt/missing-artifact).
    warnings: List[str] = field(default_factory=list)
    #: Duplicate journal entries replay collapsed idempotently.
    duplicates: int = 0
    #: Folded matrices path; ``None`` while cells remain pending.
    matrices_path: Optional[Path] = None

    @property
    def complete(self) -> bool:
        return self.remaining == 0


def fold_matrices(spec: CampaignSpec, store: CampaignStore,
                  cells: Optional[List[CampaignCell]] = None
                  ) -> Dict[str, object]:
    """Fold committed artifacts into per-seed robustness matrices.

    A pure function of the spec and the artifacts on disk: results are
    *always* read back from ``cells/<key>.json`` (JSON float round-trips
    are exact), never taken from memory, so an uninterrupted run and any
    sequence of killed-and-resumed runs produce the same bytes.  Each
    seed's block is exactly the matrix :class:`~repro.eval.scenario_sweep
    .ScenarioSweep` emits for that corpus realisation.
    """
    cells = cells if cells is not None else compile_cells(spec)
    scenario_specs = spec.scenario_specs()
    seeds: Dict[str, object] = {}
    for seed in spec.seeds:
        seed_cells = [cell for cell in cells if cell.seed == seed]
        results = [store.read_result(cell.key) for cell in seed_cells]
        matrix = assemble_sweep_result(
            scale_name=spec.scale.name,
            seed=seed,
            num_queries=spec.num_queries,
            methods=spec.methods,
            domains=spec.domains,
            specs=scenario_specs,
            cell_results=results,
        )
        seeds[str(seed)] = matrix.to_json_dict()
    return {"schema": MATRICES_SCHEMA, "campaign": spec.name, "seeds": seeds}


class CampaignRunner:
    """Dispatches a campaign's pending cells and folds finished artifacts.

    Parameters
    ----------
    root:
        Campaign directory (created on first run).
    spec:
        The campaign to bind the directory to.  ``None`` loads the spec
        the directory is already bound to (the resume path).
    backend / workers:
        Execution engine for cell dispatch, exactly as
        :class:`~repro.eval.scenario_sweep.ScenarioSweep` accepts them.
    checkpoint_every:
        Cells committed per dispatch round; the crash-loss bound.
        Defaults to the backend's worker count, so every worker stays
        busy within a round while a kill never loses more than one
        round's results.
    """

    def __init__(self, root, spec: Optional[CampaignSpec] = None,
                 backend: Union[None, str, ExecutionBackend] = None,
                 workers: int = 1,
                 checkpoint_every: Optional[int] = None) -> None:
        self.store = CampaignStore(root)
        if spec is not None:
            self.spec = self.store.initialise(spec)
        else:
            self.spec = self.store.load_spec()
        self.backend = resolve_backend(backend, workers=workers)
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.checkpoint_every = checkpoint_every \
            if checkpoint_every is not None else max(1, self.backend.workers)

    # -- Introspection -----------------------------------------------------
    def plan(self) -> List[CampaignCell]:
        """The compiled, content-addressed job list (deterministic)."""
        return compile_cells(self.spec)

    def status(self) -> Tuple[List[CampaignCell], JournalReplay]:
        """Compiled cells plus what the journal says is already done."""
        return self.plan(), self.store.replay()

    # -- Execution ---------------------------------------------------------
    def run(self, max_cells: Optional[int] = None) -> CampaignRunReport:
        """Execute pending cells (resume-safe) and fold when complete.

        ``max_cells`` bounds how many pending cells this invocation
        executes (``None`` = all) — useful for smoke-testing checkpoint
        behaviour and for slicing a campaign across short-lived runners.
        """
        rec = perf_recorder()
        cells = self.plan()
        with (rec.phase("campaign-replay") if rec else nullcontext()):
            replay = self.store.replay()
        # Reap segments a killed predecessor leaked before publishing new
        # ones — /dev/shm is a bounded resource.
        clean_stale_stores(self.store.root)
        pending = [cell for cell in cells if cell.key not in replay.completed]
        skipped = len(cells) - len(pending)
        budget = len(pending) if max_cells is None \
            else max(0, min(max_cells, len(pending)))
        to_run = pending[:budget]
        executed = 0
        sleep_seconds = float(os.environ.get(INTERCELL_SLEEP_ENV, "0") or 0)
        if to_run:
            handles = self._publish_stores(to_run, rec)
            try:
                for start in range(0, len(to_run), self.checkpoint_every):
                    batch = to_run[start:start + self.checkpoint_every]
                    specs = [self._transported_spec(cell, handles)
                             for cell in batch]
                    with (rec.phase("campaign-dispatch", cells=len(batch),
                                    workers=self.backend.workers)
                          if rec else nullcontext()):
                        results = self.backend.map_tasks(execute_sweep_cell,
                                                         specs)
                    for cell, result in zip(batch, results):
                        self.store.record(cell, result)
                        executed += 1
                        if sleep_seconds > 0:
                            time.sleep(sleep_seconds)
            finally:
                release_registered(self.store.root)
        report = CampaignRunReport(
            total=len(cells),
            skipped=skipped,
            executed=executed,
            remaining=len(pending) - executed,
            warnings=list(replay.warnings),
            duplicates=replay.duplicates,
        )
        if report.remaining == 0:
            with (rec.phase("campaign-fold") if rec else nullcontext()):
                document = fold_matrices(self.spec, self.store, cells)
                report.matrices_path = self.store.write_matrices(document)
        return report

    def _publish_stores(self, to_run: List[CampaignCell], rec
                        ) -> Dict[Tuple[int, str], StoreHandle]:
        """Publish one clean base store per pending (seed, domain).

        Only distributed backends attach stores (matching the sweep);
        in-process backends rely on the process-local base caches.
        Handles are recorded in the crash-safe registry *before* any
        cell dispatches, so no kill window can leak a segment invisibly.
        """
        handles: Dict[Tuple[int, str], StoreHandle] = {}
        if not self.backend.distributed \
                or self.spec.corpus_store == MODE_OFF:
            return handles
        needed = sorted({(cell.seed, cell.domain) for cell in to_run})
        for seed, domain in needed:
            scale = self.spec.scale_for_seed(seed)
            try:
                with (rec.phase("campaign-publish", domain=domain, seed=seed)
                      if rec else nullcontext()):
                    handles[(seed, domain)] = publish_domain_store(
                        scale, domain, self.spec.corpus_store, rec)
            except StoreError:
                break  # published domains stay usable; the rest rebuild
        register_store_handles(
            self.store.root,
            {f"seed{seed}/{domain}": handle
             for (seed, domain), handle in handles.items()})
        return handles

    @staticmethod
    def _transported_spec(cell: CampaignCell,
                          handles: Dict[Tuple[int, str], StoreHandle]):
        """The cell's spec with its (seed, domain) store handle attached.

        Transport only: the handle never changes the cell's denotation —
        or its key — just how fast a worker materialises the corpus.
        """
        handle = handles.get((cell.seed, cell.domain))
        if handle is None:
            return cell.spec
        return replace(cell.spec,
                       corpus=replace(cell.spec.corpus, store_handle=handle))

    # -- Reporting ---------------------------------------------------------
    def summary_document(self, report: CampaignRunReport
                         ) -> Dict[str, object]:
        """The ``BENCH_campaign`` summary artifact for the perf manifest.

        Carries the campaign's shape and checkpoint/resume counters; the
        perf manifest folds these into its ``campaigns`` block so the
        fleet's resume behaviour is visible next to its throughput.
        """
        rec = perf_recorder()
        phases = rec.aggregates_since(0) if rec is not None else {}
        campaign_phases = {name: stats for name, stats in phases.items()
                           if name.startswith("campaign-")}
        return {
            "schema": SUMMARY_SCHEMA,
            "campaign": self.spec.name,
            "scale": self.spec.scale.name,
            "backend": self.backend.name,
            "workers": self.backend.workers,
            "domains": list(self.spec.domains),
            "scenarios": list(self.spec.scenarios),
            "methods": list(self.spec.methods),
            "seeds": list(self.spec.seeds),
            "cells": {
                "total": report.total,
                "skipped_on_resume": report.skipped,
                "executed_this_run": report.executed,
                "remaining": report.remaining,
            },
            "journal": {
                "duplicates": report.duplicates,
                "warnings": len(report.warnings),
            },
            "complete": report.complete,
            "phases": campaign_phases,
        }
