"""Declarative campaign specifications compiled to content-addressed cells.

A *campaign* is the paper's evaluation written down as data: domains ×
scenarios × methods × seeds at one :class:`~repro.eval.experiments
.ExperimentScale`, serialisable to/from JSON so the same file drives a
laptop smoke run, a CI gate and the full paper-scale sweep.  Compiling a
spec yields a deterministic list of :class:`CampaignCell` jobs — one
:class:`~repro.exec.specs.SweepCellSpec` per (seed, domain, scenario-or-
clean) — each carrying the stable content-addressed key
(:meth:`~repro.exec.specs.SweepCellSpec.cell_key`) the journaled store
checkpoints against.  Same spec ⇒ same cells ⇒ same keys, in any process
on any machine: that identity is what lets a resumed campaign skip every
cell a killed predecessor already finished.

The scale is embedded *by value* (all sizing fields, not a preset name),
so a later retuning of the ``smoke``/``default``/``paper`` presets can
never silently change what an existing campaign file means.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import L2QConfig
from repro.core.selection import selector_names
from repro.corpus.domains import available_domains
from repro.eval.experiments import ExperimentScale, get_scale
from repro.eval.runner import BASELINE_METHODS
from repro.eval.scenario_sweep import RUNNER_BASE_SEED
from repro.exec.specs import SweepCellSpec
from repro.scenarios import ScenarioSpec, make_scenario, scenario_names
from repro.store import STORE_MODES

#: Identifier of the campaign-spec serialisation layout.
SPEC_SCHEMA = "CampaignSpec/v1"


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative harvest campaign: what to run, not how.

    ``seeds`` are corpus seeds: each one realises an independent corpus
    per domain (the scale's own ``corpus_seed`` is replaced), so a
    multi-seed campaign measures variance across worlds, not reruns of
    one.  ``scenarios`` are registry names; the clean baseline cell is
    always implied per (seed, domain) and never listed.
    """

    name: str
    scale: ExperimentScale
    domains: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    methods: Tuple[str, ...]
    seeds: Tuple[int, ...]
    num_queries: int = 3
    corpus_store: str = "auto"
    config: Optional[L2QConfig] = None

    def __post_init__(self) -> None:
        # A campaign is hours of compute; a typo must fail at spec time,
        # not after the first seed's cells already burned a runner.
        if not self.name or "/" in self.name:
            raise ValueError(f"campaign name must be a non-empty label "
                             f"without '/', got {self.name!r}")
        if not self.domains:
            raise ValueError("at least one domain is required")
        bad_domains = [d for d in self.domains
                       if d not in self.scale.num_entities]
        if bad_domains:
            raise ValueError(f"unknown domains {bad_domains}; this scale "
                             f"sizes: {sorted(self.scale.num_entities)}")
        if not self.scenarios:
            raise ValueError("at least one scenario is required")
        bad_scenarios = [s for s in self.scenarios
                         if s not in scenario_names()]
        if bad_scenarios:
            raise ValueError(f"unknown scenarios {bad_scenarios}; "
                             f"available: {scenario_names()}")
        if len(set(self.scenarios)) != len(self.scenarios):
            raise ValueError(f"duplicate scenarios in {self.scenarios}")
        if not self.methods:
            raise ValueError("at least one method is required")
        harvestable = set(selector_names()) | (BASELINE_METHODS - {"IDEAL"})
        bad_methods = [m for m in self.methods if m not in harvestable]
        if bad_methods:
            raise ValueError(f"unknown methods {bad_methods}; "
                             f"available: {sorted(harvestable)}")
        if not self.seeds:
            raise ValueError("at least one seed is required")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"duplicate seeds in {self.seeds}")
        if self.num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        if self.corpus_store not in STORE_MODES:
            raise ValueError(f"unknown corpus-store mode "
                             f"{self.corpus_store!r}; options: {STORE_MODES}")

    # -- Serialisation -----------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON rendering (deterministic content, scale by value)."""
        scale = {
            "name": self.scale.name,
            "num_entities": dict(self.scale.num_entities),
            "pages_per_entity": self.scale.pages_per_entity,
            "num_splits": self.scale.num_splits,
            "max_test_entities": self.scale.max_test_entities,
            "max_aspects": self.scale.max_aspects,
            "num_queries_list": list(self.scale.num_queries_list),
            "corpus_seed": self.scale.corpus_seed,
        }
        doc: Dict[str, object] = {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "scale": scale,
            "domains": list(self.domains),
            "scenarios": list(self.scenarios),
            "methods": list(self.methods),
            "seeds": list(self.seeds),
            "num_queries": self.num_queries,
            "corpus_store": self.corpus_store,
            "config": None,
        }
        if self.config is not None:
            from dataclasses import asdict

            doc["config"] = asdict(self.config)
        return doc

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, trailing newline)."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "CampaignSpec":
        """Rebuild a spec from its :meth:`to_json_dict` rendering."""
        schema = doc.get("schema")
        if schema != SPEC_SCHEMA:
            raise ValueError(f"unsupported campaign spec schema {schema!r}; "
                             f"expected {SPEC_SCHEMA!r}")
        raw_scale = doc["scale"]
        scale = ExperimentScale(
            name=raw_scale["name"],
            num_entities=dict(raw_scale["num_entities"]),
            pages_per_entity=raw_scale["pages_per_entity"],
            num_splits=raw_scale["num_splits"],
            max_test_entities=raw_scale["max_test_entities"],
            max_aspects=raw_scale["max_aspects"],
            num_queries_list=tuple(raw_scale["num_queries_list"]),
            corpus_seed=raw_scale["corpus_seed"],
        )
        config = None
        if doc.get("config") is not None:
            config = L2QConfig(**doc["config"])
        return cls(
            name=doc["name"],
            scale=scale,
            domains=tuple(doc["domains"]),
            scenarios=tuple(doc["scenarios"]),
            methods=tuple(doc["methods"]),
            seeds=tuple(doc["seeds"]),
            num_queries=doc.get("num_queries", 3),
            corpus_store=doc.get("corpus_store", "auto"),
            config=config,
        )

    def save(self, path) -> Path:
        """Write the spec JSON and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path) -> "CampaignSpec":
        """Read a spec JSON file."""
        return cls.from_json_dict(
            json.loads(Path(path).read_text(encoding="utf-8")))

    # -- Compilation -------------------------------------------------------
    def scale_for_seed(self, seed: int) -> ExperimentScale:
        """This campaign's scale with one seed's corpus realisation."""
        return replace(self.scale, corpus_seed=seed)

    def scenario_specs(self) -> List[ScenarioSpec]:
        """The instantiated scenario pipelines, in spec order."""
        return [make_scenario(name) for name in self.scenarios]


@dataclass(frozen=True)
class CampaignCell:
    """One compiled unit of campaign work: a keyed sweep cell.

    ``scenario`` is ``None`` for a (seed, domain)'s clean baseline cell.
    ``key`` is the content-addressed identity the journal checkpoints
    against (:meth:`~repro.exec.specs.SweepCellSpec.cell_key`).
    """

    seed: int
    domain: str
    scenario: Optional[str]
    spec: SweepCellSpec
    key: str

    def label(self) -> str:
        """Human-readable cell label for plans and status tables."""
        return f"seed={self.seed} {self.domain}/{self.scenario or 'clean'}"


def compile_cells(spec: CampaignSpec) -> List[CampaignCell]:
    """Compile a spec into its deterministic, content-addressed job list.

    Cell order is seed-major, then domain-major, then clean + scenarios
    in spec order — the order :class:`~repro.eval.scenario_sweep
    .ScenarioSweep` dispatches cells in, so contiguous runs keep a
    domain's cells together and worker base caches amortise the same
    way.  ``base_slots`` is sized to the distinct bases across the whole
    campaign, so resumed partial dispatches can never thrash a worker
    cache that a full dispatch would not.
    """
    scenario_specs = spec.scenario_specs()
    cells: List[CampaignCell] = []
    for seed in spec.seeds:
        scale = spec.scale_for_seed(seed)
        for domain in spec.domains:
            for scenario in [None] + scenario_specs:
                cell_spec = SweepCellSpec(
                    corpus=scale.corpus_spec_for(domain, scenario=scenario),
                    methods=tuple(spec.methods),
                    num_queries=spec.num_queries,
                    num_splits=scale.num_splits,
                    max_test_entities=scale.max_test_entities,
                    max_aspects=scale.max_aspects,
                    config=spec.config,
                    base_seed=RUNNER_BASE_SEED,
                )
                cells.append(CampaignCell(
                    seed=seed,
                    domain=domain,
                    scenario=scenario.name if scenario else None,
                    spec=cell_spec,
                    key=cell_spec.cell_key(),
                ))
    base_slots = len({cell.spec.corpus.base_key() for cell in cells})
    cells = [replace(cell, spec=replace(cell.spec, base_slots=base_slots))
             for cell in cells]
    keys = [cell.key for cell in cells]
    if len(set(keys)) != len(keys):  # pragma: no cover - spec validation bars it
        raise ValueError("compiled campaign contains duplicate cell keys")
    return cells


def spec_from_preset(name: str, scale: str, domains: Sequence[str],
                     scenarios: Sequence[str], methods: Sequence[str],
                     seeds: Sequence[int], num_queries: int = 3,
                     corpus_store: str = "auto",
                     config: Optional[L2QConfig] = None) -> CampaignSpec:
    """Build a spec from a named scale preset (the CLI inline path).

    ``seeds`` defaulting is the caller's job; pass the preset's own
    ``corpus_seed`` for the single-world campaign the sweep runs today.
    """
    preset = get_scale(scale)
    bad = [d for d in domains if d not in available_domains()]
    if bad:
        raise ValueError(f"unknown domains {bad}; "
                         f"available: {available_domains()}")
    return CampaignSpec(name=name, scale=preset, domains=tuple(domains),
                        scenarios=tuple(scenarios), methods=tuple(methods),
                        seeds=tuple(seeds), num_queries=num_queries,
                        corpus_store=corpus_store, config=config)
