"""Resumable harvest campaigns: journaled job store with checkpoint/resume.

The fleet-scale layer over the scenario sweep.  A declarative
:class:`CampaignSpec` (domains × scenarios × methods × seeds × scale,
JSON round-trippable) compiles into deterministic, content-addressed
:class:`CampaignCell` jobs; the :class:`CampaignStore` journals every
finished cell (fsync'd artifact first, journal line second); and the
:class:`CampaignRunner` dispatches pending cells through any execution
backend, skipping everything a killed predecessor already committed and
folding finished artifacts into the same robustness matrices
:class:`~repro.eval.scenario_sweep.ScenarioSweep` emits — byte-identical
whether the campaign ran uninterrupted or was SIGKILLed and resumed.
"""

from repro.campaign.registry import (
    STORES_NAME,
    clean_stale_stores,
    register_store_handles,
    release_all_registered,
    release_registered,
)
from repro.campaign.runner import (
    INTERCELL_SLEEP_ENV,
    MATRICES_SCHEMA,
    SUMMARY_SCHEMA,
    CampaignRunReport,
    CampaignRunner,
    fold_matrices,
)
from repro.campaign.spec import (
    SPEC_SCHEMA,
    CampaignCell,
    CampaignSpec,
    compile_cells,
    spec_from_preset,
)
from repro.campaign.store import (
    CELL_SCHEMA,
    CELLS_DIR,
    JOURNAL_NAME,
    MATRICES_NAME,
    SPEC_NAME,
    CampaignStore,
    JournalReplay,
)

__all__ = [
    "CELL_SCHEMA",
    "CELLS_DIR",
    "INTERCELL_SLEEP_ENV",
    "JOURNAL_NAME",
    "MATRICES_NAME",
    "MATRICES_SCHEMA",
    "SPEC_NAME",
    "SPEC_SCHEMA",
    "STORES_NAME",
    "SUMMARY_SCHEMA",
    "CampaignCell",
    "CampaignRunReport",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStore",
    "JournalReplay",
    "clean_stale_stores",
    "compile_cells",
    "fold_matrices",
    "register_store_handles",
    "release_all_registered",
    "release_registered",
    "spec_from_preset",
]
