"""Journaled on-disk campaign store: artifacts first, journal line second.

The crash-safety contract, in write order:

1. The cell's result artifact is written to ``cells/<key>.json.tmp``,
   flushed and fsync'd, then atomically renamed to ``cells/<key>.json``
   (and the directory entry fsync'd), so a reader can never observe a
   half-written artifact under the final name.
2. Only then is the ``{"event": "cell", "key": ...}`` line appended to
   ``journal.jsonl`` and fsync'd.  The journal line *commits* the cell:
   a crash between (1) and (2) leaves an orphan artifact that replay
   ignores (the cell re-runs and rewrites it byte-identically), never a
   journal entry without its artifact.

Replay is deliberately forgiving — every corruption degrades to "re-run
the cell", never to wrong output:

* a torn final line (the classic power-cut append) is ignored with a
  warning;
* duplicate entries for one key are idempotent (first wins; later ones
  are counted, not trusted differently — artifacts are content-addressed
  so they are the same bytes anyway);
* an entry whose artifact is missing or unreadable is dropped with a
  loud warning and the cell re-runs.

Aggregation (``matrices.json``) is a pure function of the artifacts on
disk, so a resumed campaign's output is byte-identical to an
uninterrupted run's.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.exec.specs import SweepCellResult

logger = logging.getLogger(__name__)

#: File names of the on-disk layout (all relative to the campaign root).
SPEC_NAME = "spec.json"
JOURNAL_NAME = "journal.jsonl"
CELLS_DIR = "cells"
MATRICES_NAME = "matrices.json"

#: Identifier of the per-cell artifact layout.
CELL_SCHEMA = "CampaignCell/v1"


@dataclass
class JournalReplay:
    """What replaying a journal established about completed work."""

    #: Cell key → artifact path of every *committed* cell (journal entry
    #: present and its artifact readable).
    completed: Dict[str, Path] = field(default_factory=dict)
    #: Parsed journal entries (including duplicates).
    entries: int = 0
    #: Entries for keys already seen earlier in the journal.
    duplicates: int = 0
    #: Human-readable descriptions of every anomaly replay tolerated.
    warnings: List[str] = field(default_factory=list)


class CampaignStore:
    """One campaign's directory: spec, journal, artifacts, matrices."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # -- Layout ------------------------------------------------------------
    @property
    def spec_path(self) -> Path:
        return self.root / SPEC_NAME

    @property
    def journal_path(self) -> Path:
        return self.root / JOURNAL_NAME

    @property
    def cells_dir(self) -> Path:
        return self.root / CELLS_DIR

    @property
    def matrices_path(self) -> Path:
        return self.root / MATRICES_NAME

    def artifact_path(self, key: str) -> Path:
        return self.cells_dir / f"{key}.json"

    # -- Spec --------------------------------------------------------------
    def initialise(self, spec: CampaignSpec) -> CampaignSpec:
        """Bind this directory to a spec (idempotent for the same spec).

        A directory already bound to a *different* spec refuses loudly:
        resuming a campaign against changed cells would fold mismatched
        artifacts into one matrix.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.cells_dir.mkdir(exist_ok=True)
        if self.spec_path.exists():
            existing = CampaignSpec.load(self.spec_path)
            if existing.to_json() != spec.to_json():
                raise ValueError(
                    f"campaign directory {self.root} is already bound to "
                    f"spec {existing.name!r} with different contents; use a "
                    f"fresh directory or resume without passing a spec")
            return existing
        spec.save(self.spec_path)
        return spec

    def load_spec(self) -> CampaignSpec:
        """The spec this directory is bound to (raises if uninitialised)."""
        if not self.spec_path.exists():
            raise FileNotFoundError(
                f"{self.spec_path} does not exist; this directory holds no "
                f"campaign (run `campaign run` with a spec first)")
        return CampaignSpec.load(self.spec_path)

    # -- Journal -----------------------------------------------------------
    def record(self, cell: CampaignCell, result: SweepCellResult) -> Path:
        """Commit one finished cell: fsync'd artifact, then journal line."""
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        artifact = self.artifact_path(cell.key)
        payload = {
            "schema": CELL_SCHEMA,
            "key": cell.key,
            "seed": cell.seed,
            "domain": cell.domain,
            "scenario": cell.scenario,
            "result": result.to_json_dict(),
        }
        tmp = artifact.with_name(artifact.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, artifact)
        self._fsync_dir(self.cells_dir)
        line = json.dumps({"event": "cell", "key": cell.key,
                           "seed": cell.seed, "domain": cell.domain,
                           "scenario": cell.scenario,
                           "artifact": f"{CELLS_DIR}/{artifact.name}"},
                          sort_keys=True)
        with open(self.journal_path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return artifact

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        """Flush a directory entry (rename durability); best-effort."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fsync on dirs unsupported
            pass
        finally:
            os.close(fd)

    def replay(self) -> JournalReplay:
        """Establish completed cells from the journal (corruption-tolerant)."""
        replay = JournalReplay()
        if not self.journal_path.exists():
            return replay
        raw = self.journal_path.read_bytes()
        lines = raw.split(b"\n")
        # A file ending in "\n" splits into [..., b""]; anything else in
        # the final slot is a torn trailing write.
        torn_tail = lines and lines[-1] != b""
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                if torn_tail and index == len(lines) - 1:
                    self._warn(replay,
                               f"journal ends in a truncated line (torn "
                               f"write); treating the cell as incomplete")
                else:
                    self._warn(replay,
                               f"journal line {index + 1} is corrupt; "
                               f"ignoring it (its cell will re-run)")
                continue
            if not isinstance(entry, dict) or entry.get("event") != "cell" \
                    or not entry.get("key"):
                self._warn(replay,
                           f"journal line {index + 1} is not a cell event; "
                           f"ignoring it")
                continue
            replay.entries += 1
            key = entry["key"]
            if key in replay.completed:
                replay.duplicates += 1
                continue
            artifact = self.artifact_path(key)
            if not self._artifact_ok(artifact, key):
                self._warn(replay,
                           f"journal references cell {key} but its artifact "
                           f"{artifact.name} is missing or unreadable; the "
                           f"cell will re-run")
                continue
            replay.completed[key] = artifact
        return replay

    def _artifact_ok(self, artifact: Path, key: str) -> bool:
        """Whether a committed cell's artifact is present and parseable."""
        if not artifact.exists():
            return False
        try:
            payload = json.loads(artifact.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        return isinstance(payload, dict) and payload.get("key") == key \
            and isinstance(payload.get("result"), dict)

    @staticmethod
    def _warn(replay: JournalReplay, message: str) -> None:
        replay.warnings.append(message)
        logger.warning("campaign journal: %s", message)

    # -- Artifacts ---------------------------------------------------------
    def read_result(self, key: str) -> SweepCellResult:
        """Load one committed cell's result from its artifact."""
        payload = json.loads(
            self.artifact_path(key).read_text(encoding="utf-8"))
        return SweepCellResult.from_json_dict(payload["result"])

    def write_matrices(self, document: Dict[str, object]) -> Path:
        """Write the folded campaign matrices (canonical JSON)."""
        text = json.dumps(document, indent=2, sort_keys=True) + "\n"
        self.matrices_path.write_text(text, encoding="utf-8")
        return self.matrices_path
