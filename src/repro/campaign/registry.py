"""Crash-safe registry of the shared-store segments a campaign published.

:mod:`repro.store` already unlinks everything the publishing process owns
at interpreter exit — but ``atexit`` never runs under SIGKILL or runner
preemption, which is precisely when a campaign dies.  A killed
orchestrator would then leak its shm segments (bounded only by
``/dev/shm``) and mmap temp files until reboot.

This module closes that hole with a two-layer registry keyed by campaign
directory:

* **on disk** — ``stores.json`` in the campaign root records every handle
  the orchestrator published *before* the first cell dispatches.  A later
  resume (or an explicit ``campaign clean``) reaps whatever the file
  names: :func:`repro.store.release` unlinks segments it does not own by
  re-attaching first, and unlinking an already-gone name is a no-op, so
  reaping is idempotent and safe to run eagerly.
* **in process** — an ``atexit`` hook releases still-registered handles
  and removes their registry files on any *orderly* exit (including an
  unhandled exception), so the normal path leaves no stale file behind.
"""

from __future__ import annotations

import atexit
import json
import logging
from pathlib import Path
from typing import Dict, List, Mapping

from repro.store import StoreHandle, release

logger = logging.getLogger(__name__)

#: Registry file name inside a campaign directory.
STORES_NAME = "stores.json"

#: Campaign roots this process has live published handles for.
_LIVE: Dict[str, Dict[str, StoreHandle]] = {}
_ATEXIT_REGISTERED = False


def _stores_path(root) -> Path:
    return Path(root) / STORES_NAME


def _register_atexit() -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(release_all_registered)
        _ATEXIT_REGISTERED = True


def register_store_handles(root, handles: Mapping[str, StoreHandle]) -> None:
    """Record published handles durably before any cell dispatches.

    ``handles`` maps an arbitrary label (e.g. ``"seed7/car"``) to the
    published :class:`~repro.store.StoreHandle`.  An empty mapping
    removes any stale registry file instead.
    """
    root = Path(root)
    path = _stores_path(root)
    if not handles:
        path.unlink(missing_ok=True)
        return
    doc = {
        "handles": [
            {"label": label, "mode": handle.mode, "name": handle.name,
             "size": handle.size, "digest": handle.digest}
            for label, handle in sorted(handles.items())
        ],
    }
    root.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    _LIVE[str(root)] = dict(handles)
    _register_atexit()


def release_registered(root) -> None:
    """Release this process's handles for one campaign (orderly path)."""
    handles = _LIVE.pop(str(Path(root)), None)
    if handles:
        for handle in handles.values():
            release(handle)
    _stores_path(root).unlink(missing_ok=True)


def release_all_registered() -> None:
    """The atexit hook: release every still-registered campaign's stores."""
    for root in list(_LIVE):
        release_registered(root)


def clean_stale_stores(root) -> List[str]:
    """Reap segments/files a killed orchestrator left behind.

    Reads ``stores.json`` (if present), unlinks every recorded segment or
    mmap temp file — including ones published by a *different, dead*
    process — removes the registry file and returns the reaped names.
    Called on resume before publishing fresh stores, and by
    ``campaign clean``.
    """
    path = _stores_path(root)
    if not path.exists():
        return []
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
        entries = doc.get("handles", [])
    except (OSError, ValueError):
        logger.warning("campaign stores registry %s is unreadable; "
                       "removing it without reaping", path)
        entries = []
    reaped: List[str] = []
    for entry in entries:
        try:
            handle = StoreHandle(mode=entry["mode"], name=entry["name"],
                                 size=entry.get("size", 0),
                                 digest=entry.get("digest"))
        except (KeyError, TypeError):
            logger.warning("campaign stores registry %s holds a malformed "
                           "entry %r; skipping it", path, entry)
            continue
        release(handle)
        reaped.append(f"{handle.mode}:{handle.name}")
    _LIVE.pop(str(Path(root)), None)
    path.unlink(missing_ok=True)
    if reaped:
        logger.warning("campaign clean: reaped %d stale store segment(s): %s",
                       len(reaped), ", ".join(reaped))
    return reaped
