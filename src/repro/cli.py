"""Command-line interface for the L2Q reproduction.

Four subcommands cover the common workflows:

``repro-l2q corpus``
    Generate a synthetic corpus and print its summary statistics.

``repro-l2q harvest``
    Run the full harvesting loop for one (entity, aspect) pair with a chosen
    strategy and print the fired queries and resulting metrics.

``repro-l2q experiment``
    Regenerate one of the paper's figures (fig09 ... fig14) and print the
    corresponding table.

``repro-l2q scenarios``
    Robustness lab: ``scenarios list`` prints the registered hostile-corpus
    scenarios; ``scenarios run`` sweeps selectors × scenarios and writes the
    robustness matrix to ``BENCH_scenarios.json`` (same seed ⇒ byte-identical
    output).

``repro-l2q serve``
    Async serving layer: ``serve bench`` drives one job batch through the
    asyncio :class:`~repro.serving.runner.ServingRunner` at each requested
    concurrency level (simulated search service: latency tails, QPS cap,
    injected timeouts/failures with budget-charged retries) and writes the
    ``BENCH_serving.json`` artifact — deterministic metrics blocks under a
    fixed client seed, measured sessions/sec per level.

``repro-l2q perf``
    Performance tracking: ``perf manifest`` regenerates the unified
    ``BENCH_manifest.json`` from the ``benchmarks/results/BENCH_*.json``
    artifacts (deterministic — CI diffs it for freshness); ``perf report``
    renders per-backend speedup tables, the serving table and throughput
    deltas vs the committed manifest.

``repro-l2q campaign``
    Resumable campaigns: ``campaign plan`` compiles a spec (from a JSON
    file or inline flags) into its content-addressed cell list;
    ``campaign run`` executes pending cells against a journaled directory
    (checkpointing each finished cell, skipping everything already
    journalled — a killed run loses at most one checkpoint batch);
    ``campaign resume`` is ``run`` against an already-bound directory;
    ``campaign status`` reports completed/pending cells and journal
    anomalies; ``campaign clean`` reaps shared-store segments a killed
    orchestrator leaked.  Resumed output is byte-identical to an
    uninterrupted run (matrices fold purely from on-disk artifacts).

``harvest`` and ``experiment`` both accept ``--ranker`` to pick the
retrieval model backing the offline search engine (any name in the ranker
registry, ``dirichlet`` by default), plus ``--backend {serial,thread,
process}`` and ``--workers`` to pick the execution engine for the
harvesting loops (results are identical for any backend and worker count;
seeds are derived per run, not per schedule).  ``--backend``/``--workers``
are ignored — with a note — where they cannot help: single ``harvest``
runs, ``fig09`` (no harvesting) and ``fig14`` (wall-clock selection timings
must be measured serially).

They also accept ``--client {instant,simulated}`` to pick the search
client at the fetch boundary (``instant`` is the historical in-process
oracle; ``simulated`` wraps the engine in a seeded flaky search service)
and — for ``experiment`` — ``--concurrency N`` to route harvesting
through the async serving backend with N sessions in flight.  Session
results stay bit-identical across clients' *scheduling* (draws are
request-keyed), and the instant client reproduces the historical results
exactly at any concurrency.

``scenarios run`` additionally accepts ``--paper-scale`` (the paper's 996
researchers / 143 cars sweep, defaulting to the sharded process backend
over all CPUs) and ``--param name=v1,v2,...`` severity grids that expand
each requested scenario into one cell per parameter value; when the name
is an :class:`~repro.core.config.L2QConfig` field (e.g. ``dedup_penalty``)
the grid varies the learner against a fixed corpus condition instead.
``harvest``, ``experiment`` and ``scenarios run`` take ``--dedup-penalty``
to enable dedup-aware selection (page-level MinHash novelty discount;
0 = off, the paper's exact behaviour) and ``--perf-output PATH`` to record
wall-clock phase timings (split preparation, harvest loops, sweep cells)
into a JSON report — the same profiling ``REPRO_PERF=1`` enables ambiently.

Usage examples::

    python -m repro.cli corpus --domain car --entities 20
    python -m repro.cli harvest --domain researcher --aspect RESEARCH --method L2QBAL
    python -m repro.cli harvest --domain researcher --ranker bm25
    python -m repro.cli experiment --figure fig13 --scale smoke --backend process --workers 4
    python -m repro.cli scenarios list
    python -m repro.cli scenarios run --scale smoke --scenarios zipf-skew near-duplicates
    python -m repro.cli scenarios run --scenarios zipf-skew --param exponent=0.5,1.0,1.5
    python -m repro.cli scenarios run --scenarios near-duplicates --param dedup_penalty=0.0,0.5
    python -m repro.cli scenarios run --scenarios near-duplicates hostile-mix --dedup-penalty 0.5
    python -m repro.cli scenarios run --paper-scale --perf-output perf.json
    python -m repro.cli harvest --domain researcher --client simulated
    python -m repro.cli experiment --figure fig13 --client simulated --concurrency 8
    python -m repro.cli serve bench --scale smoke --concurrency 1 8
    python -m repro.cli perf manifest
    python -m repro.cli perf report
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Tuple

from repro import perf
from repro.core.config import L2QConfig
from repro.core.queries import format_query
from repro.corpus.domains import available_domains
from repro.corpus.synthetic import build_corpus
from repro.eval import experiments, reporting
from repro.eval.metrics import compute_metrics
from repro.eval.runner import ExperimentRunner
from repro.eval.scenario_sweep import (
    DEFAULT_SWEEP_METHODS,
    ScenarioSweep,
    expand_config_grid,
    expand_severity_grid,
)
from repro.exec.backends import BACKEND_PROCESS, backend_names, make_backend
from repro.scenarios import make_scenario, scenario_names
from repro.store import STORE_MODES
from repro.search.clients import CLIENT_KINDS, CLIENT_SIMULATED, make_client
from repro.search.rankers import ranker_names

_FIGURES = {
    "fig09": (experiments.run_fig09, reporting.format_fig09),
    "fig10": (experiments.run_fig10, reporting.format_fig10),
    "fig11": (experiments.run_fig11, reporting.format_fig11),
    "fig12": (experiments.run_fig12, reporting.format_fig12),
    "fig13": (experiments.run_fig13, reporting.format_fig13),
    "fig14": (experiments.run_fig14, reporting.format_fig14),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-l2q",
        description="Reproduction of 'Learning to Query' (ICDE 2016)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    corpus = subparsers.add_parser("corpus", help="generate a corpus and print statistics")
    _add_corpus_arguments(corpus)

    harvest = subparsers.add_parser("harvest", help="harvest one entity aspect")
    _add_corpus_arguments(harvest)
    harvest.add_argument("--aspect", default=None,
                         help="target aspect (defaults to the domain's first aspect)")
    harvest.add_argument("--method", default="L2QBAL",
                         help="selection strategy (e.g. L2QBAL, L2QP, MQ, LM)")
    harvest.add_argument("--queries", type=int, default=3,
                         help="number of queries after the seed (default 3)")
    harvest.add_argument("--entity", default=None,
                         help="entity id to harvest (defaults to the first test entity)")
    _add_engine_arguments(harvest)
    _add_serving_arguments(harvest)

    experiment = subparsers.add_parser("experiment", help="regenerate a paper figure")
    experiment.add_argument("--figure", choices=sorted(_FIGURES), required=True)
    experiment.add_argument("--scale", choices=["smoke", "default", "paper"],
                            default="smoke")
    experiment.add_argument("--domains", nargs="+", default=list(experiments.DOMAINS),
                            choices=available_domains())
    _add_engine_arguments(experiment)
    _add_serving_arguments(experiment)

    scenarios = subparsers.add_parser(
        "scenarios", help="list or run hostile-corpus robustness scenarios")
    scenario_commands = scenarios.add_subparsers(dest="scenario_command",
                                                 required=True)
    scenario_commands.add_parser("list", help="print the registered scenarios")
    run = scenario_commands.add_parser(
        "run", help="sweep selectors x scenarios and write BENCH_scenarios.json")
    run.add_argument("--scale", choices=["smoke", "default", "paper"],
                     default=None,
                     help="corpus / split sizing preset (default: smoke)")
    run.add_argument("--paper-scale", action="store_true",
                     help="run the paper-scale sweep (996 researchers / 143 "
                          "cars); implies --scale paper and defaults to the "
                          "process backend over all CPUs (conflicts with an "
                          "explicit --scale)")
    run.add_argument("--scenarios", nargs="+", default=None,
                     metavar="SCENARIO",
                     help="scenario names to sweep (default: all registered)")
    run.add_argument("--param", default=None, metavar="NAME=V1,V2,...",
                     help="severity grid: sweep one perturbation parameter "
                          "— or one L2QConfig field such as dedup_penalty — "
                          "over the given values (requires --scenarios)")
    run.add_argument("--methods", nargs="+", default=list(DEFAULT_SWEEP_METHODS),
                     metavar="METHOD",
                     help="selectors / baselines to sweep "
                          f"(default: {' '.join(DEFAULT_SWEEP_METHODS)})")
    run.add_argument("--domains", nargs="+", default=list(experiments.DOMAINS),
                     choices=available_domains())
    run.add_argument("--queries", type=_positive_int, default=3,
                     help="query budget evaluated per run (default 3)")
    run.add_argument("--output", default="BENCH_scenarios.json",
                     help="path of the robustness matrix JSON "
                          "(default: ./BENCH_scenarios.json)")
    _add_engine_arguments(run)

    serve = subparsers.add_parser(
        "serve", help="async serving runner over the harvest loop")
    serve_commands = serve.add_subparsers(dest="serve_command", required=True)
    bench = serve_commands.add_parser(
        "bench", help="serve one job batch per concurrency level and write "
                      "BENCH_serving.json (sessions/sec, latency tails, "
                      "retry/timeout counts)")
    bench.add_argument("--scale", choices=["smoke", "default", "paper"],
                       default="smoke")
    bench.add_argument("--domain", default="researcher",
                       choices=available_domains())
    bench.add_argument("--methods", nargs="+", default=None, metavar="METHOD",
                       help="selection strategies served (default: RND MQ)")
    bench.add_argument("--queries", type=_positive_int, default=3,
                       help="query budget per session (default 3)")
    bench.add_argument("--entities", type=_positive_int, default=4,
                       help="test entities served per method x aspect "
                            "(default 4)")
    bench.add_argument("--concurrency", type=_positive_int, nargs="+",
                       default=None, metavar="N",
                       help="concurrency levels to measure (default: 1 8)")
    bench.add_argument("--time-scale", type=_non_negative_float, default=1.0,
                       metavar="FACTOR",
                       help="simulated-latency-to-real-sleep multiplier; "
                            "< 1 compresses wall-clock without touching the "
                            "deterministic metrics (default 1.0)")
    bench.add_argument("--client-seed", type=int, default=None,
                       help="seed of the simulated service's stochastic "
                            "draws (default: the stock ClientSpec seed)")
    bench.add_argument("--output", default="benchmarks/results/BENCH_serving.json",
                       help="artifact path "
                            "(default: benchmarks/results/BENCH_serving.json)")

    campaign = subparsers.add_parser(
        "campaign", help="plan, run, resume and inspect journaled campaigns")
    campaign_commands = campaign.add_subparsers(dest="campaign_command",
                                                required=True)
    plan = campaign_commands.add_parser(
        "plan", help="compile a campaign spec into its content-addressed "
                     "cell list (and optionally bind a directory to it)")
    _add_campaign_spec_arguments(plan)
    plan.add_argument("--dir", default=None, metavar="DIR",
                      help="campaign directory to initialise with the spec "
                           "(default: plan only, no directory touched)")
    for verb, text in (("run", "execute pending cells against a journaled "
                               "campaign directory (resume-safe: journalled "
                               "cells are skipped)"),
                       ("resume", "resume a killed campaign (identical to "
                                  "run, but requires an already-bound "
                                  "directory)")):
        sub = campaign_commands.add_parser(verb, help=text)
        sub.add_argument("--dir", required=True, metavar="DIR",
                         help="campaign directory (journal, artifacts, "
                              "matrices)")
        if verb == "run":
            _add_campaign_spec_arguments(sub)
        sub.add_argument("--backend", default=None, choices=backend_names(),
                         help="execution backend for cell dispatch "
                              "(default: serial for 1 worker, thread for "
                              "more; results identical for any backend)")
        sub.add_argument("--workers", type=_positive_int, default=None,
                         help="parallel cell workers (default 1)")
        sub.add_argument("--checkpoint-every", type=_positive_int,
                         default=None, metavar="N",
                         help="cells committed per dispatch round — the "
                              "crash-loss bound (default: the worker count)")
        sub.add_argument("--max-cells", type=_positive_int, default=None,
                         metavar="N",
                         help="execute at most N pending cells this "
                              "invocation (default: all)")
        sub.add_argument("--bench-output", default=None, metavar="PATH",
                         help="write the BENCH_campaign summary artifact "
                              "(cells skipped/executed, journal anomalies) "
                              "for the perf manifest's campaigns block")
        sub.add_argument("--perf-output", default=None, metavar="PATH",
                         help="record campaign phase timings (replay, "
                              "publish, dispatch, fold) to PATH")
    status = campaign_commands.add_parser(
        "status", help="journal-replay view: completed vs pending cells")
    status.add_argument("--dir", required=True, metavar="DIR")
    clean = campaign_commands.add_parser(
        "clean", help="reap shared-store segments/mmap temp files a killed "
                      "campaign orchestrator leaked")
    clean.add_argument("--dir", required=True, metavar="DIR")

    perf_parser = subparsers.add_parser(
        "perf", help="build the perf manifest or render speedup reports")
    perf_commands = perf_parser.add_subparsers(dest="perf_command",
                                               required=True)
    manifest = perf_commands.add_parser(
        "manifest", help="regenerate BENCH_manifest.json from the "
                         "committed BENCH_*.json artifacts (deterministic)")
    manifest.add_argument("--results", default="benchmarks/results",
                          help="directory holding the BENCH_*.json artifacts "
                               "(default: benchmarks/results)")
    manifest.add_argument("--output", default=None,
                          help="manifest path to write "
                               "(default: <results>/BENCH_manifest.json)")
    report = perf_commands.add_parser(
        "report", help="render per-backend speedup tables and deltas vs "
                       "the committed manifest")
    report.add_argument("--results", default="benchmarks/results",
                        help="artifact directory a fresh manifest is built "
                             "from when --manifest is not given")
    report.add_argument("--manifest", default=None,
                        help="pre-built manifest to render (default: build "
                             "one in memory from --results)")
    report.add_argument("--baseline", default=None,
                        help="committed manifest to diff against (default: "
                             "<results>/BENCH_manifest.json when present)")
    return parser


def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--domain", default="researcher", choices=available_domains())
    parser.add_argument("--entities", type=int, default=24)
    parser.add_argument("--pages", type=int, default=16)
    parser.add_argument("--seed", type=int, default=3)


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _dedup_penalty(value: str) -> float:
    number = float(value)
    if not 0.0 <= number <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {number}")
    return number


def _non_negative_float(value: str) -> float:
    number = float(value)
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {number}")
    return number


def _add_serving_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--client", default=None, choices=list(CLIENT_KINDS),
                        help="search client at the fetch boundary: 'instant' "
                             "is the in-process oracle (default, the paper's "
                             "semantics); 'simulated' wraps the engine in a "
                             "seeded flaky service (latency tails, QPS cap, "
                             "timeouts/failures with budget-charged retries)")
    parser.add_argument("--concurrency", type=_positive_int, default=None,
                        metavar="N",
                        help="serve harvests through the async serving "
                             "backend with N sessions in flight (instant "
                             "client results stay identical to serial)")


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ranker", default=None, choices=ranker_names(),
                        help="retrieval model of the offline search engine "
                             "(default: the configured 'dirichlet')")
    parser.add_argument("--dedup-penalty", type=_dedup_penalty, default=None,
                        metavar="WEIGHT",
                        help="dedup-aware selection: discount collective "
                             "utilities by page-level expected redundancy "
                             "(0 = off, the default; 1 = full discount)")
    parser.add_argument("--backend", default=None, choices=backend_names(),
                        help="execution backend for the harvesting loops "
                             "(default: serial for 1 worker, thread for "
                             "more; results are identical for any backend)")
    parser.add_argument("--workers", type=_positive_int, default=None,
                        help="parallel harvesting workers (default 1, or all "
                             "CPUs under --paper-scale; results are identical "
                             "for any value)")
    parser.add_argument("--corpus-store", default=None,
                        choices=list(STORE_MODES),
                        help="shared corpus store for the process backend: "
                             "publish the corpus + index once and have "
                             "workers attach instead of rebuilding (auto = "
                             "probe shm, else mmap; results are identical "
                             "with or without the store)")
    parser.add_argument("--perf-output", default=None, metavar="PATH",
                        help="record wall-clock phase timings (split "
                             "preparation, harvest loops, sweep cells) and "
                             "write the JSON report to PATH")


def _add_campaign_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--spec", default=None, metavar="FILE",
                        help="campaign spec JSON (embeds the scale by "
                             "value); inline flags below are ignored when "
                             "given")
    parser.add_argument("--name", default="campaign",
                        help="campaign name (default: campaign)")
    parser.add_argument("--scale", choices=["smoke", "default", "paper"],
                        default="smoke",
                        help="corpus / split sizing preset embedded into "
                             "the spec by value (default: smoke)")
    parser.add_argument("--domains", nargs="+",
                        default=list(experiments.DOMAINS),
                        choices=available_domains())
    parser.add_argument("--scenarios", nargs="+", default=None,
                        metavar="SCENARIO",
                        help="scenario names (default: all registered)")
    parser.add_argument("--methods", nargs="+",
                        default=list(DEFAULT_SWEEP_METHODS),
                        metavar="METHOD",
                        help="selectors / baselines per cell "
                             f"(default: {' '.join(DEFAULT_SWEEP_METHODS)})")
    parser.add_argument("--seeds", nargs="+", type=int, default=None,
                        metavar="SEED",
                        help="corpus seeds, one world per seed (default: "
                             "the scale preset's corpus seed)")
    parser.add_argument("--queries", type=_positive_int, default=3,
                        help="query budget evaluated per run (default 3)")
    parser.add_argument("--corpus-store", default="auto",
                        choices=list(STORE_MODES),
                        help="shared corpus store policy for distributed "
                             "cell dispatch (default: auto)")


def _parse_param_grid(text: str) -> Tuple[str, List[object]]:
    """Parse ``name=v1,v2,...`` into a parameter name and typed values."""
    name, separator, raw_values = text.partition("=")
    if not separator or not name or not raw_values:
        raise argparse.ArgumentTypeError(
            f"--param expects NAME=V1,V2,... , got {text!r}")
    values: List[object] = []
    for token in raw_values.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(int(token))
        except ValueError:
            try:
                values.append(float(token))
            except ValueError:
                values.append(token)
    if not values:
        raise argparse.ArgumentTypeError(
            f"--param expects at least one value, got {text!r}")
    return name, values


def _command_corpus(args: argparse.Namespace, out) -> int:
    corpus = build_corpus(args.domain, num_entities=args.entities,
                          pages_per_entity=args.pages, seed=args.seed)
    for name, value in corpus.stats().as_rows():
        print(f"{name:30s} {value}", file=out)
    return 0


def _command_harvest(args: argparse.Namespace, out) -> int:
    corpus = build_corpus(args.domain, num_entities=args.entities,
                          pages_per_entity=args.pages, seed=args.seed)
    aspect = args.aspect or corpus.aspects[0]
    if aspect not in corpus.aspects:
        print(f"unknown aspect {aspect!r}; available: {corpus.aspects}", file=out)
        return 2
    config = L2QConfig(num_queries=args.queries)
    if args.ranker:
        config.ranker = args.ranker
    if args.dedup_penalty is not None:
        config.dedup_penalty = args.dedup_penalty
    if args.workers is not None or args.backend:
        print("note: harvest runs a single loop; --backend/--workers ignored",
              file=out)
    if args.concurrency is not None:
        print("note: harvest runs a single session; --concurrency ignored",
              file=out)
    runner = ExperimentRunner(corpus, config=config)
    split = runner.default_split(0)
    prepared = runner.prepare(split)
    entity_id = args.entity or split.test_entities[0]
    if entity_id not in corpus.entities:
        print(f"unknown entity {entity_id!r}", file=out)
        return 2

    client = None
    if args.client is not None:
        # Route the session through the stepper + client path explicitly,
        # so the fetch boundary (latency, retries, budget charging) shows.
        from repro.core.harvester import drive_stepper

        harvester = runner.harvester_for(prepared)
        job = runner.build_job(prepared, args.method, entity_id, aspect,
                               args.queries)
        client = make_client(args.client, prepared.engine)
        result = drive_stepper(harvester.stepper_for_job(job), client)
    else:
        result = runner.harvest_once(prepared, args.method, entity_id, aspect,
                                     args.queries)
    entity = corpus.get_entity(entity_id)
    print(f"entity : {entity.name} ({entity_id})", file=out)
    print(f"aspect : {aspect}", file=out)
    print(f"method : {args.method}", file=out)
    for record in result.iterations:
        print(f"  query #{record.index + 1}: {format_query(record.query)!r} "
              f"({len(record.new_page_ids)} new pages)", file=out)
    relevant = [p.page_id for p in corpus.relevant_pages(entity_id, aspect)]
    metrics = compute_metrics(result.gathered_after(args.queries), relevant)
    print(f"gathered {len(result.gathered_after(args.queries))} pages; "
          f"precision={metrics.precision:.3f} recall={metrics.recall:.3f} "
          f"f-score={metrics.f_score:.3f}", file=out)
    if client is not None:
        stats = client.stats
        print(f"client : {client.name}; requests={stats.requests} "
              f"attempts={stats.attempts} retries={stats.retries} "
              f"timeouts={stats.timeouts} failures={stats.failures} "
              f"exhausted={stats.exhausted}", file=out)
        print(f"client latency {stats.latency_seconds:.3f}s "
              f"(throttle {stats.throttle_seconds:.3f}s); "
              f"engine queries {stats.engine_queries}, "
              f"retry queries charged to budget {stats.retry_queries}",
              file=out)
    return 0


def _command_experiment(args: argparse.Namespace, out) -> int:
    run, render = _FIGURES[args.figure]
    scale = experiments.get_scale(args.scale)
    kwargs = {}
    serving_requested = args.client == CLIENT_SIMULATED \
        or args.concurrency is not None
    if args.figure == "fig09":  # fig09 trains classifiers only, no harvesting
        if args.ranker or args.workers is not None or args.backend \
                or args.dedup_penalty is not None or serving_requested:
            print("note: fig09 does no harvesting; --ranker/--backend/"
                  "--workers/--dedup-penalty/--client/--concurrency ignored",
                  file=out)
    else:
        if args.ranker or args.dedup_penalty is not None:
            config = L2QConfig()
            if args.ranker:
                config.ranker = args.ranker
            if args.dedup_penalty is not None:
                config.dedup_penalty = args.dedup_penalty
            kwargs["config"] = config
        kwargs["workers"] = args.workers if args.workers is not None else 1
        if args.figure == "fig14":
            if args.workers is not None or args.backend or serving_requested:
                print("note: fig14 measures wall-clock selection time; "
                      "harvests stay pinned to the serial backend, "
                      "--backend/--workers/--client/--concurrency ignored",
                      file=out)
        elif serving_requested:
            if args.backend:
                print("--client/--concurrency route harvesting through the "
                      "serving backend; drop --backend or the serving flags",
                      file=out)
                return 2
            kwargs["backend"] = make_backend(
                "serving", workers=args.concurrency or 8, client=args.client)
        else:
            if args.backend:
                kwargs["backend"] = args.backend
            if args.corpus_store is not None:
                kwargs["corpus_store"] = args.corpus_store
    result = run(scale, domains=tuple(args.domains), **kwargs)
    print(render(result), file=out)
    return 0


def _command_scenarios(args: argparse.Namespace, out) -> int:
    if args.scenario_command == "list":
        for name in scenario_names():
            spec = make_scenario(name)
            stages = ", ".join(p.name for p in spec.perturbations) or "none"
            print(f"{name:22s} {spec.description}", file=out)
            print(f"{'':22s} stages: {stages}", file=out)
        return 0

    config = None
    if args.ranker or args.dedup_penalty is not None:
        config = L2QConfig()
        if args.ranker:
            config.ranker = args.ranker
        if args.dedup_penalty is not None:
            config.dedup_penalty = args.dedup_penalty

    backend = args.backend
    workers = args.workers
    if args.paper_scale:
        if args.scale is not None:
            # Silently preferring either flag could launch an hours-long
            # paper run the user meant to scale down (or vice versa).
            print("--paper-scale conflicts with an explicit --scale; "
                  "pass one or the other", file=out)
            return 2
        scale_name = "paper"
        # The paper-scale sweep is the workload the sharded process backend
        # exists for; fill in whichever of backend/workers the user left
        # unset (an explicit --backend or --workers always wins).
        if backend is None:
            backend = BACKEND_PROCESS
        if workers is None:
            workers = os.cpu_count() or 1
        print(f"note: --paper-scale runs on the {backend} backend "
              f"with {workers} worker(s)", file=out)
    else:
        scale_name = args.scale if args.scale is not None else "smoke"
    if workers is None:
        workers = 1

    scenarios: Optional[Sequence[object]] = args.scenarios
    param_grid = None
    config_by_scenario = None
    if args.param is not None:
        if not args.scenarios:
            print("--param requires --scenarios naming the scenario "
                  "factories to expand", file=out)
            return 2
        try:
            name, values = _parse_param_grid(args.param)
            if name in L2QConfig.__dataclass_fields__:
                # Learner-parameter grid (e.g. dedup_penalty): same corpus
                # condition per scenario, one config override per cell.
                scenarios, param_grid, config_by_scenario = \
                    expand_config_grid(args.scenarios, name, values,
                                       base_config=config)
            else:
                scenarios, param_grid = expand_severity_grid(args.scenarios,
                                                             name, values)
        except (argparse.ArgumentTypeError, ValueError) as error:
            print(str(error), file=out)
            return 2

    try:
        sweep = ScenarioSweep(
            scale=experiments.get_scale(scale_name),
            scenarios=scenarios,
            methods=tuple(args.methods),
            domains=tuple(args.domains),
            num_queries=args.queries,
            config=config,
            workers=workers,
            backend=backend,
            param_grid=param_grid,
            config_by_scenario=config_by_scenario,
            corpus_store=(args.corpus_store if args.corpus_store is not None
                          else "auto"),
        )
    except ValueError as error:  # unknown/duplicate scenario or method
        print(str(error), file=out)
        return 2
    result = sweep.run()
    print(reporting.format_scenarios(result), file=out)
    path = result.write(args.output)
    print(f"\nwrote {path}", file=out)
    return 0


def _command_serve(args: argparse.Namespace, out) -> int:
    import json
    from pathlib import Path

    # Lazy: the serving layer (asyncio runner, bench assembly) is only
    # needed by this subcommand.
    from repro.search.clients import ClientSpec
    from repro.serving.bench import (
        DEFAULT_CONCURRENCY_LEVELS,
        DEFAULT_METHODS,
        format_serving_report,
        run_serving_bench,
    )

    spec = ClientSpec(kind=CLIENT_SIMULATED) if args.client_seed is None \
        else ClientSpec(kind=CLIENT_SIMULATED, seed=args.client_seed)
    artifact, _ = run_serving_bench(
        scale=args.scale,
        domain=args.domain,
        methods=tuple(args.methods) if args.methods else DEFAULT_METHODS,
        num_queries=args.queries,
        concurrency_levels=(tuple(args.concurrency) if args.concurrency
                            else DEFAULT_CONCURRENCY_LEVELS),
        spec=spec,
        time_scale=args.time_scale,
        max_entities=args.entities,
    )
    print(format_serving_report(artifact), file=out)
    path = Path(args.output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {path}", file=out)
    return 0


def _campaign_spec_from_args(args: argparse.Namespace):
    """Resolve the campaign spec a plan/run invocation describes.

    ``--spec FILE`` wins; otherwise the inline flags (name, scale,
    domains, ...) build one, with scenarios defaulting to the full
    registry and seeds to the preset's own corpus seed.
    """
    from repro.campaign import CampaignSpec, spec_from_preset

    if args.spec is not None:
        return CampaignSpec.load(args.spec)
    scenarios = args.scenarios if args.scenarios is not None \
        else scenario_names()
    seeds = args.seeds if args.seeds is not None \
        else [experiments.get_scale(args.scale).corpus_seed]
    return spec_from_preset(args.name, args.scale, args.domains, scenarios,
                            args.methods, seeds, num_queries=args.queries,
                            corpus_store=args.corpus_store)


def _command_campaign(args: argparse.Namespace, out) -> int:
    import json
    from pathlib import Path

    # Lazy: the campaign layer pulls in the sweep + store machinery,
    # which only this subcommand needs.
    from repro.campaign import (
        SPEC_NAME,
        CampaignRunner,
        CampaignStore,
        clean_stale_stores,
        compile_cells,
    )

    if args.campaign_command == "plan":
        try:
            spec = _campaign_spec_from_args(args)
        except (OSError, KeyError, ValueError) as error:
            print(str(error), file=out)
            return 2
        cells = compile_cells(spec)
        print(f"campaign {spec.name!r}: {len(cells)} cells "
              f"(scale {spec.scale.name}, {len(spec.seeds)} seed(s), "
              f"{len(spec.domains)} domain(s), {len(spec.scenarios)} "
              f"scenario(s) + clean)", file=out)
        for cell in cells:
            print(f"  {cell.key}  {cell.label()}", file=out)
        if args.dir is not None:
            try:
                CampaignStore(args.dir).initialise(spec)
            except ValueError as error:
                print(str(error), file=out)
                return 2
            print(f"\nbound {Path(args.dir) / SPEC_NAME}", file=out)
        return 0

    if args.campaign_command == "status":
        try:
            runner = CampaignRunner(args.dir)
        except FileNotFoundError:
            print(f"{args.dir} is not a campaign directory "
                  f"(no {SPEC_NAME})", file=out)
            return 2
        cells, replay = runner.status()
        pending = [cell for cell in cells
                   if cell.key not in replay.completed]
        print(f"campaign {runner.spec.name!r}: "
              f"{len(cells) - len(pending)}/{len(cells)} cells completed, "
              f"{len(pending)} pending", file=out)
        if replay.duplicates:
            print(f"journal: {replay.duplicates} duplicate entrie(s) "
                  f"collapsed", file=out)
        for warning in replay.warnings:
            print(f"warning: {warning}", file=out)
        for cell in pending:
            print(f"  pending  {cell.key}  {cell.label()}", file=out)
        return 0

    if args.campaign_command == "clean":
        reaped = clean_stale_stores(args.dir)
        if reaped:
            print(f"reaped {len(reaped)} stale store segment(s):", file=out)
            for name in reaped:
                print(f"  {name}", file=out)
        else:
            print("no stale store segments registered", file=out)
        return 0

    # run / resume — the same resume-safe code path; resume merely
    # refuses to start a campaign that does not exist yet.
    root = Path(args.dir)
    bound = (root / SPEC_NAME).exists()
    spec = None
    if args.campaign_command == "resume":
        if not bound:
            print(f"{args.dir} is not a campaign directory (no {SPEC_NAME}); "
                  f"start one with 'campaign run'", file=out)
            return 2
    elif args.spec is not None or not bound:
        # An explicit --spec is always honoured (a mismatch with a bound
        # directory fails loudly below); inline flags only matter when
        # the directory is fresh.
        try:
            spec = _campaign_spec_from_args(args)
        except (OSError, KeyError, ValueError) as error:
            print(str(error), file=out)
            return 2
    try:
        runner = CampaignRunner(
            root, spec=spec, backend=args.backend,
            workers=args.workers if args.workers is not None else 1,
            checkpoint_every=args.checkpoint_every)
    except (FileNotFoundError, ValueError) as error:
        print(str(error), file=out)
        return 2
    report = runner.run(max_cells=args.max_cells)
    print(f"campaign {runner.spec.name!r}: {report.total} cells — "
          f"{report.skipped} skipped (journalled), "
          f"{report.executed} executed, {report.remaining} remaining",
          file=out)
    if report.duplicates:
        print(f"journal: {report.duplicates} duplicate journal entries collapsed",
              file=out)
    for warning in report.warnings:
        print(f"warning: {warning}", file=out)
    if report.matrices_path is not None:
        print(f"wrote {report.matrices_path}", file=out)
    if args.bench_output is not None:
        path = Path(args.bench_output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(runner.summary_document(report),
                                   indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"wrote {path}", file=out)
    return 0


def _command_perf(args: argparse.Namespace, out) -> int:
    from pathlib import Path

    if args.perf_command == "manifest":
        results = Path(args.results)
        if not results.is_dir():
            print(f"results directory {results} does not exist", file=out)
            return 2
        path = perf.write_manifest(results, output=args.output)
        print(f"wrote {path}", file=out)
        return 0

    # perf report
    results = Path(args.results)
    if args.manifest is not None:
        manifest = perf.load_manifest(args.manifest)
    elif results.is_dir():
        manifest = perf.build_manifest(results)
    else:
        print(f"results directory {results} does not exist "
              f"(pass --manifest or --results)", file=out)
        return 2
    print(perf.format_manifest(manifest), file=out)

    baseline_path = Path(args.baseline) if args.baseline is not None \
        else results / perf.MANIFEST_NAME
    if baseline_path.exists():
        baseline = perf.load_manifest(baseline_path)
        print(f"\nThroughput vs committed manifest ({baseline_path}):",
              file=out)
        print(perf.format_manifest_delta(manifest, baseline), file=out)
    elif args.baseline is not None:
        print(f"baseline manifest {baseline_path} does not exist", file=out)
        return 2
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    perf_output = getattr(args, "perf_output", None)
    rec = perf.enable() if perf_output else None
    try:
        if args.command == "corpus":
            return _command_corpus(args, out)
        if args.command == "harvest":
            return _command_harvest(args, out)
        if args.command == "experiment":
            return _command_experiment(args, out)
        if args.command == "scenarios":
            return _command_scenarios(args, out)
        if args.command == "serve":
            return _command_serve(args, out)
        if args.command == "campaign":
            return _command_campaign(args, out)
        if args.command == "perf":
            return _command_perf(args, out)
        parser.error(f"unknown command {args.command!r}")
        return 2  # pragma: no cover - parser.error raises
    finally:
        if rec is not None:
            perf.disable()
            path = rec.write(perf_output)
            print(f"wrote perf report {path}", file=out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
