#!/usr/bin/env python
"""Mini domain-size study: how many peer entities does L2Q need?

A small-scale interactive version of the paper's Fig. 11: sweep the fraction
of domain entities available to the domain phase and watch the precision of
L2QP and the recall of L2QR improve.  Even a modest number of peer entities
already buys most of the benefit, which is the paper's practical argument
for domain-aware L2Q.

Run with::

    python examples/domain_size_study.py
"""

from repro.core.config import L2QConfig
from repro.corpus.synthetic import build_corpus
from repro.eval.runner import ExperimentRunner

FRACTIONS = (0.0, 0.25, 1.0)
NUM_QUERIES = 3


def main() -> None:
    corpus = build_corpus("researcher", num_entities=24, pages_per_entity=16, seed=3)
    runner = ExperimentRunner(corpus, config=L2QConfig(), base_seed=19)

    print("Fraction of domain entities -> normalised precision (L2QP) "
          "and recall (L2QR), 3 queries\n")
    print(f"{'domain used':>12s} {'L2QP precision':>16s} {'L2QR recall':>13s}")
    for fraction in FRACTIONS:
        series = runner.evaluate_methods(
            ("L2QP", "L2QR"), num_queries_list=(NUM_QUERIES,),
            domain_fraction=fraction, max_test_entities=2,
            aspects=corpus.aspects[:3])
        precision = series["L2QP"].precision[NUM_QUERIES]
        recall = series["L2QR"].recall[NUM_QUERIES]
        print(f"{int(fraction * 100):>11d}% {precision:>16.3f} {recall:>13.3f}")

    print("\nInterpretation: 0% disables the domain phase entirely; even a "
          "quarter of the peer entities recovers most of the gain, matching "
          "the paper's observation that a small domain sample is already useful.")


if __name__ == "__main__":
    main()
