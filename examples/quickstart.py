#!/usr/bin/env python
"""Quickstart: harvest pages for one entity aspect with L2Q.

This example walks through the whole pipeline on a small synthetic corpus:

1. build an offline web corpus for the *researcher* domain;
2. split entities into domain / target sets and train the aspect classifiers;
3. learn the domain model (template utilities) for the RESEARCH aspect;
4. run the iterative harvesting loop with the full L2QBAL strategy;
5. report the fired queries and the precision / recall / F-score of the
   gathered pages against the ground truth.

Run with::

    python examples/quickstart.py
"""

from repro.aspects.classifier import AspectClassifierSuite
from repro.aspects.relevance import ClassifierRelevance
from repro.core.config import L2QConfig
from repro.core.domain_phase import DomainPhase
from repro.core.harvester import Harvester
from repro.core.queries import format_query
from repro.core.selection import make_selector
from repro.corpus.synthetic import build_corpus
from repro.eval.metrics import compute_metrics
from repro.eval.splits import split_entities
from repro.search.engine import SearchEngine

ASPECT = "RESEARCH"
NUM_QUERIES = 3


def main() -> None:
    # 1. An offline corpus standing in for the crawled Web (Sect. VI-A).
    corpus = build_corpus("researcher", num_entities=24, pages_per_entity=16, seed=3)
    print(f"Corpus: {corpus.num_entities()} researchers, {corpus.num_pages()} pages")

    # 2. Domain / target split and the pre-trained aspect classifier.
    split = split_entities(corpus.entity_ids(), seed=1)
    domain_corpus = corpus.subset(split.domain_entities)
    suite = AspectClassifierSuite.train_on_corpus(domain_corpus)
    relevance = ClassifierRelevance(ASPECT, suite)
    print(f"Aspect classifier accuracy for {ASPECT}: {suite.accuracy_of(ASPECT):.2f}")

    # 3. Domain phase: learn template utilities once for this aspect.
    config = L2QConfig()
    domain_model = DomainPhase(domain_corpus, config).learn(ASPECT, relevance)
    print(f"Domain phase learnt {len(domain_model.template_precision)} templates "
          f"from {domain_model.num_domain_pages} peer pages")

    # 4. Harvest pages for one target entity with the balanced strategy.
    target_id = split.test_entities[0]
    target = corpus.get_entity(target_id)
    engine = SearchEngine(corpus, top_k=config.top_k)
    harvester = Harvester(corpus, engine, config)
    result = harvester.harvest(target_id, ASPECT, make_selector("L2QBAL", config),
                               relevance, num_queries=NUM_QUERIES,
                               domain_model=domain_model)

    print(f"\nTarget entity : {target.name}  (seed query: {format_query(target.seed_query)})")
    print(f"Fired queries :")
    for record in result.iterations:
        print(f"  #{record.index + 1}: {format_query(record.query)!r} "
              f"-> {len(record.result_page_ids)} results, "
              f"{len(record.new_page_ids)} new pages")

    # 5. Evaluate against the ground-truth relevant pages.
    relevant = [p.page_id for p in corpus.relevant_pages(target_id, ASPECT)]
    metrics = compute_metrics(result.gathered_after(NUM_QUERIES), relevant)
    print(f"\nGathered {len(result.gathered_after(NUM_QUERIES))} pages, "
          f"{len(relevant)} relevant pages exist")
    print(f"Precision = {metrics.precision:.2f}  Recall = {metrics.recall:.2f}  "
          f"F-score = {metrics.f_score:.2f}")


if __name__ == "__main__":
    main()
