#!/usr/bin/env python
"""Vertical-portal scenario: harvest every aspect of several researchers.

The paper motivates L2Q with building vertical portals such as
ArnetMiner.org, which need pages covering *many* aspects of each entity
(RESEARCH, AWARD, EDUCATION, ...).  This example harvests all seven
researcher aspects for a handful of target researchers and prints a
per-aspect coverage table, comparing the full L2QBAL strategy with the
manual-query baseline under the same query budget.

Run with::

    python examples/researcher_portal.py
"""

from collections import defaultdict

from repro.core.config import L2QConfig
from repro.corpus.synthetic import build_corpus
from repro.eval.metrics import compute_metrics
from repro.eval.runner import ExperimentRunner

NUM_QUERIES = 3
NUM_TARGETS = 2
METHODS = ("L2QBAL", "MQ")


def main() -> None:
    corpus = build_corpus("researcher", num_entities=24, pages_per_entity=16, seed=3)
    runner = ExperimentRunner(corpus, config=L2QConfig(), base_seed=11)
    split = runner.default_split(0)
    prepared = runner.prepare(split)
    targets = list(split.test_entities)[:NUM_TARGETS]

    print(f"Building a mini research portal for {len(targets)} researchers, "
          f"{NUM_QUERIES} queries per aspect\n")

    totals = defaultdict(lambda: defaultdict(list))
    for entity_id in targets:
        entity = corpus.get_entity(entity_id)
        print(f"=== {entity.name} ===")
        header = f"{'Aspect':14s}" + "".join(f"{m:>22s}" for m in METHODS)
        print(header)
        for aspect in corpus.aspects:
            relevant = [p.page_id for p in corpus.relevant_pages(entity_id, aspect)]
            if not relevant:
                continue
            cells = []
            for method in METHODS:
                run = runner.harvest_once(prepared, method, entity_id, aspect, NUM_QUERIES)
                metrics = compute_metrics(run.gathered_after(NUM_QUERIES), relevant)
                totals[method][aspect].append(metrics.f_score)
                cells.append(f"P={metrics.precision:.2f} R={metrics.recall:.2f}")
            print(f"{aspect:14s}" + "".join(f"{c:>22s}" for c in cells))
        print()

    print("Average F-score per aspect over all portal entities")
    print(f"{'Aspect':14s}" + "".join(f"{m:>10s}" for m in METHODS))
    for aspect in corpus.aspects:
        row = f"{aspect:14s}"
        for method in METHODS:
            scores = totals[method].get(aspect, [])
            mean = sum(scores) / len(scores) if scores else float("nan")
            row += f"{mean:10.2f}"
        print(row)


if __name__ == "__main__":
    main()
