#!/usr/bin/env python
"""Business-analytics scenario: focused harvesting of car-model aspects.

The paper's first motivating application is business analytics — gathering
the pages that discuss one specific aspect of a product (e.g. SAFETY or
PRICE of a car model) so that downstream sentiment analysis can drill into
customer opinions.  This example harvests the SAFETY and PRICE aspects for
several 2009 car models and shows which queries the learner chose, together
with how much of the relevant material each strategy recovered.

Run with::

    python examples/car_business_analytics.py
"""

from repro.core.config import L2QConfig
from repro.core.queries import format_query
from repro.corpus.synthetic import build_corpus
from repro.eval.metrics import compute_metrics
from repro.eval.runner import ExperimentRunner

ASPECTS = ("SAFETY", "PRICE")
METHODS = ("L2QBAL", "AQ", "MQ")
NUM_QUERIES = 3
NUM_MODELS = 2


def main() -> None:
    corpus = build_corpus("car", num_entities=20, pages_per_entity=16, seed=3)
    runner = ExperimentRunner(corpus, config=L2QConfig(), base_seed=13)
    split = runner.default_split(0)
    prepared = runner.prepare(split)
    models = list(split.test_entities)[:NUM_MODELS]

    for entity_id in models:
        entity = corpus.get_entity(entity_id)
        print(f"=== {entity.name} ===")
        for aspect in ASPECTS:
            relevant = [p.page_id for p in corpus.relevant_pages(entity_id, aspect)]
            if not relevant:
                continue
            print(f"  aspect {aspect}  ({len(relevant)} relevant pages in the corpus)")
            for method in METHODS:
                run = runner.harvest_once(prepared, method, entity_id, aspect, NUM_QUERIES)
                metrics = compute_metrics(run.gathered_after(NUM_QUERIES), relevant)
                queries = ", ".join(format_query(q) for q in run.queries())
                print(f"    {method:7s} F={metrics.f_score:.2f} "
                      f"(P={metrics.precision:.2f}, R={metrics.recall:.2f})  "
                      f"queries: {queries}")
        print()

    print("Pages harvested this way feed directly into per-aspect sentiment "
          "analysis or price-tracking dashboards — the downstream applications "
          "the paper motivates.")


if __name__ == "__main__":
    main()
