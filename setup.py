"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work on older
setuptools/pip stacks without the ``wheel`` package (offline environments).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Learning to Query: Focused Web Page Harvesting "
        "for Entity Aspects' (ICDE 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7"],
    extras_require={
        # Running the test suite and the figure/perf benchmarks.
        "dev": ["pytest>=7.0"],
    },
    entry_points={"console_scripts": ["repro-l2q = repro.cli:main"]},
)
