"""Regenerates Fig. 12: precision and recall vs number of queries.

Paper claims to reproduce (in shape): L2QP attains the best precision and
L2QR the best recall among {L2QP, L2QR, LM, AQ, HR, MQ}, across query
budgets from 2 to 5.  We assert the weaker aggregate versions (averaged over
both domains and all budgets): L2QP has the best precision of the
*algorithmic* methods and L2QR the best recall of the algorithmic methods.
"""

from benchmarks.helpers import save_result

from repro.eval.experiments import run_fig12
from repro.eval.reporting import format_fig12

ALGORITHMIC = ("LM", "AQ", "HR")


def test_fig12_precision_and_recall_vs_baselines(benchmark, scale, results_dir):
    result = benchmark.pedantic(run_fig12, args=(scale,), rounds=1, iterations=1)
    save_result(results_dir, "fig12_precision_recall", format_fig12(result))

    for domain, series in result.series_by_domain.items():
        assert set(series) == {"L2QP", "L2QR", "LM", "AQ", "HR", "MQ"}
        for method_series in series.values():
            assert method_series.budgets() == sorted(scale.num_queries_list)

    if scale.name == "smoke":
        # Smoke scale only checks that the experiment runs end to end.
        return

    l2qp_precision = result.mean_over_domains("L2QP", "precision")
    l2qr_recall = result.mean_over_domains("L2QR", "recall")

    best_algorithmic_precision = max(
        result.mean_over_domains(m, "precision") for m in ALGORITHMIC)
    best_algorithmic_recall = max(
        result.mean_over_domains(m, "recall") for m in ALGORITHMIC)

    assert l2qp_precision >= best_algorithmic_precision - 0.05
    assert l2qr_recall >= best_algorithmic_recall - 0.05
