"""Regenerates Fig. 10: validation of domain and context awareness.

Paper claims to reproduce (in shape):
* template-based domain awareness helps — P+t > P and R+t > R;
* raw query transfer suffers from entity variation — P+t >= P+q is expected
  in the paper (we assert the weaker claim that templates beat no-domain);
* context awareness helps — L2QP >= P+t and L2QR >= R+t (approximately);
* everything beats RND on its own objective.
"""

from benchmarks.helpers import save_result

from repro.eval.experiments import run_fig10
from repro.eval.reporting import format_fig10


def _mean(values_by_domain, method):
    values = [values_by_domain[domain][method] for domain in values_by_domain]
    return sum(values) / len(values)


def test_fig10_domain_and_context_awareness(benchmark, scale, results_dir):
    result = benchmark.pedantic(run_fig10, args=(scale,), rounds=1, iterations=1)
    save_result(results_dir, "fig10_domain_context", format_fig10(result))

    precision = result.precision_by_domain
    recall = result.recall_by_domain

    for domain in precision:
        for value in precision[domain].values():
            assert 0.0 <= value <= 1.0
        for value in recall[domain].values():
            assert 0.0 <= value <= 1.0

    if scale.name == "smoke":
        # The smoke scale only sanity-checks that the experiment runs; the
        # paper-shape claims below need the default scale or larger.
        return

    # Domain awareness through templates beats no domain awareness (averaged
    # over domains; the paper's Fig. 10 shows this per domain).
    assert _mean(precision, "P+t") >= _mean(precision, "P") - 0.02
    assert _mean(recall, "R+t") >= _mean(recall, "R") - 0.02

    # The full (context-aware) approaches beat the random reference point.
    assert _mean(precision, "L2QP") > _mean(precision, "RND")
    assert _mean(recall, "L2QR") > _mean(recall, "RND")

    # Context awareness does not hurt the template-based strategies.
    assert _mean(precision, "L2QP") >= _mean(precision, "P+t") - 0.05
    assert _mean(recall, "L2QR") >= _mean(recall, "R+t") - 0.05
