"""Regenerates Fig. 13 and the paper's headline claim.

Paper claims to reproduce (in shape): the balanced strategy L2QBAL achieves
the best F-score, beating the best algorithmic baseline (paper: by ~16%) and
the manual baseline (paper: by ~10%) on average over both domains.
"""

from benchmarks.helpers import save_result

from repro.eval.experiments import headline_summary, run_fig13
from repro.eval.reporting import format_fig13, format_headline


def test_fig13_fscore_and_headline(benchmark, scale, results_dir):
    result = benchmark.pedantic(run_fig13, args=(scale,), rounds=1, iterations=1)
    summary = headline_summary(result)
    text = format_fig13(result) + "\n\n" + format_headline(summary)
    save_result(results_dir, "fig13_fscore_headline", text)

    for domain, series in result.series_by_domain.items():
        assert set(series) == {"L2QBAL", "LM", "AQ", "HR", "MQ"}

    if scale.name == "smoke":
        # Smoke scale only checks that the experiment runs end to end.
        return

    # Headline shape: L2QBAL beats the best algorithmic baseline on average.
    assert summary.l2qbal_f_score > summary.best_algorithmic_f_score
    assert summary.improvement_over_algorithmic > 0.0
    # Against the manual baseline we only require parity or better: MQ's
    # generic queries are comparatively stronger on a synthetic corpus than
    # on the open Web (see EXPERIMENTS.md).
    assert summary.l2qbal_f_score >= summary.manual_f_score - 0.05
