#!/usr/bin/env python
"""Hard regression gate for the scenario robustness matrix.

Compares a freshly generated ``BENCH_scenarios.json`` against the committed
previous run and prints a summary table of mean F-score deltas per
scenario.  A scenario whose mean normalised delta worsens by more than the
**documented tolerance of 0.05 mean ΔF** (``--threshold``) fails the run:
the script exits 1, turning the CI job red.  The tolerance absorbs the
noise floor observed across PR 2–4 smoke matrices (identical code produces
byte-identical matrices; small legitimate selector changes move scenario
means by well under 0.05, while real robustness regressions move them by
more).

``--warn-only`` restores the historical fail-soft behaviour (always exit
0), for local experimentation against an intentionally stale baseline.

Usage::

    python benchmarks/check_scenario_deltas.py \
        --fresh /tmp/BENCH_scenarios.json \
        [--baseline benchmarks/results/BENCH_scenarios.json] \
        [--threshold 0.05] [--warn-only]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: A scenario whose mean normalised ΔF worsens by more than this is flagged.
DEFAULT_THRESHOLD = 0.05

#: Default committed baseline (updated whenever the CI artifact is promoted).
DEFAULT_BASELINE = Path(__file__).parent / "results" / "BENCH_scenarios.json"


def _load(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def _mean_deltas(report: dict) -> dict:
    """Scenario → mean normalised F delta (schema v1 and v2 compatible)."""
    return {name: entry["mean_f_delta"]
            for name, entry in report.get("summary", {}).items()}


def _format_row(cells, widths) -> str:
    return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))


def compare(fresh: dict, baseline: dict, threshold: float, out=sys.stdout) -> int:
    """Print the comparison table; return the number of warnings."""
    fresh_deltas = _mean_deltas(fresh)
    baseline_deltas = _mean_deltas(baseline)
    shared = sorted(set(fresh_deltas) & set(baseline_deltas))
    only_fresh = sorted(set(fresh_deltas) - set(baseline_deltas))
    only_baseline = sorted(set(baseline_deltas) - set(fresh_deltas))

    if fresh.get("schema") != baseline.get("schema"):
        print(f"note: schema changed "
              f"{baseline.get('schema')!r} -> {fresh.get('schema')!r}; "
              f"comparing the shared mean_f_delta summary", file=out)
    if fresh.get("scale") != baseline.get("scale"):
        print(f"note: scales differ (baseline {baseline.get('scale')!r}, "
              f"fresh {fresh.get('scale')!r}); deltas are not directly "
              f"comparable", file=out)

    warnings = 0
    header = ["Scenario", "Baseline ΔF", "Fresh ΔF", "Change", "Status"]
    rows = []
    for name in shared:
        before, now = baseline_deltas[name], fresh_deltas[name]
        change = now - before
        # More negative mean ΔF = the scenario hurts more than it used to.
        status = "WARN" if change < -threshold else "ok"
        if status == "WARN":
            warnings += 1
        rows.append([name, f"{before:+.3f}", f"{now:+.3f}",
                     f"{change:+.3f}", status])
    widths = [max(len(str(row[i])) for row in [header] + rows)
              for i in range(len(header))]
    print(_format_row(header, widths), file=out)
    print(_format_row(["-" * w for w in widths], widths), file=out)
    for row in rows:
        print(_format_row(row, widths), file=out)

    for name in only_fresh:
        print(f"note: scenario {name!r} is new (no baseline)", file=out)
    for name in only_baseline:
        print(f"note: scenario {name!r} disappeared from the fresh run", file=out)

    if warnings:
        print(f"\n{warnings} scenario(s) worsened by more than "
              f"{threshold:.3f} mean ΔF", file=out)
    else:
        print(f"\nno scenario worsened by more than {threshold:.3f} mean ΔF",
              file=out)
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly generated BENCH_scenarios.json")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed previous run to compare against")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="mean ΔF worsening that fails the gate "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0 "
                             "(the pre-gate behaviour)")
    args = parser.parse_args(argv)

    if not args.fresh.exists():
        print(f"fresh matrix {args.fresh} missing; nothing to compare")
        return 0
    if not args.baseline.exists():
        print(f"no committed baseline at {args.baseline}; nothing to compare")
        return 0

    warnings = compare(_load(args.fresh), _load(args.baseline), args.threshold)
    if warnings and not args.warn_only:
        print(f"regression gate FAILED ({warnings} scenario(s) beyond the "
              f"{args.threshold:.3f} tolerance)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
