"""Shared benchmark helpers, importable explicitly as ``benchmarks.helpers``."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(results_dir: Path, name: str, text: str) -> None:
    """Persist one regenerated table and echo it to stdout."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====\n{text}\n")
