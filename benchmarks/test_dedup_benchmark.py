"""Dedup-aware selection benchmark: the headline claim of ISSUE 4.

Runs the near-duplicates and hostile-mix scenarios with the dedup penalty
off (0.0) and on (0.5) in one config-grid sweep and asserts the headline
relationship: with the penalty on, the L2Q selectors waste fewer fetches on
duplicates while their mean F-score does not degrade.  The same grid is
committed as ``benchmarks/results/BENCH_dedup_grid.json``; the CI
smoke-benchmark job runs this test at smoke scale and fails if the
regenerated grid differs from the committed bytes.

Run with ``python -m pytest benchmarks/test_dedup_benchmark.py -q``.
"""

from __future__ import annotations

import json

from repro.eval.scenario_sweep import ScenarioSweep, expand_config_grid

SCENARIOS = ("near-duplicates", "hostile-mix")
PENALTY = 0.5


def _cell_means(report, scenario_label):
    """Mean (F-score, duplicate waste) over domains and methods of a cell."""
    f_scores, wastes = [], []
    for block in report["domains"].values():
        cell = block["scenarios"][scenario_label]
        for method in report["methods"]:
            f_scores.append(cell["metrics"][method]["f_score"])
            wastes.append(cell["duplicate_waste"][method])
    return sum(f_scores) / len(f_scores), sum(wastes) / len(wastes)


def test_dedup_penalty_reduces_waste_without_hurting_f(scale, results_dir):
    specs, grid, configs = expand_config_grid(
        list(SCENARIOS), "dedup_penalty", [0.0, PENALTY])
    result = ScenarioSweep(scale=scale, scenarios=specs, param_grid=grid,
                           config_by_scenario=configs).run()

    path = results_dir / "BENCH_dedup_grid.json"
    result.write(path)
    print(f"\n===== BENCH_dedup_grid =====\n{result.to_json()}\n")

    report = json.loads(path.read_text(encoding="utf-8"))
    for scenario in SCENARIOS:
        f_off, waste_off = _cell_means(report, f"{scenario}@dedup_penalty=0.0")
        f_on, waste_on = _cell_means(report,
                                     f"{scenario}@dedup_penalty={PENALTY}")
        print(f"{scenario}: F {f_off:.4f} -> {f_on:.4f}, "
              f"waste {waste_off:.4f} -> {waste_on:.4f}")
        assert waste_on < waste_off, \
            f"{scenario}: dedup penalty did not reduce duplicate waste"
        assert f_on >= f_off, \
            f"{scenario}: dedup penalty degraded mean F-score"
