"""Micro-benchmark: harvesting throughput per execution backend.

Runs the same batch of harvesting jobs through every built-in execution
backend at ``smoke`` scale and writes a machine-readable
``BENCH_harvest.json`` next to the other benchmark results, so successive
PRs can track the execution-layer throughput trajectory:

* ``pages_per_second`` — result pages folded into working sets per
  wall-clock second (seed pages included);
* ``jobs_per_second`` — complete harvesting runs per second;
* ``speedup_vs_serial`` — wall-clock ratio against the serial engine on
  this machine (expect ~1.0 on single-core CI runners: the numbers exist
  to catch regressions, not to advertise).

Determinism is asserted alongside the timing: every backend must produce
the same queries and page ids as serial.

A ``preparation`` section records what the shared corpus store buys the
process backend: worker-side corpus preparation seconds with the store off
(every worker regenerates) versus on (every worker attaches zero-copy),
plus the orchestrator's one-time publish cost.

Run with ``python -m pytest benchmarks/test_perf_harvest.py -q``.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro import perf
from repro.eval.experiments import SMOKE_SCALE
from repro.eval.runner import ExperimentRunner

from tests.helpers import harvest_signature as _signature

METHODS = ("L2QBAL", "L2QP", "RND", "MQ")
NUM_QUERIES = 3
#: Worker count for the parallel backends; override with
#: ``REPRO_BENCH_WORKERS`` on multi-core runners so the recorded speedups
#: reflect the hardware (the default 2 keeps laptop runs cheap).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))
BACKENDS = ("serial", "thread", "process")


def _pages_gathered(results):
    return sum(len(run.seed_page_ids)
               + sum(len(record.result_page_ids) for record in run.iterations)
               for run in results)


def test_harvest_backend_benchmark(results_dir):
    corpus = SMOKE_SCALE.corpus_for("researcher")

    def fresh_batch():
        # Every backend is timed against cold state: a fresh engine (empty
        # index, empty result cache) and fresh single-use jobs.  Reusing
        # one engine would time later backends against caches the earlier
        # ones warmed, making the comparison meaningless.  Seeds derive
        # from (split, method, entity, aspect), so every batch is
        # identical work.
        runner = ExperimentRunner(corpus)
        split = runner.default_split(0)
        prepared = runner.prepare(split)
        aspects = SMOKE_SCALE.aspects_for(corpus)
        entities = list(split.test_entities)[: SMOKE_SCALE.max_test_entities or 2]
        jobs = [runner.build_job(prepared, method, entity_id, aspect, NUM_QUERIES)
                for method in METHODS
                for aspect in aspects
                for entity_id in entities]
        return runner.harvester_for(prepared), jobs

    report = {
        "scale": SMOKE_SCALE.name,
        "num_queries": NUM_QUERIES,
        "workers": WORKERS,
        "python": platform.python_version(),
        "jobs": len(fresh_batch()[1]),
        "backends": {},
    }
    signatures = {}
    serial_seconds = None
    for backend in BACKENDS:
        harvester, batch = fresh_batch()
        started = time.perf_counter()
        results = harvester.harvest_many(batch, workers=WORKERS, backend=backend)
        elapsed = time.perf_counter() - started
        if backend == "serial":
            serial_seconds = elapsed
        pages = _pages_gathered(results)
        signatures[backend] = [_signature(r) for r in results]
        report["backends"][backend] = {
            "wall_seconds": elapsed,
            "pages_gathered": pages,
            "pages_per_second": pages / elapsed if elapsed > 0 else None,
            "jobs_per_second": len(results) / elapsed if elapsed > 0 else None,
            "speedup_vs_serial": (serial_seconds / elapsed
                                  if elapsed > 0 and serial_seconds else None),
        }

    process_preparation = _store_preparation(corpus)
    report["preparation"] = {
        "process": process_preparation,
        "classifier": process_preparation.pop("classifier"),
    }

    path = results_dir / "BENCH_harvest.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\n===== BENCH_harvest =====\n{json.dumps(report, indent=2)}\n")

    # Sanity: every backend ran the full batch, gathered pages, and — the
    # acceptance bar of the refactor — reproduced serial bit-for-bit.
    for backend in BACKENDS:
        entry = report["backends"][backend]
        assert entry["pages_gathered"] > 0
        assert entry["pages_per_second"] > 0
        assert signatures[backend] == signatures["serial"]
    # The store must actually have attached (zero index rebuilds) and the
    # rebuild baseline must actually have rebuilt.
    prep = report["preparation"]["process"]
    assert prep["attach"]["attached"] and prep["attach"]["index_builds"] == 0
    assert prep["rebuild"]["corpus_rebuilds"] > 0
    # Classifier suites ship through the store: with it on, no worker batch
    # retrained anything, and attaching a trained suite beats training one
    # by a wide margin even at smoke scale.
    classifier = report["preparation"]["classifier"]
    assert prep["rebuild"]["worker_classifier_trainings"] > 0
    assert prep["attach"]["worker_classifier_trainings"] == 0
    assert prep["attach"]["classifier_attached"]
    assert classifier["trainings"] > 0 and classifier["attaches"] > 0
    assert classifier["attach_speedup"] >= 5


def _store_preparation(corpus):
    """Worker-side preparation cost with the corpus store off vs on.

    The per-phase worker timings ship home through the batch outcomes and
    fold into the orchestrator's recorder, so the totals below cover every
    worker in the pool.
    """
    def distributed_run(corpus_store):
        rec = perf.enable()
        try:
            runner = ExperimentRunner(
                corpus, base_seed=5, workers=WORKERS, backend="process",
                corpus_spec=SMOKE_SCALE.corpus_spec_for("researcher"),
                corpus_store=corpus_store)
            try:
                runner.evaluate_methods(("RND",), num_queries_list=(NUM_QUERIES,),
                                        num_splits=2, max_test_entities=2,
                                        aspects=("RESEARCH",))
            finally:
                runner.release_store()
        finally:
            perf.disable()
        outcomes = runner.last_batch_outcomes
        return {
            "corpus_attach_seconds": rec.total("corpus-attach"),
            "corpus_attaches": rec.count("corpus-attach"),
            "corpus_rebuild_seconds": rec.total("corpus-rebuild"),
            "corpus_rebuilds": rec.count("corpus-rebuild"),
            "store_publish_seconds": rec.total("store-publish"),
            "classifier_train_seconds": rec.total("classifier-train"),
            "classifier_trainings": rec.count("classifier-train"),
            "classifier_attach_seconds": rec.total("classifier-attach"),
            "classifier_attaches": rec.count("classifier-attach"),
            "attached": all(o.attached for o in outcomes),
            "index_builds": sum(o.index_builds for o in outcomes),
            "worker_classifier_trainings": sum(o.classifier_trainings
                                               for o in outcomes),
            "classifier_attached": all(o.classifier_attached
                                       for o in outcomes),
        }

    rebuild = distributed_run("off")
    attach = distributed_run("auto")
    attach_seconds = attach["corpus_attach_seconds"]
    # Train vs attach: with the store off every worker trains its split's
    # suite; with the store on the orchestrator trains once at publish
    # ("classifier-train" samples of the attach run) and every worker
    # attaches zero-copy.  The per-attach cost is what the store buys.
    trainings = rebuild["classifier_trainings"]
    attaches = attach["classifier_attaches"]
    train_per = (rebuild["classifier_train_seconds"] / trainings
                 if trainings else None)
    attach_per = (attach["classifier_attach_seconds"] / attaches
                  if attaches else None)
    classifier = {
        "train_seconds": rebuild["classifier_train_seconds"],
        "trainings": trainings,
        "attach_seconds": attach["classifier_attach_seconds"],
        "attaches": attaches,
        "publish_train_seconds": attach["classifier_train_seconds"],
        "publish_trainings": attach["classifier_trainings"],
        "train_seconds_per_suite": train_per,
        "attach_seconds_per_suite": attach_per,
        "attach_speedup": (train_per / attach_per
                           if train_per and attach_per else None),
    }
    return {
        "rebuild": rebuild,
        "attach": attach,
        "preparation_speedup": (
            rebuild["corpus_rebuild_seconds"] / attach_seconds
            if attach_seconds else None),
        "classifier": classifier,
    }
