"""Micro-benchmark: the async serving runner under a simulated service.

Serves one smoke-scale job batch through the asyncio
:class:`~repro.serving.runner.ServingRunner` — simulated search service
with latency tails, a QPS cap and injected timeouts/failures — at
concurrency 1 and 8, and writes ``BENCH_serving.json`` next to the other
benchmark results.  The perf manifest folds the per-level sessions/sec
onto the gated throughput axis.

Two properties are asserted alongside the timing, straight from the
serving acceptance criteria:

* **Determinism** — two runs at concurrency 8 under the same client seed
  produce identical session results (harvest signatures) and identical
  ``metrics`` blocks; wall-clock fields are excluded from the comparison.
* **Concurrency pays** — sessions/sec at concurrency 8 is at least 3x
  the concurrency-1 rate under the default latency distribution (sessions
  sleep through their simulated service latency while others select).

Run with ``python -m pytest benchmarks/test_perf_serving.py -q``.
"""

from __future__ import annotations

import json

from repro.search.clients import CLIENT_SIMULATED, ClientSpec
from repro.serving.bench import run_serving_bench

from tests.helpers import harvest_signature as _signature

CONCURRENCY_LEVELS = (1, 8)
#: The stock simulated service (lognormal 25ms/100ms, 5% timeouts, 5%
#: failures, 3 retries) — the distribution the committed numbers quote.
SPEC = ClientSpec(kind=CLIENT_SIMULATED)
SPEEDUP_FLOOR = 3.0


def test_serving_benchmark(results_dir):
    artifact, reports = run_serving_bench(
        scale="smoke", concurrency_levels=CONCURRENCY_LEVELS, spec=SPEC)

    path = results_dir / "BENCH_serving.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\n===== BENCH_serving =====\n"
          f"{json.dumps(artifact, indent=2, sort_keys=True)}\n")

    # Every level served the whole batch and measured real throughput.
    for concurrency in CONCURRENCY_LEVELS:
        report = reports[concurrency]
        metrics = report.metrics()
        assert metrics["sessions"] == artifact["sessions"] > 0
        assert metrics["queries_fired"] > 0
        assert report.wall_clock()["sessions_per_second"] > 0
    # The simulated failure rates actually bit (and deterministically so:
    # draws are request-keyed, not scheduling-dependent).
    level_8 = artifact["concurrency"]["8"]["metrics"]
    assert level_8["retries"] > 0
    # Deterministic blocks are identical across concurrency levels.
    assert artifact["concurrency"]["1"]["metrics"] == level_8
    assert artifact["concurrency"]["1"]["client_stats"] == \
        artifact["concurrency"]["8"]["client_stats"]
    # Retries are charged to the fetch budget: every fired query is either
    # served by the engine or a failed, budget-charged attempt.
    stats = artifact["concurrency"]["8"]["client_stats"]
    assert level_8["queries_fired"] == \
        stats["engine_queries"] + stats["retry_queries"]
    assert stats["retry_queries"] > 0

    # Acceptance: concurrency 8 sustains >= 3x the concurrency-1 rate.
    assert artifact["speedup_vs_baseline"]["8"] >= SPEEDUP_FLOOR

    # Acceptance: a second concurrency-8 run under the same seed is
    # bit-identical — session results and metrics blocks both.
    rerun_artifact, rerun_reports = run_serving_bench(
        scale="smoke", concurrency_levels=(8,), spec=SPEC)
    assert rerun_artifact["concurrency"]["8"]["metrics"] == level_8
    assert rerun_artifact["concurrency"]["8"]["client_stats"] == stats
    assert [_signature(r) for r in rerun_reports[8].results] == \
        [_signature(r) for r in reports[8].results]
