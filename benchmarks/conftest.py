"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table/figure of the paper at a configurable
scale.  The scale is chosen with the ``REPRO_BENCH_SCALE`` environment
variable (``smoke``, ``default`` or ``paper``; default ``default``).  Every
benchmark writes its formatted result table to ``benchmarks/results/`` so
the regenerated numbers survive pytest's output capturing.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.experiments import get_scale

from benchmarks.helpers import RESULTS_DIR


@pytest.fixture(scope="session")
def scale():
    """The experiment scale selected via ``REPRO_BENCH_SCALE``."""
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    return get_scale(name)


@pytest.fixture(scope="session")
def results_dir():
    """Directory where regenerated tables are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
