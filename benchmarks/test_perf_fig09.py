"""Micro-benchmark: aspect-classifier training and inference throughput.

Times the vectorized classifier stack at ``smoke`` scale — suite training
(paragraphs/second through the ``fit_matrix`` kernels) and full-corpus page
scoring through the batched ``page_assessment`` kernel versus the scalar
per-paragraph oracle — and writes a machine-readable ``BENCH_fig09.json``
next to the other benchmark results, so successive PRs can track the
classifier throughput trajectory.  Bit-identity of the batched scores with
the scalar reference is asserted alongside the timing.

Run with ``python -m pytest benchmarks/test_perf_fig09.py -q``.
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np
import scipy

from repro.aspects.classifier import AspectClassifierSuite
from repro.eval.experiments import SMOKE_SCALE

DOMAINS = ("researcher", "car")


def test_fig09_classifier_benchmark(results_dir):
    report = {
        "scale": SMOKE_SCALE.name,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "domains": {},
    }
    for domain in DOMAINS:
        corpus = SMOKE_SCALE.corpus_for(domain)
        num_paragraphs = sum(1 for _ in corpus.iter_paragraphs())

        started = time.perf_counter()
        suite = AspectClassifierSuite.train_on_corpus(corpus)
        train_seconds = time.perf_counter() - started

        pages = list(corpus.iter_pages())
        aspects = corpus.aspects
        assessments = sum(len(page.paragraphs) for page in pages) * len(aspects)

        started = time.perf_counter()
        batched = [suite.page_assessment(page, aspect)
                   for page in pages for aspect in aspects]
        batched_seconds = time.perf_counter() - started

        started = time.perf_counter()
        scalar = [(suite.classify_page(page, aspect),
                   suite.page_probability(page, aspect))
                  for page in pages for aspect in aspects]
        scalar_seconds = time.perf_counter() - started

        # The batched kernel must reproduce the scalar oracle bit for bit.
        assert batched == scalar

        accuracies = [row.accuracy for row in suite.accuracy_report()]
        report["domains"][domain] = {
            "paragraphs": num_paragraphs,
            "train_seconds": train_seconds,
            "train_paragraphs_per_second": (
                num_paragraphs / train_seconds if train_seconds > 0 else None),
            "scored_paragraph_assessments": assessments,
            "batched_score_seconds": batched_seconds,
            "batched_paragraphs_per_second": (
                assessments / batched_seconds if batched_seconds > 0 else None),
            "scalar_score_seconds": scalar_seconds,
            "scalar_paragraphs_per_second": (
                assessments / scalar_seconds if scalar_seconds > 0 else None),
            "speedup_vs_scalar": (
                scalar_seconds / batched_seconds if batched_seconds > 0
                else None),
            "mean_accuracy": sum(accuracies) / len(accuracies),
        }

    path = results_dir / "BENCH_fig09.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\n===== BENCH_fig09 =====\n{json.dumps(report, indent=2)}\n")

    for domain in DOMAINS:
        stats = report["domains"][domain]
        assert stats["paragraphs"] > 0
        assert stats["train_paragraphs_per_second"] > 0
        assert stats["batched_paragraphs_per_second"] > 0
        assert stats["mean_accuracy"] >= 0.85
