"""Micro-benchmark: selection time vs (simulated) fetch time.

Times the full-approach selectors at ``smoke`` scale and writes a
machine-readable ``BENCH_selection.json`` next to the other benchmark
results, so successive PRs can track the selection-throughput trajectory:

* ``selection_queries_per_second`` — how many query selections per second
  each method sustains (the paper's Fig. 14 argument is that this dwarfs
  fetch cost);
* ``cache_hit_rate`` — fraction of engine ranking requests served from the
  LRU result cache across the measured runs;
* ``selection_to_fetch_ratio`` — mean selection seconds / mean simulated
  fetch seconds per query (must stay ≪ 1).

Run with ``python -m pytest benchmarks/test_perf_selection.py -q``.
"""

from __future__ import annotations

import json
import platform

import numpy
import scipy

from repro.eval.experiments import SMOKE_SCALE
from repro.eval.runner import ExperimentRunner

METHODS = ("L2QP", "L2QR", "L2QBAL")
NUM_QUERIES = 3

#: How many times each (method, aspect, entity) harvest is measured.
#: Harvests are deterministic, so repeats sample the *same* per-selection
#: workload as the committed seed baseline (2 entities, 3 queries per
#: harvest) — doubling ``queries_measured`` purely averages away CI timing
#: noise, without skewing the workload mix the baseline was measured on.
REPEATS = 2

#: Committed selection throughput (queries/second) of the scalar-scoring
#: seed, measured on the CI reference machine before the sparse-kernel
#: vectorization.  The regression floor below asserts the vectorized path
#: keeps a comfortable multiple of these; 2x leaves headroom for machine
#: and CI noise while still failing loudly if the kernels are ever
#: accidentally bypassed (the vectorized path measures >= 5x).
SEED_QPS_BASELINE = {
    "L2QP": 13.45082895467196,
    "L2QR": 14.134966034079943,
    "L2QBAL": 14.108354284182212,
}
MIN_SPEEDUP_VS_SEED = 2.0


def test_selection_benchmark(results_dir):
    corpus = SMOKE_SCALE.corpus_for("researcher")
    runner = ExperimentRunner(corpus)
    split = runner.default_split(0)
    prepared = runner.prepare(split)
    aspects = SMOKE_SCALE.aspects_for(corpus)
    entities = list(split.test_entities)[: SMOKE_SCALE.max_test_entities or 2]

    jobs = [runner.build_job(prepared, method, entity_id, aspect, NUM_QUERIES)
            for _repeat in range(REPEATS)
            for method in METHODS
            for aspect in aspects
            for entity_id in entities]
    job_methods = [method
                   for _repeat in range(REPEATS)
                   for method in METHODS
                   for _aspect in aspects
                   for _entity in entities]
    results = runner.harvester_for(prepared).harvest_many(jobs)

    per_method = {m: {"selection_seconds": [], "fetch_seconds": []} for m in METHODS}
    for method, run in zip(job_methods, results):
        for record in run.iterations:
            per_method[method]["selection_seconds"].append(record.selection_seconds)
            per_method[method]["fetch_seconds"].append(record.fetch_seconds)

    stats = prepared.engine.fetch_statistics
    report = {
        "scale": SMOKE_SCALE.name,
        "num_queries": NUM_QUERIES,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "index_builds": prepared.engine.index_builds,
        "cache_hit_rate": stats.cache_hit_rate,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "methods": {},
    }
    for method, samples in per_method.items():
        selection = samples["selection_seconds"]
        fetch = samples["fetch_seconds"]
        mean_selection = sum(selection) / len(selection) if selection else 0.0
        mean_fetch = sum(fetch) / len(fetch) if fetch else 0.0
        report["methods"][method] = {
            "queries_measured": len(selection),
            "mean_selection_seconds": mean_selection,
            "selection_queries_per_second": (1.0 / mean_selection
                                             if mean_selection > 0 else None),
            "mean_fetch_seconds": mean_fetch,
            "selection_to_fetch_ratio": (mean_selection / mean_fetch
                                         if mean_fetch > 0 else None),
        }

    path = results_dir / "BENCH_selection.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\n===== BENCH_selection =====\n{json.dumps(report, indent=2)}\n")

    # Sanity: the shared index was built once, selection was measured, and
    # (the paper's efficiency claim) selection stays well below fetch cost.
    assert report["index_builds"] == 1
    for method in METHODS:
        entry = report["methods"][method]
        assert entry["queries_measured"] > 0
        assert entry["selection_to_fetch_ratio"] is None or \
            entry["selection_to_fetch_ratio"] < 1.0
        # Regression floor: the vectorized hot path must stay a multiple of
        # the scalar seed's throughput.
        qps = entry["selection_queries_per_second"]
        floor = MIN_SPEEDUP_VS_SEED * SEED_QPS_BASELINE[method]
        assert qps is not None and qps >= floor, (
            f"{method}: {qps:.2f} qps is below the regression floor "
            f"{floor:.2f} ({MIN_SPEEDUP_VS_SEED}x the scalar seed)")
