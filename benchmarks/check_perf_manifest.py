#!/usr/bin/env python
"""Hard regression gate for the benchmark-throughput trajectory.

Compares a freshly built ``BENCH_manifest.json`` against the committed one
and prints a per-backend throughput table.  A backend whose ``pages/sec``
regresses by more than the **documented tolerance of 50%** (``--tolerance``,
a relative fraction) fails the run: the script exits 1, turning the CI job
red.  The tolerance is deliberately generous because the committed manifest
was produced on a different machine than the CI runner — it exists to catch
order-of-magnitude execution-layer regressions (an accidentally serialised
backend, a quadratic hot path), not single-digit jitter.  Mirroring
``check_scenario_deltas.py``, ``--warn-only`` restores fail-soft behaviour
(always exit 0) for local experimentation.

Two failure modes are gated unconditionally, tolerance aside: fresh
throughput *collapsing* to zero/absent where the baseline had a real
number, and a baselined backend disappearing from the fresh manifest (if
the removal is deliberate, refresh the committed baseline in the same PR).
Entries without a throughput axis (robustness matrices, selection-latency
rows) are ignored; their regressions are gated elsewhere (scenario deltas,
committed-artifact diffs).

Usage::

    python benchmarks/check_perf_manifest.py \
        --fresh /tmp/BENCH_manifest.json \
        [--baseline benchmarks/results/BENCH_manifest.json] \
        [--tolerance 0.5] [--warn-only]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf.manifest import load_manifest  # noqa: E402
from repro.perf.report import throughput_deltas  # noqa: E402

#: A backend whose pages/sec drops by more than this fraction of the
#: committed value fails the gate (0.5 = tolerate up to 50% slower).
DEFAULT_TOLERANCE = 0.5

#: Default committed baseline (refreshed whenever artifacts are promoted).
DEFAULT_BASELINE = Path(__file__).parent / "results" / "BENCH_manifest.json"


def _format_row(cells, widths) -> str:
    return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))


def compare(fresh: dict, baseline: dict, tolerance: float,
            out=sys.stdout) -> int:
    """Print the throughput comparison table; return the regression count.

    Three conditions count as regressions: pages/sec dropping beyond the
    tolerance, fresh throughput *collapsing* to zero/absent where the
    baseline had a real number (the catastrophic case the gate exists
    for), and a baselined backend disappearing from the fresh manifest
    entirely (remove it from the committed baseline in the same PR if the
    removal is deliberate).
    """
    deltas, new_keys, missing_keys = throughput_deltas(fresh, baseline)

    regressions = 0
    header = ["Benchmark/backend", "Committed pages/s", "Fresh pages/s",
              "Change", "Status"]
    rows = []
    for delta in deltas:
        if delta.collapsed:
            status = "COLLAPSED"
        elif delta.change is None:
            # No usable baseline number: nothing to gate against.
            status = "skipped"
        elif delta.change < -tolerance:
            status = "REGRESSED"
        else:
            status = "ok"
        if status in ("REGRESSED", "COLLAPSED"):
            regressions += 1
        rows.append([delta.key,
                     f"{delta.committed:.1f}" if delta.committed else str(delta.committed),
                     f"{delta.fresh:.1f}" if delta.fresh else str(delta.fresh),
                     f"{delta.change:+.1%}" if delta.change is not None else "-",
                     status])
    widths = [max(len(str(row[i])) for row in [header] + rows)
              for i in range(len(header))]
    print(_format_row(header, widths), file=out)
    print(_format_row(["-" * w for w in widths], widths), file=out)
    for row in rows:
        print(_format_row(row, widths), file=out)

    for key in new_keys:
        print(f"note: {key} is new (no committed baseline)", file=out)
    for key in missing_keys:
        regressions += 1
        print(f"MISSING: baselined {key} disappeared from the fresh "
              f"manifest", file=out)

    if regressions:
        print(f"\n{regressions} backend(s) regressed beyond the "
              f"{tolerance:.0%} pages/sec tolerance", file=out)
    else:
        print(f"\nno backend regressed beyond the {tolerance:.0%} "
              f"pages/sec tolerance", file=out)
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly built BENCH_manifest.json")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed manifest to compare against")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="relative pages/sec regression that fails the "
                             f"gate (default {DEFAULT_TOLERANCE})")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0")
    args = parser.parse_args(argv)

    if not args.fresh.exists():
        print(f"fresh manifest {args.fresh} missing; nothing to compare")
        return 0
    if not args.baseline.exists():
        print(f"no committed baseline at {args.baseline}; nothing to compare")
        return 0

    regressions = compare(load_manifest(args.fresh),
                          load_manifest(args.baseline), args.tolerance)
    if regressions and not args.warn_only:
        print(f"perf gate FAILED ({regressions} backend(s) beyond the "
              f"{args.tolerance:.0%} tolerance)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
