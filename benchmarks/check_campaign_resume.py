#!/usr/bin/env python
"""CI gate: SIGKILL a live campaign, resume it, demand byte-identity.

The probe drives the public CLI end to end, exactly as a user (or the
paper-scale workflow) would:

1. run an uninterrupted **control** campaign to completion;
2. start an identical **victim** campaign with the inter-cell sleep hook
   enabled, poll its journal until at least one cell has committed, then
   ``SIGKILL`` the process mid-flight (no atexit, no finally);
3. ``campaign resume`` the victim directory and assert that

   * every journalled cell was **skipped**, none re-executed,
   * skipped + executed covers the full cell list,
   * the resumed ``matrices.json`` is **byte-identical** to the
     control's,
   * the journal holds each cell key exactly once.

Any violated assertion exits 1 and turns the CI job red.

Usage::

    python benchmarks/check_campaign_resume.py [--scale smoke]
        [--keep-dirs]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: The smoke campaign the gate runs: small enough for CI, big enough
#: that the kill window interrupts real pending work.
CAMPAIGN_FLAGS = ["--domains", "car", "--scenarios", "zipf-skew",
                  "--queries", "2", "--checkpoint-every", "1"]

JOURNAL = "journal.jsonl"
MATRICES = "matrices.json"
SLEEP_ENV = "REPRO_CAMPAIGN_INTERCELL_SLEEP"


def _env(intercell_sleep=None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    env.pop(SLEEP_ENV, None)
    if intercell_sleep is not None:
        env[SLEEP_ENV] = str(intercell_sleep)
    return env


def _cli(verb: str, campdir: Path, scale: str) -> list:
    cmd = [sys.executable, "-m", "repro.cli", "campaign", verb,
           "--dir", str(campdir)]
    if verb == "run":
        cmd += ["--scale", scale, *CAMPAIGN_FLAGS]
    return cmd


def _wait_for_committed_cell(journal: Path, timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.exists():
            data = journal.read_bytes()
            if data.strip() and data.endswith(b"\n"):
                return
        time.sleep(0.1)
    raise SystemExit(f"FAIL: no cell journalled within {timeout:.0f}s")


def _check(condition: bool, label: str) -> None:
    print(("ok   " if condition else "FAIL ") + label)
    if not condition:
        raise SystemExit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="smoke",
                        choices=["smoke", "default", "paper"])
    parser.add_argument("--kill-window", type=float, default=300.0,
                        help="post-commit sleep in the victim run; the "
                             "SIGKILL must land inside it (default 300)")
    parser.add_argument("--keep-dirs", action="store_true",
                        help="keep the campaign directories for inspection")
    args = parser.parse_args(argv)

    workdir = Path(tempfile.mkdtemp(prefix="campaign_resume_gate_"))
    control_dir = workdir / "control"
    victim_dir = workdir / "victim"
    try:
        print(f"campaign resume gate (scale={args.scale}) in {workdir}")

        control = subprocess.run(
            _cli("run", control_dir, args.scale), env=_env(), cwd=str(REPO),
            text=True, capture_output=True, timeout=1800)
        print(control.stdout, end="")
        _check(control.returncode == 0, "control campaign completed")
        control_matrices = (control_dir / MATRICES).read_bytes()
        total = len((control_dir / JOURNAL).read_text().splitlines())
        _check(total >= 2, f"campaign has >= 2 cells (got {total})")

        victim = subprocess.Popen(
            _cli("run", victim_dir, args.scale),
            env=_env(intercell_sleep=args.kill_window), cwd=str(REPO),
            text=True, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        try:
            _wait_for_committed_cell(victim_dir / JOURNAL,
                                     timeout=args.kill_window)
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=60)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()
        _check(victim.returncode == -signal.SIGKILL,
               f"victim died of SIGKILL (returncode {victim.returncode})")
        journalled = len((victim_dir / JOURNAL).read_text().splitlines())
        _check(1 <= journalled < total,
               f"kill landed mid-campaign ({journalled}/{total} cells "
               f"journalled)")
        _check(not (victim_dir / MATRICES).exists(),
               "no matrices were folded before the kill")

        resume = subprocess.run(
            _cli("resume", victim_dir, args.scale), env=_env(),
            cwd=str(REPO), text=True, capture_output=True, timeout=1800)
        print(resume.stdout, end="")
        _check(resume.returncode == 0, "resume completed")
        match = re.search(r"(\d+) skipped \(journalled\), (\d+) executed",
                          resume.stdout)
        _check(match is not None, "resume reported skip/execute counts")
        skipped, executed = int(match.group(1)), int(match.group(2))
        _check(skipped == journalled,
               f"resume skipped every journalled cell ({skipped})")
        _check(skipped + executed == total,
               f"skipped + executed covers all {total} cells")

        victim_matrices = (victim_dir / MATRICES).read_bytes()
        _check(victim_matrices == control_matrices,
               "resumed matrices byte-identical to uninterrupted control")
        keys = [json.loads(line)["key"] for line in
                (victim_dir / JOURNAL).read_text().splitlines()]
        _check(len(keys) == len(set(keys)) == total,
               "journal holds each cell exactly once")
        print("campaign resume gate: all probes passed")
        return 0
    finally:
        if args.keep_dirs:
            print(f"keeping {workdir}")
        else:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
