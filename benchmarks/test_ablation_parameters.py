"""Ablation bench: sensitivity to the L2Q hyper-parameters.

The paper fixes ``alpha = 0.15``, ``lambda = 10`` and cross-validates the
seed-recall ``r0`` (Sect. VI-A).  This bench sweeps each parameter around
its default on a small corpus and reports the resulting F-score of L2QBAL,
documenting the design choices called out in DESIGN.md.  Runs at smoke-like
scale regardless of ``REPRO_BENCH_SCALE`` to stay cheap.
"""

from benchmarks.helpers import save_result

from repro.core.config import L2QConfig
from repro.corpus.synthetic import build_corpus
from repro.eval.runner import ExperimentRunner

SWEEPS = {
    "alpha": (0.05, 0.15, 0.5),
    "adaptation_lambda": (1.0, 10.0, 50.0),
    "seed_recall_r0": (0.1, 0.3, 0.7),
}


def _evaluate(config: L2QConfig) -> float:
    corpus = build_corpus("researcher", num_entities=20, pages_per_entity=10, seed=7)
    runner = ExperimentRunner(corpus, config=config, base_seed=41)
    series = runner.evaluate_methods(
        ["L2QBAL"], num_queries_list=(3,), num_splits=1,
        max_test_entities=2, aspects=corpus.aspects[:2])
    return series["L2QBAL"].f_score[3]


def _run_sweeps():
    rows = {}
    for parameter, values in SWEEPS.items():
        rows[parameter] = {}
        for value in values:
            config = L2QConfig(**{parameter: value})
            rows[parameter][value] = _evaluate(config)
    return rows


def test_ablation_hyperparameters(benchmark, results_dir):
    rows = benchmark.pedantic(_run_sweeps, rounds=1, iterations=1)

    lines = ["Parameter sensitivity of L2QBAL (normalised F-score, 3 queries)"]
    for parameter, values in rows.items():
        for value, f_score in values.items():
            lines.append(f"  {parameter:20s} = {value:<6g} -> F = {f_score:.3f}")
    save_result(results_dir, "ablation_parameters", "\n".join(lines))

    for parameter, values in rows.items():
        for value, f_score in values.items():
            assert 0.0 <= f_score <= 1.0
        # The default setting should be competitive within each sweep: no
        # more than 15 points of F-score behind the best value swept.
        default_value = {"alpha": 0.15, "adaptation_lambda": 10.0,
                         "seed_recall_r0": 0.3}[parameter]
        assert values[default_value] >= max(values.values()) - 0.15
