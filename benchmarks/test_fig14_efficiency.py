"""Regenerates Fig. 14: average time cost per query (selection vs fetch).

Paper reference values: 1.4-2.4 seconds of selection time per query against
~8-18 seconds of fetch time — i.e. selection is a minor overhead dominated
by the (I/O-bound) fetch.  Our graphs are smaller, so absolute selection
times are lower, but the claim to reproduce is the *relationship*:
per-query selection time is small compared to the simulated fetch time.
"""

from benchmarks.helpers import save_result

from repro.eval.experiments import run_fig14
from repro.eval.reporting import format_fig14


def test_fig14_selection_vs_fetch_time(benchmark, scale, results_dir):
    result = benchmark.pedantic(run_fig14, args=(scale,), rounds=1, iterations=1)
    save_result(results_dir, "fig14_efficiency", format_fig14(result))

    for domain, report in result.reports_by_domain.items():
        assert set(report.selection_seconds) == {"L2QP", "L2QR", "L2QBAL"}
        for method, seconds in report.selection_seconds.items():
            assert seconds >= 0.0
            # Selection must stay a minor overhead relative to fetch.
            assert seconds < report.fetch_seconds
        assert report.fetch_seconds > 0.0
        for count in report.queries_measured.values():
            assert count >= 1
        # Cold-cache protocol: every method reports its own hit rate, and
        # it reflects only the method's own query repetition (never the
        # caches of an earlier-measured method).
        assert set(report.cache_hit_rates) == set(report.selection_seconds)
        for rate in report.cache_hit_rates.values():
            assert 0.0 <= rate <= 1.0
