"""Robustness benchmark: selectors × scenarios F-score matrix.

Sweeps every registered scenario against the clean baseline at the scale
selected via ``REPRO_BENCH_SCALE`` and writes the machine-readable matrix to
``benchmarks/results/BENCH_scenarios.json`` — the same artifact the CLI's
``repro scenarios run`` emits, so CI and local runs are diffable.

Run with ``python -m pytest benchmarks/test_scenarios.py -q``.
"""

from __future__ import annotations

import json

from repro.eval.scenario_sweep import ScenarioSweep
from repro.scenarios import scenario_names


def test_scenario_robustness_matrix(scale, results_dir):
    sweep = ScenarioSweep(scale=scale)
    result = sweep.run()

    path = results_dir / "BENCH_scenarios.json"
    result.write(path)
    print(f"\n===== BENCH_scenarios =====\n{result.to_json()}\n")

    report = json.loads(path.read_text(encoding="utf-8"))
    # The matrix must cover every registered scenario (>= 4 by acceptance)
    # in every swept domain, with a full set of per-method deltas.
    assert len(report["scenarios"]) == len(scenario_names()) >= 4
    for domain, block in report["domains"].items():
        clean_digest = block["clean"]["corpus_digest"]
        assert set(block["scenarios"]) == set(report["scenarios"])
        for name, cell in block["scenarios"].items():
            assert cell["corpus_digest"] != clean_digest, \
                f"{name} left the {domain} corpus untouched"
            assert set(cell["f_delta"]) == set(report["methods"])
