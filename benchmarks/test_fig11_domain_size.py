"""Regenerates Fig. 11: effect of domain size on the full approaches.

Paper claims to reproduce (in shape): using more domain entities improves
L2QP's precision and L2QR's recall, with the largest jump already happening
between 0% and a small fraction of the domain.
"""

from benchmarks.helpers import save_result

from repro.eval.experiments import run_fig11
from repro.eval.reporting import format_fig11


def test_fig11_effect_of_domain_size(benchmark, scale, results_dir):
    fractions = (0.0, 0.25, 1.0) if scale.name != "paper" else (0.0, 0.05, 0.10, 0.25, 1.0)
    result = benchmark.pedantic(run_fig11, args=(scale,),
                                kwargs={"fractions": fractions},
                                rounds=1, iterations=1)
    save_result(results_dir, "fig11_domain_size", format_fig11(result))

    for domain in result.precision_by_domain:
        precision = result.precision_by_domain[domain]
        recall = result.recall_by_domain[domain]
        for value in list(precision.values()) + list(recall.values()):
            assert 0.0 <= value <= 1.0

    if scale.name == "smoke":
        return

    # Averaged over the two domains, the full domain should not be worse than
    # no domain data at all (the paper's main point).
    def mean_over_domains(values_by_domain, fraction):
        values = [values_by_domain[d][fraction] for d in values_by_domain]
        return sum(values) / len(values)

    assert mean_over_domains(result.precision_by_domain, 1.0) >= \
        mean_over_domains(result.precision_by_domain, 0.0) - 0.03
    assert mean_over_domains(result.recall_by_domain, 1.0) >= \
        mean_over_domains(result.recall_by_domain, 0.0) - 0.03
