"""Ablation bench: sensitivity of L2Q to the underlying retrieval model.

The paper's offline search engine is a Dirichlet-smoothed language model;
this bench swaps in BM25 and checks that the L2Q pipeline still works and
stays in a similar effectiveness band, i.e. the contribution is not an
artifact of one ranker.  Runs at a small scale regardless of
``REPRO_BENCH_SCALE``.
"""

from benchmarks.helpers import save_result

from repro.core.config import L2QConfig
from repro.corpus.synthetic import build_corpus
from repro.eval.runner import ExperimentRunner


def _evaluate(ranker: str) -> dict:
    corpus = build_corpus("researcher", num_entities=20, pages_per_entity=10, seed=7)
    config = L2QConfig(ranker=ranker)
    runner = ExperimentRunner(corpus, config=config, base_seed=43)
    series = runner.evaluate_methods(
        ["L2QBAL", "MQ"], num_queries_list=(3,), num_splits=1,
        max_test_entities=2, aspects=corpus.aspects[:2])
    return {method: s.f_score[3] for method, s in series.items()}


def _run_both():
    return {ranker: _evaluate(ranker) for ranker in ("dirichlet", "bm25")}


def test_ablation_retrieval_model(benchmark, results_dir):
    results = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    lines = ["Ranker ablation (normalised F-score, 3 queries)"]
    for ranker, scores in results.items():
        for method, f_score in scores.items():
            lines.append(f"  {ranker:10s} {method:7s} F = {f_score:.3f}")
    save_result(results_dir, "ablation_ranker", "\n".join(lines))

    for ranker, scores in results.items():
        for f_score in scores.values():
            assert 0.0 <= f_score <= 1.0
    # The pipeline should remain functional and broadly comparable under BM25.
    assert abs(results["dirichlet"]["L2QBAL"] - results["bm25"]["L2QBAL"]) <= 0.35
