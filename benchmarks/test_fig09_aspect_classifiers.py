"""Regenerates Fig. 9: tested entity aspects and aspect-classifier accuracy.

Paper reference values: paragraph frequencies between 2K and 107K and
classifier accuracies between 0.85 and 0.99 across the 7 aspects of each
domain.  Our corpus is smaller, so frequencies are scaled down, but the
accuracy band and the relative frequency ordering (RESEARCH / DRIVING are
the most frequent aspects) should reproduce.
"""

from benchmarks.helpers import save_result

from repro.eval.experiments import run_fig09
from repro.eval.reporting import format_fig09


def test_fig09_aspect_classifiers(benchmark, scale, results_dir):
    result = benchmark.pedantic(run_fig09, args=(scale,), rounds=1, iterations=1)
    save_result(results_dir, "fig09_aspect_classifiers", format_fig09(result))

    for domain, rows in result.rows_by_domain.items():
        assert len(rows) == 7
        # Accuracy band of the paper's Fig. 9 (0.85-0.99); allow a little slack.
        assert result.mean_accuracy(domain) >= 0.85
        for row in rows:
            assert row.paragraph_frequency > 0

    # RESEARCH and DRIVING are the dominant aspects in their domains.
    researcher_rows = {r.aspect: r for r in result.rows_by_domain["researcher"]}
    car_rows = {r.aspect: r for r in result.rows_by_domain["car"]}
    assert researcher_rows["RESEARCH"].paragraph_frequency == max(
        r.paragraph_frequency for r in researcher_rows.values())
    assert car_rows["DRIVING"].paragraph_frequency == max(
        r.paragraph_frequency for r in car_rows.values())
