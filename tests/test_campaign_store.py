"""Tests for the journaled campaign store (crash-safety + replay)."""

import json

import pytest

from repro.campaign import CampaignSpec, CampaignStore, compile_cells
from repro.eval.experiments import ExperimentScale
from repro.exec.specs import SweepCellResult

TINY_SCALE = ExperimentScale(
    name="tiny",
    num_entities={"researcher": 12, "car": 10},
    pages_per_entity=8,
    num_splits=1,
    max_test_entities=2,
    max_aspects=2,
    num_queries_list=(2,),
    corpus_seed=11,
)


def tiny_spec(**overrides):
    base = dict(name="unit", scale=TINY_SCALE, domains=("car",),
                scenarios=("zipf-skew",), methods=("MQ",), seeds=(11,),
                num_queries=2)
    base.update(overrides)
    return CampaignSpec(**base)


def fake_result(cell):
    """A synthetic but shape-correct result; store tests never harvest."""
    return SweepCellResult(
        domain=cell.domain,
        scenario=cell.scenario,
        corpus_digest=f"digest-{cell.key}",
        metrics={"MQ": {"f_score": 0.5}},
        absolute_metrics={"MQ": {"f_score": 0.25}},
        duplicate_waste={"MQ": 0.0},
        fetch={"pages_fetched": 3},
    )


@pytest.fixture()
def store(tmp_path):
    store = CampaignStore(tmp_path / "camp")
    store.initialise(tiny_spec())
    return store


@pytest.fixture()
def cells():
    return compile_cells(tiny_spec())


class TestSpecBinding:
    def test_initialise_is_idempotent_for_same_spec(self, store):
        assert store.initialise(tiny_spec()) == tiny_spec()

    def test_initialise_refuses_different_spec(self, store):
        with pytest.raises(ValueError, match="already bound"):
            store.initialise(tiny_spec(seeds=(99,)))

    def test_load_spec_requires_binding(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CampaignStore(tmp_path / "empty").load_spec()


class TestRecordReplay:
    def test_record_then_replay_round_trips(self, store, cells):
        for cell in cells:
            store.record(cell, fake_result(cell))
        replay = store.replay()
        assert set(replay.completed) == {c.key for c in cells}
        assert replay.entries == len(cells)
        assert replay.duplicates == 0
        assert replay.warnings == []
        loaded = store.read_result(cells[0].key)
        assert loaded == fake_result(cells[0])

    def test_artifact_commits_before_journal_line(self, store, cells):
        cell = cells[0]
        store.record(cell, fake_result(cell))
        entry = json.loads(store.journal_path.read_text().splitlines()[0])
        assert (store.root / entry["artifact"]).exists()
        assert entry["key"] == cell.key

    def test_empty_directory_replays_empty(self, store):
        replay = store.replay()
        assert replay.completed == {}
        assert replay.warnings == []

    def test_orphan_artifact_without_journal_is_ignored(self, store, cells):
        # The crash window between artifact rename and journal append.
        cell = cells[0]
        store.record(cell, fake_result(cell))
        store.journal_path.unlink()
        replay = store.replay()
        assert replay.completed == {}


class TestCorruptionTolerance:
    def test_torn_last_line_reruns_only_that_cell(self, store, cells):
        for cell in cells:
            store.record(cell, fake_result(cell))
        raw = store.journal_path.read_bytes()
        torn = raw[:-(len(raw.splitlines()[-1]) // 2) - 1]
        store.journal_path.write_bytes(torn)
        replay = store.replay()
        assert set(replay.completed) == {c.key for c in cells[:-1]}
        assert any("truncated" in w for w in replay.warnings)

    def test_duplicate_entries_are_idempotent(self, store, cells):
        cell = cells[0]
        store.record(cell, fake_result(cell))
        store.record(cell, fake_result(cell))
        replay = store.replay()
        assert set(replay.completed) == {cell.key}
        assert replay.duplicates == 1
        assert replay.warnings == []

    def test_missing_artifact_warns_loudly_and_reruns(self, store, cells):
        cell = cells[0]
        store.record(cell, fake_result(cell))
        store.artifact_path(cell.key).unlink()
        replay = store.replay()
        assert replay.completed == {}
        assert any(cell.key in w and "re-run" in w for w in replay.warnings)

    def test_unparseable_artifact_treated_as_missing(self, store, cells):
        cell = cells[0]
        store.record(cell, fake_result(cell))
        store.artifact_path(cell.key).write_text("{not json", encoding="utf-8")
        replay = store.replay()
        assert replay.completed == {}
        assert len(replay.warnings) == 1

    def test_corrupt_middle_line_skips_only_itself(self, store, cells):
        for cell in cells:
            store.record(cell, fake_result(cell))
        lines = store.journal_path.read_text().splitlines()
        lines.insert(1, "}}garbage{{")
        store.journal_path.write_text("\n".join(lines) + "\n",
                                      encoding="utf-8")
        replay = store.replay()
        assert set(replay.completed) == {c.key for c in cells}
        assert any("corrupt" in w for w in replay.warnings)

    def test_foreign_event_lines_are_ignored(self, store, cells):
        cell = cells[0]
        store.record(cell, fake_result(cell))
        with open(store.journal_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"event": "comment", "text": "hi"}) + "\n")
        replay = store.replay()
        assert set(replay.completed) == {cell.key}
        assert any("not a cell event" in w for w in replay.warnings)
