"""Tests for the synthetic corpus generator."""

import pytest

from repro.corpus.synthetic import CorpusConfig, CorpusGenerator, build_corpus


class TestCorpusConfigValidation:
    def test_defaults_are_valid(self):
        CorpusConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("num_entities", 0),
        ("pages_per_entity", 0),
        ("paragraphs_per_page", (0, 3)),
        ("paragraphs_per_page", (4, 2)),
        ("sentences_per_paragraph", (2, 1)),
        ("aspects_per_page", (0, 1)),
        ("background_probability", 1.0),
        ("background_probability", -0.1),
        ("min_pages_per_aspect", -1),
        ("hub_page_fraction", 1.0),
        ("aspect_weight_damping", 0.0),
        ("background_signature_words_mean", -1.0),
    ])
    def test_invalid_values_raise(self, field, value):
        config = CorpusConfig(**{field: value})
        with pytest.raises(ValueError):
            config.validate()


class TestGeneration:
    def test_entity_and_page_counts(self, researcher_corpus):
        assert researcher_corpus.num_entities() == 16
        assert researcher_corpus.num_pages() == 16 * 10

    def test_every_page_belongs_to_its_entity(self, researcher_corpus):
        for page in researcher_corpus.iter_pages():
            assert page.page_id.startswith(page.entity_id)
            assert page.entity_id in researcher_corpus.entities

    def test_deterministic_given_seed(self):
        a = build_corpus("researcher", num_entities=4, pages_per_entity=4, seed=5)
        b = build_corpus("researcher", num_entities=4, pages_per_entity=4, seed=5)
        assert sorted(a.pages) == sorted(b.pages)
        for page_id in a.pages:
            assert a.pages[page_id].tokens == b.pages[page_id].tokens

    def test_different_seed_changes_content(self):
        a = build_corpus("researcher", num_entities=4, pages_per_entity=4, seed=5)
        b = build_corpus("researcher", num_entities=4, pages_per_entity=4, seed=6)
        different = any(a.pages[p].tokens != b.pages[p].tokens
                        for p in a.pages if p in b.pages)
        assert different

    def test_entity_names_unique(self, researcher_corpus):
        names = [e.name for e in researcher_corpus.entities.values()]
        assert len(names) == len(set(names))

    def test_seed_query_includes_name(self, researcher_corpus):
        for entity in researcher_corpus.entities.values():
            for token in entity.name_tokens:
                assert token in entity.seed_query

    def test_researcher_seed_query_includes_institute(self, researcher_corpus):
        for entity in researcher_corpus.entities.values():
            institute = entity.attribute_values("institute")
            assert institute and institute[0] in entity.seed_query

    def test_entities_have_per_type_attributes(self, researcher_corpus):
        spec = researcher_corpus.domain_spec
        for entity in researcher_corpus.entities.values():
            for pool in spec.type_pools:
                if pool.per_entity > 0:
                    assert len(entity.attribute_values(pool.name)) == pool.per_entity

    def test_entity_variation_across_peers(self, researcher_corpus):
        # Peer entities rarely share the same topic set (the paper's Fig. 3).
        topic_sets = [frozenset(e.attribute_values("topic"))
                      for e in researcher_corpus.entities.values()]
        assert len(set(topic_sets)) > len(topic_sets) // 2


class TestAspectStructure:
    def test_every_aspect_covered_per_entity(self, researcher_corpus):
        minimum = 3  # min_pages_per_aspect default
        for entity_id in researcher_corpus.entity_ids():
            for aspect in researcher_corpus.aspects:
                relevant = researcher_corpus.relevant_pages(entity_id, aspect)
                assert len(relevant) >= min(minimum, len(researcher_corpus.pages_of(entity_id)))

    def test_relevant_pages_are_a_minority_for_rare_aspects(self, researcher_corpus):
        fractions = []
        for entity_id in researcher_corpus.entity_ids():
            pages = researcher_corpus.pages_of(entity_id)
            relevant = researcher_corpus.relevant_pages(entity_id, "CONTACT")
            fractions.append(len(relevant) / len(pages))
        assert sum(fractions) / len(fractions) < 0.6

    def test_aspect_paragraphs_contain_entity_attributes(self, researcher_corpus):
        # RESEARCH paragraphs should mention the entity's own topics often.
        hits = 0
        total = 0
        for entity_id in researcher_corpus.entity_ids():
            entity = researcher_corpus.get_entity(entity_id)
            topics = set(entity.attribute_values("topic"))
            for page in researcher_corpus.pages_of(entity_id):
                for para in page.paragraphs:
                    if para.aspect == "RESEARCH":
                        total += 1
                        if topics & set(para.tokens):
                            hits += 1
        assert total > 0
        assert hits / total > 0.5

    def test_hub_pages_have_no_aspect(self):
        corpus = build_corpus("researcher", num_entities=6, pages_per_entity=20,
                              seed=2, hub_page_fraction=0.5, min_pages_per_aspect=0)
        hub_pages = [p for p in corpus.iter_pages() if not p.aspects()]
        assert hub_pages

    def test_car_domain_generation(self, car_corpus):
        assert car_corpus.domain == "car"
        assert set(car_corpus.aspects) == {
            "VERDICT", "INTERIOR", "EXTERIOR", "PRICE", "RELIABILITY", "SAFETY", "DRIVING"}
        assert car_corpus.num_pages() == 12 * 10
