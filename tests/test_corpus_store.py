"""The shared corpus store: publish once, attach everywhere, bit for bit.

Covers the full lifecycle (publish → attach → release → fallback), the
zero-copy attached index's equivalence to a freshly built one, streaming
generation, pickling semantics and both transport modes (shm + mmap).
"""

import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.aspects.classifier import AspectClassifierSuite
from repro.corpus.synthetic import (
    CorpusConfig,
    CorpusGenerator,
    build_corpus,
)
from repro.exec.specs import CorpusSpec
from repro.search.engine import SearchEngine
from repro.search.index import AttachedInvertedIndex, InvertedIndex
from repro.store import (
    MODE_MMAP,
    MODE_SHM,
    CorpusStoreWriter,
    StoreError,
    StoreNotFoundError,
    attach,
    attach_corpus,
    publish_generated,
    publish_store,
    release,
    resolve_mode,
)

DOMAIN = "researcher"
NUM_ENTITIES = 6
PAGES_PER_ENTITY = 4
SEED = 3


def _config() -> CorpusConfig:
    return CorpusConfig(domain=DOMAIN, num_entities=NUM_ENTITIES,
                        pages_per_entity=PAGES_PER_ENTITY, seed=SEED)


@pytest.fixture(scope="module")
def live_corpus():
    return build_corpus(domain=DOMAIN, num_entities=NUM_ENTITIES,
                        pages_per_entity=PAGES_PER_ENTITY, seed=SEED)


@pytest.fixture()
def handle(live_corpus):
    published = publish_store(_config(), live_corpus.entities,
                              live_corpus.iter_pages(),
                              expected_digest=live_corpus.content_digest())
    yield published
    release(published)


def _built_index(corpus) -> InvertedIndex:
    index = InvertedIndex()
    for page in sorted(corpus.iter_pages(), key=lambda p: p.page_id):
        index.add_document(page.page_id, page.tokens)
    return index


class TestStreamingGeneration:
    def test_generate_pages_matches_generate_base(self):
        generator = CorpusGenerator(_config())
        base = generator.generate_base()
        entities = generator.generate_entities()
        assert entities == dict(base.entities)
        streamed = list(generator.generate_pages(entities))
        assert [p.page_id for p in streamed] == sorted(base.pages)
        for page in streamed:
            reference = base.pages[page.page_id]
            assert page.entity_id == reference.entity_id
            assert page.paragraphs == reference.paragraphs

    def test_streamed_page_ids_globally_sorted(self):
        generator = CorpusGenerator(_config())
        ids = [p.page_id for p in
               generator.generate_pages(generator.generate_entities())]
        assert ids == sorted(ids)


class TestPublishAttach:
    def test_published_digest_matches_live_corpus(self, live_corpus, handle):
        assert handle.digest == live_corpus.content_digest()

    def test_attached_corpus_is_content_identical(self, live_corpus, handle):
        attached = attach_corpus(handle)
        assert attached.content_digest() == live_corpus.content_digest()
        assert set(attached.entities) == set(live_corpus.entities)
        assert sorted(attached.pages) == sorted(live_corpus.pages)
        assert attached.store_digest == handle.digest

    def test_publish_generated_equals_live_generation(self, live_corpus):
        streamed = publish_generated(_config())
        try:
            assert streamed.digest == live_corpus.content_digest()
            assert attach_corpus(streamed).content_digest() == \
                live_corpus.content_digest()
        finally:
            release(streamed)

    def test_digest_mismatch_fails_and_unpublishes(self, live_corpus):
        from repro.store import published_handles

        before = set(published_handles())
        with pytest.raises(StoreError, match="does not match"):
            publish_store(_config(), live_corpus.entities,
                          live_corpus.iter_pages(),
                          expected_digest="0" * 64)
        assert set(published_handles()) == before

    def test_double_attach_returns_cached_attachment(self, handle):
        assert attach(handle) is attach(handle)

    def test_subset_preserves_content(self, live_corpus, handle):
        kept = sorted(live_corpus.entities)[:2]
        assert attach_corpus(handle).subset(kept).content_digest() == \
            live_corpus.subset(kept).content_digest()

    def test_mmap_mode_round_trips(self, live_corpus):
        mmap_handle = publish_store(_config(), live_corpus.entities,
                                    live_corpus.iter_pages(), mode=MODE_MMAP,
                                    expected_digest=live_corpus.content_digest())
        try:
            assert mmap_handle.mode == MODE_MMAP
            assert attach_corpus(mmap_handle).content_digest() == \
                live_corpus.content_digest()
        finally:
            release(mmap_handle)


class TestAttachedIndex:
    def test_attached_index_equals_built_index(self, live_corpus, handle):
        built = _built_index(live_corpus)
        attached = attach(handle).index()
        assert attached.document_ids() == built.document_ids()
        assert attached.vocabulary() == built.vocabulary()
        assert attached.total_tokens == built.total_tokens
        assert attached.average_document_length == built.average_document_length
        for doc_id in built.document_ids():
            assert attached.document_length(doc_id) == \
                built.document_length(doc_id)
        for term in built.vocabulary():
            assert attached.postings(term) == built.postings(term)
            assert attached.collection_frequency(term) == \
                built.collection_frequency(term)
            assert attached.collection_probability(term) == \
                built.collection_probability(term)

    def test_attached_matrix_equals_built_matrix(self, live_corpus, handle):
        built = _built_index(live_corpus).term_document_matrix()
        attached = attach(handle).index().term_document_matrix()
        assert attached.doc_ids == built.doc_ids
        assert attached.terms == built.terms
        assert (attached.matrix != built.matrix).nnz == 0
        assert (attached.doc_lengths == built.doc_lengths).all()
        assert (attached.collection_frequencies ==
                built.collection_frequencies).all()

    def test_attached_index_is_read_only(self, handle):
        index = attach(handle).index()
        assert isinstance(index, AttachedInvertedIndex)
        with pytest.raises(TypeError, match="read-only"):
            index.add_document("zzz_new_page", ["some", "tokens"])

    def test_engine_adopts_index_without_building(self, handle):
        engine = SearchEngine(attach_corpus(handle))
        engine.shared_index()
        assert engine.index_builds == 0
        assert engine.index_attaches == 1


class TestLifecycle:
    def test_release_prevents_new_attach(self, live_corpus):
        fresh = publish_store(_config(), live_corpus.entities,
                              live_corpus.iter_pages())
        release(fresh)
        with pytest.raises(StoreNotFoundError):
            attach(fresh)

    def test_release_is_idempotent(self, live_corpus):
        fresh = publish_store(_config(), live_corpus.entities,
                              live_corpus.iter_pages())
        release(fresh)
        release(fresh)  # must not raise

    def test_spec_falls_back_to_rebuild_after_release(self, live_corpus):
        fresh = publish_store(_config(), live_corpus.entities,
                              live_corpus.iter_pages())
        release(fresh)
        spec = CorpusSpec(domain=DOMAIN, num_entities=NUM_ENTITIES,
                          pages_per_entity=PAGES_PER_ENTITY, seed=SEED,
                          store_handle=fresh)
        rebuilt = spec.build()
        assert rebuilt.content_digest() == live_corpus.content_digest()
        assert getattr(rebuilt, "store_handle", None) is None

    def test_spec_with_handle_attaches(self, live_corpus, handle):
        spec = CorpusSpec(domain=DOMAIN, num_entities=NUM_ENTITIES,
                          pages_per_entity=PAGES_PER_ENTITY, seed=SEED,
                          store_handle=handle)
        corpus = spec.build()
        assert corpus.store_handle == handle
        assert corpus.store_digest == live_corpus.content_digest()

    def test_writer_enforces_sorted_page_order(self, live_corpus):
        pages = sorted(live_corpus.iter_pages(), key=lambda p: p.page_id)
        writer = CorpusStoreWriter(_config(), live_corpus.entities)
        writer.add_page(pages[1])
        with pytest.raises(StoreError, match="sorted page-id order"):
            writer.add_page(pages[0])

    def test_resolve_mode_rejects_unknown_modes(self):
        with pytest.raises(ValueError, match="unknown corpus-store mode"):
            resolve_mode("carrier-pigeon")
        assert resolve_mode(MODE_SHM) in (MODE_SHM,)


class TestPickling:
    def test_store_backed_corpus_pickles_by_handle(self, live_corpus, handle):
        corpus = attach_corpus(handle)
        clone = pickle.loads(pickle.dumps(corpus))
        # Within one process the round-trip lands on the cached attachment.
        assert clone is corpus

    def test_pickled_engine_reattaches(self, handle):
        engine = SearchEngine(attach_corpus(handle))
        engine.shared_index()
        clone = pickle.loads(pickle.dumps(engine))
        clone.shared_index()
        assert clone.index_builds == 0
        assert clone.index_attaches == 1


class TestClassifierBlock:
    @pytest.fixture(scope="class")
    def trained_suite(self, live_corpus):
        return AspectClassifierSuite.train_on_corpus(live_corpus, seed=3)

    @pytest.fixture()
    def classifier_handle(self, live_corpus, trained_suite):
        writer = CorpusStoreWriter(_config(), live_corpus.entities)
        writer.add_pages(live_corpus.iter_pages())
        writer.add_classifier_suite("42", trained_suite)
        published = writer.publish()
        yield published
        release(published)

    def test_store_without_block_has_no_keys(self, handle):
        attachment = attach(handle)
        assert attachment.classifier_keys() == []
        with pytest.raises(StoreError):
            attachment.classifier_suite("42")

    def test_round_trip_preserves_predictions(self, live_corpus,
                                              trained_suite, classifier_handle):
        attachment = attach(classifier_handle)
        assert attachment.classifier_keys() == ["42"]
        attached = attachment.classifier_suite("42")
        for page in list(live_corpus.iter_pages())[:8]:
            for aspect in live_corpus.aspects:
                assert attached.page_assessment(page, aspect) == \
                    trained_suite.page_assessment(page, aspect)
        report = attached.accuracy_report()
        assert report == trained_suite.accuracy_report()

    def test_attached_suite_is_cached_and_zero_copy(self, live_corpus,
                                                    classifier_handle):
        attachment = attach(classifier_handle)
        attached = attachment.classifier_suite("42")
        assert attachment.classifier_suite("42") is attached
        for aspect in live_corpus.aspects:
            model = attached._models[aspect]
            assert not model._log_prob_table.flags.writeable
            assert not model._prior_array.flags.writeable

    def test_store_backed_corpus_delegates(self, classifier_handle):
        corpus = attach_corpus(classifier_handle)
        suite = corpus.classifier_suite("42")
        assert suite is attach(classifier_handle).classifier_suite("42")
        with pytest.raises(StoreError):
            corpus.classifier_suite("other-key")

    def test_missing_key_raises(self, classifier_handle):
        with pytest.raises(StoreError):
            attach(classifier_handle).classifier_suite("other-key")

    def test_corpus_digest_unchanged_by_classifier_block(self, live_corpus,
                                                         handle,
                                                         classifier_handle):
        assert classifier_handle.digest == handle.digest == \
            live_corpus.content_digest()

    def test_duplicate_key_rejected(self, live_corpus, trained_suite):
        writer = CorpusStoreWriter(_config(), live_corpus.entities)
        writer.add_classifier_suite("42", trained_suite)
        with pytest.raises(StoreError):
            writer.add_classifier_suite("42", trained_suite)

    def test_tampered_arrays_fail_the_digest_check(self, live_corpus,
                                                   trained_suite):
        writer = CorpusStoreWriter(_config(), live_corpus.entities)
        writer.add_pages(live_corpus.iter_pages())
        writer.add_classifier_suite("42", trained_suite)
        published = writer.publish(mode=MODE_MMAP)
        try:
            path = Path(published.name)
            data = bytearray(path.read_bytes())
            _, arrays = trained_suite.to_state()
            needle = np.ascontiguousarray(
                arrays[live_corpus.aspects[0]]["logprob"]).tobytes()[:64]
            position = bytes(data).find(needle)
            assert position != -1
            data[position] ^= 0xFF
            path.write_bytes(bytes(data))
            with pytest.raises(StoreError):
                attach(published).classifier_suite("42")
        finally:
            release(published)
