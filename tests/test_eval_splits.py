"""Tests for the entity-splitting protocol."""

import pytest

from repro.eval.splits import (
    EntitySplit,
    repeated_splits,
    split_entities,
    subsample_entities,
)


class TestSplitEntities:
    def test_partitions_without_overlap(self, researcher_corpus):
        split = split_entities(researcher_corpus.entity_ids(), seed=3)
        domain = set(split.domain_entities)
        validation = set(split.validation_entities)
        test = set(split.test_entities)
        assert not domain & validation
        assert not domain & test
        assert not validation & test
        assert domain | validation | test == set(researcher_corpus.entity_ids())

    def test_half_for_domain(self):
        split = split_entities([f"e{i}" for i in range(20)], seed=0)
        assert len(split.domain_entities) == 10
        assert len(split.validation_entities) == 5
        assert len(split.test_entities) == 5

    def test_deterministic_given_seed(self):
        ids = [f"e{i}" for i in range(12)]
        assert split_entities(ids, seed=4) == split_entities(ids, seed=4)
        assert split_entities(ids, seed=4) != split_entities(ids, seed=5)

    def test_custom_domain_fraction(self):
        split = split_entities([f"e{i}" for i in range(20)], seed=0, domain_fraction=0.25)
        assert len(split.domain_entities) == 5

    def test_empty_entities_rejected(self):
        with pytest.raises(ValueError):
            split_entities([], seed=0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            split_entities(["a", "b"], seed=0, domain_fraction=1.0)

    def test_overlapping_manual_split_rejected(self):
        with pytest.raises(ValueError):
            EntitySplit(domain_entities=("a",), validation_entities=("a",),
                        test_entities=("b",), seed=0)

    def test_all_target_entities(self):
        split = split_entities([f"e{i}" for i in range(8)], seed=1)
        assert set(split.all_target_entities()) == \
            set(split.validation_entities) | set(split.test_entities)


class TestRepeatedSplits:
    def test_number_of_repeats(self):
        splits = repeated_splits([f"e{i}" for i in range(10)], num_repeats=3, base_seed=7)
        assert len(splits) == 3
        assert len({s.seed for s in splits}) == 3

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            repeated_splits(["a", "b"], num_repeats=0)

    def test_splits_differ(self):
        splits = repeated_splits([f"e{i}" for i in range(20)], num_repeats=5, base_seed=0)
        domains = {s.domain_entities for s in splits}
        assert len(domains) > 1


class TestSubsample:
    def test_full_fraction_returns_everything(self):
        ids = [f"e{i}" for i in range(10)]
        assert subsample_entities(ids, 1.0) == sorted(ids)

    def test_zero_fraction_returns_nothing(self):
        assert subsample_entities([f"e{i}" for i in range(10)], 0.0) == []

    def test_small_fraction_returns_at_least_one(self):
        assert len(subsample_entities([f"e{i}" for i in range(10)], 0.01)) == 1

    def test_quarter_fraction(self):
        result = subsample_entities([f"e{i}" for i in range(20)], 0.25, seed=3)
        assert len(result) == 5

    def test_deterministic(self):
        ids = [f"e{i}" for i in range(20)]
        assert subsample_entities(ids, 0.5, seed=9) == subsample_entities(ids, 0.5, seed=9)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            subsample_entities(["a"], 1.5)
