"""Tests for the reinforcement-graph data structure."""

import pytest

from repro.graph.reinforcement import ReinforcementGraphBuilder, VertexIndex


class TestVertexIndex:
    def test_add_idempotent(self):
        index = VertexIndex()
        assert index.add("a") == index.add("a")
        assert len(index) == 1

    def test_round_trip(self):
        index = VertexIndex(["a", "b"])
        assert index.key_of(index.index_of("b")) == "b"

    def test_unknown_key(self):
        assert VertexIndex().index_of("missing") is None

    def test_keys_preserve_insertion_order(self):
        index = VertexIndex(["b", "a", "c"])
        assert index.keys() == ["b", "a", "c"]

    def test_contains(self):
        index = VertexIndex(["x"])
        assert "x" in index
        assert "y" not in index


class TestGraphBuilder:
    def _small_graph(self):
        builder = ReinforcementGraphBuilder()
        builder.connect_page_query("p1", ("q1",), 1.0)
        builder.connect_page_query("p1", ("q2",), 2.0)
        builder.connect_page_query("p2", ("q1",), 1.0)
        builder.connect_query_template(("q1",), ("<t>",), 1.0)
        return builder.build()

    def test_vertex_counts(self):
        graph = self._small_graph()
        assert graph.num_pages == 2
        assert graph.num_queries == 2
        assert graph.num_templates == 1
        assert graph.num_edges == 4

    def test_matrix_shapes(self):
        graph = self._small_graph()
        assert graph.page_query.shape == (2, 2)
        assert graph.query_template.shape == (2, 1)

    def test_neighbor_lookups(self):
        graph = self._small_graph()
        assert dict(graph.page_query_neighbors("p1")) == {("q1",): 1.0, ("q2",): 2.0}
        assert dict(graph.query_page_neighbors(("q1",))) == {"p1": 1.0, "p2": 1.0}
        assert dict(graph.query_template_neighbors(("q1",))) == {("<t>",): 1.0}
        assert dict(graph.template_query_neighbors(("<t>",))) == {("q1",): 1.0}

    def test_neighbors_of_unknown_vertex_empty(self):
        graph = self._small_graph()
        assert graph.page_query_neighbors("ghost") == []
        assert graph.query_page_neighbors(("ghost",)) == []

    def test_zero_weight_edges_ignored(self):
        builder = ReinforcementGraphBuilder()
        builder.add_page("p1")
        builder.add_query(("q1",))
        builder.connect_page_query("p1", ("q1",), 0.0)
        graph = builder.build()
        assert graph.num_edges == 0

    def test_repeated_edges_accumulate_weight(self):
        builder = ReinforcementGraphBuilder()
        builder.connect_page_query("p1", ("q1",), 1.0)
        builder.connect_page_query("p1", ("q1",), 2.0)
        graph = builder.build()
        assert dict(graph.page_query_neighbors("p1"))[("q1",)] == 3.0

    def test_isolated_vertices_allowed(self):
        builder = ReinforcementGraphBuilder()
        builder.add_page("lonely_page")
        builder.add_query(("lonely_query",))
        graph = builder.build()
        assert graph.num_pages == 1
        assert graph.num_queries == 1
        assert graph.num_edges == 0

    def test_empty_graph(self):
        graph = ReinforcementGraphBuilder().build()
        assert graph.num_pages == 0
        assert graph.num_edges == 0
