"""Unit tests for the execution-backend layer (:mod:`repro.exec`)."""

import pytest

from repro.exec.backends import (
    BACKEND_PROCESS,
    BACKEND_SERIAL,
    BACKEND_THREAD,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    _REGISTRY,
    backend_names,
    is_registered,
    make_backend,
    register_backend,
    resolve_backend,
)
from repro.exec.specs import CorpusSpec, _ProcessLocalCache
from repro.scenarios import make_scenario


def _double(value):
    """Module-level so the process backend can pickle it by reference."""
    return value * 2


def _mark_or_poison(payload):
    """Touch a marker file, or raise — the failure-path probe payload."""
    import time
    from pathlib import Path

    directory, name, poison, sleep = payload
    if poison:
        raise RuntimeError("poisoned payload")
    if sleep:
        time.sleep(sleep)
    Path(directory, name).touch()
    return name


def _count_base_generations(payload):
    """Build every spec's base in one worker; return generations performed.

    Clears and re-pins the inherited (forked) base cache so the probe is
    independent of whatever the parent process cached or reserved.
    """
    from repro.corpus import synthetic
    from repro.exec import specs as specs_module

    spec_cycle, capacity, slots = payload
    cache = specs_module._BASE_CACHE
    cache._entries.clear()
    cache.capacity = capacity
    if slots:
        specs_module.reserve_base_slots(slots)
    before = synthetic.base_generation_count()
    for spec in spec_cycle:
        spec.build_base()
    return synthetic.base_generation_count() - before


class TestRegistry:
    def test_builtins_registered(self):
        assert {BACKEND_SERIAL, BACKEND_THREAD, BACKEND_PROCESS} <= set(backend_names())

    def test_make_backend_resolves_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread", workers=3), ThreadBackend)
        assert isinstance(make_backend("process", workers=2), ProcessBackend)

    def test_make_backend_forwards_workers(self):
        assert make_backend("thread", workers=7).workers == 7
        assert make_backend("process", workers=2).workers == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("serial", lambda workers=1: SerialBackend())

    def test_custom_backend_roundtrip(self):
        register_backend("test-custom", lambda workers=1: SerialBackend())
        try:
            assert is_registered("test-custom")
            assert isinstance(make_backend("test-custom"), SerialBackend)
        finally:
            _REGISTRY.factories.pop("test-custom")


class TestResolveBackend:
    def test_none_maps_workers_to_serial_or_thread(self):
        assert isinstance(resolve_backend(None, workers=1), SerialBackend)
        thread = resolve_backend(None, workers=4)
        assert isinstance(thread, ThreadBackend)
        assert thread.workers == 4

    def test_string_resolves_with_workers(self):
        backend = resolve_backend("process", workers=2)
        assert isinstance(backend, ProcessBackend)
        assert backend.workers == 2

    def test_instance_passes_through(self):
        backend = ThreadBackend(2)
        assert resolve_backend(backend, workers=9) is backend

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError, match="backend"):
            resolve_backend(3.14)


class TestMapSemantics:
    @pytest.mark.parametrize("backend", [
        SerialBackend(), ThreadBackend(3), ProcessBackend(2)],
        ids=["serial", "thread", "process"])
    def test_map_preserves_order(self, backend):
        items = list(range(13))
        assert backend.map(_double, items) == [2 * i for i in items]

    @pytest.mark.parametrize("backend", [
        SerialBackend(), ThreadBackend(3), ProcessBackend(2)],
        ids=["serial", "thread", "process"])
    def test_map_empty(self, backend):
        assert backend.map(_double, []) == []

    def test_serial_and_thread_not_distributed(self):
        assert not SerialBackend().distributed
        assert not ThreadBackend(2).distributed

    def test_process_is_distributed(self):
        assert ProcessBackend(2).distributed

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            ThreadBackend(0)
        with pytest.raises(ValueError):
            ProcessBackend(0)

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValueError, match="start method"):
            ProcessBackend(2, start_method="telepathy")


class TestSharding:
    def test_contiguous_shards_cover_all_items(self):
        backend = ProcessBackend(3)
        items = list(range(10))
        shards = backend.shards(items)
        assert len(shards) <= 3
        assert [x for shard in shards for x in shard] == items

    def test_fewer_items_than_workers(self):
        shards = ProcessBackend(8).shards([1, 2])
        assert shards == [[1], [2]]

    def test_no_items_no_shards(self):
        assert ProcessBackend(4).shards([]) == []

    def test_pool_persists_across_map_calls(self):
        backend = ProcessBackend(2)
        try:
            backend.map(_double, [1, 2, 3])
            pool = backend._pool
            assert pool is not None
            backend.map(_double, [4, 5, 6])
            assert backend._pool is pool
        finally:
            backend.close()
        assert backend._pool is None

    def test_close_is_idempotent_and_pool_recreates(self):
        backend = ProcessBackend(2)
        backend.close()
        backend.close()
        assert backend.map(_double, [7]) == [14]
        backend.close()


class TestFailurePropagation:
    """A poisoned payload must surface promptly: the pool is torn down with
    ``cancel_futures=True`` instead of waiting for every doomed sibling."""

    def test_map_tasks_failure_skips_cancelled_siblings(self, tmp_path):
        backend = ProcessBackend(1)
        items = [(str(tmp_path), "poison", True, 0.0)] + \
            [(str(tmp_path), f"sibling_{i}", False, 0.5) for i in range(4)]
        try:
            with pytest.raises(RuntimeError, match="poisoned payload"):
                backend.map_tasks(_mark_or_poison, items)
            # One worker, poison first: every sibling was still queued when
            # the failure hit, so cancellation means none of them ran.
            assert list(tmp_path.iterdir()) == []
            # The dead pool was dropped, not left to poison later calls.
            assert backend._pool is None
            assert backend.map(_double, [21]) == [42]
        finally:
            backend.close()

    def test_map_failure_aborts_without_draining_shards(self, tmp_path):
        backend = ProcessBackend(1)
        # Two shards on one worker: the first poisons, the second (still
        # queued) must be cancelled rather than executed.
        items = [(str(tmp_path), "poison", True, 0.0),
                 (str(tmp_path), "late", False, 0.5)]
        try:
            with pytest.raises(RuntimeError, match="poisoned payload"):
                backend.map(_mark_or_poison, items)
            assert not (tmp_path / "late").exists()
            assert backend._pool is None
        finally:
            backend.close()

    def test_failure_surfaces_promptly(self, tmp_path):
        import time

        backend = ProcessBackend(1)
        items = [(str(tmp_path), "poison", True, 0.0)] + \
            [(str(tmp_path), f"slow_{i}", False, 2.0) for i in range(4)]
        try:
            start = time.monotonic()
            with pytest.raises(RuntimeError):
                backend.map_tasks(_mark_or_poison, items)
            elapsed = time.monotonic() - start
        finally:
            backend.close()
        # A waiting shutdown would drain 4 x 2 s of doomed work; the abort
        # path returns as soon as the first result raises.
        assert elapsed < 4.0


class TestBaseCacheReservation:
    """The dispatch-time ``reserve_base_slots`` bugfix: a worker shard that
    touches more distinct bases than the default cache capacity (4) must not
    thrash into evict-and-regenerate cycles."""

    def _specs(self, count):
        return [CorpusSpec(domain="researcher", num_entities=4,
                           pages_per_entity=2, seed=100 + i)
                for i in range(count)]

    def test_reserved_worker_generates_each_base_once(self):
        specs = self._specs(6)
        backend = ProcessBackend(1)
        try:
            (generated,) = backend.map(
                _count_base_generations, [(tuple(specs * 2), 4, 6)])
        finally:
            backend.close()
        assert generated == 6

    def test_unreserved_worker_thrashes(self):
        # The regression this PR fixes: six bases cycled twice through an
        # unreserved capacity-4 LRU miss on every single access.
        specs = self._specs(6)
        backend = ProcessBackend(1)
        try:
            (generated,) = backend.map(
                _count_base_generations, [(tuple(specs * 2), 4, 0)])
        finally:
            backend.close()
        assert generated == 12

    def test_reserve_grows_both_caches(self):
        from repro.exec.specs import _BASE_CACHE, _CORPUS_CACHE, reserve_base_slots

        base_before = _BASE_CACHE.capacity
        corpus_before = _CORPUS_CACHE.capacity
        target = max(base_before, corpus_before) + 3
        reserve_base_slots(target)
        assert _BASE_CACHE.capacity == target
        assert _CORPUS_CACHE.capacity == target
        reserve_base_slots(1)  # never shrinks
        assert _BASE_CACHE.capacity == target
        assert _CORPUS_CACHE.capacity == target


class TestProcessLocalCache:
    def test_build_once_per_key(self):
        cache = _ProcessLocalCache(capacity=2)
        calls = []
        first = cache.get_or_build("a", lambda: calls.append("a") or object())
        again = cache.get_or_build("a", lambda: calls.append("a") or object())
        assert first is again
        assert calls == ["a"]

    def test_lru_eviction(self):
        cache = _ProcessLocalCache(capacity=1)
        first = cache.get_or_build("a", object)
        cache.get_or_build("b", object)
        rebuilt = cache.get_or_build("a", object)
        assert rebuilt is not first


class TestCorpusSpec:
    def test_clean_build_matches_direct_generation(self):
        from repro.corpus.synthetic import build_corpus

        spec = CorpusSpec(domain="researcher", num_entities=8,
                          pages_per_entity=6, seed=11)
        direct = build_corpus("researcher", num_entities=8,
                              pages_per_entity=6, seed=11)
        assert spec.build().content_digest() == direct.content_digest()

    def test_scenario_build_matches_full_generation(self):
        scenario = make_scenario("near-duplicates")
        spec = CorpusSpec(domain="researcher", num_entities=8,
                          pages_per_entity=6, seed=11, scenario=scenario)
        full = scenario.corpus_for("researcher", num_entities=8,
                                   pages_per_entity=6, seed=11)
        assert spec.build().content_digest() == full.content_digest()

    def test_non_base_sharing_scenario_builds_once(self):
        # The realised-corpus cache bugfix: scenarios with config overrides
        # (shares_base == False) used to bypass caching entirely and
        # regenerate on every build() call.
        from repro.exec.specs import corpus_build_count
        from repro.scenarios import ScenarioSpec

        scenario = ScenarioSpec(name="dense-hubs-test",
                                description="hub-heavy override scenario",
                                config_overrides={"hub_page_fraction": 0.4})
        assert not scenario.shares_base
        spec = CorpusSpec(domain="researcher", num_entities=4,
                          pages_per_entity=3, seed=9119, scenario=scenario)
        before = corpus_build_count()
        first = spec.build()
        assert corpus_build_count() == before + 1
        assert spec.build() is first
        assert corpus_build_count() == before + 1

    def test_clean_build_is_cached_per_spec(self):
        from repro.exec.specs import corpus_build_count

        spec = CorpusSpec(domain="car", num_entities=4, pages_per_entity=3,
                          seed=9120)
        first = spec.build()
        count = corpus_build_count()
        assert spec.build() is first
        assert corpus_build_count() == count

    def test_spec_is_picklable(self):
        import pickle

        spec = CorpusSpec(domain="car", num_entities=6, pages_per_entity=4,
                          seed=3, scenario=make_scenario("zipf-skew"))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
