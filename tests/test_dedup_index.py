"""Tests for the LSH-banded near-duplicate index."""

import pytest

from repro.dedup.index import NearDuplicateIndex
from repro.dedup.minhash import MinHasher
from repro.dedup.shingles import shingle_hashes


@pytest.fixture(scope="module")
def hasher():
    return MinHasher(num_hashes=64, seed=3)


def _sig(hasher, text):
    return hasher.signature(shingle_hashes(tuple(text.split()), 2))


@pytest.fixture()
def index():
    return NearDuplicateIndex(num_bands=32, similarity_threshold=0.5)


PAGE = ("the quick brown fox jumps over the lazy dog near the river bank "
        "every sunny morning before breakfast time")
NEAR_COPY = ("the quick brown fox jumps over the lazy dog near the river bank "
             "every sunny morning before lunch time")
UNRELATED = ("completely different material about database systems and "
             "distributed query processing at large scale")


class TestNearDuplicateIndex:
    def test_add_and_contains(self, index, hasher):
        assert index.add("p1", _sig(hasher, PAGE))
        assert "p1" in index
        assert len(index) == 1

    def test_re_add_is_noop(self, index, hasher):
        index.add("p1", _sig(hasher, PAGE))
        version = index.version
        assert not index.add("p1", _sig(hasher, PAGE))
        assert index.version == version

    def test_near_copy_flagged(self, index, hasher):
        index.add("p1", _sig(hasher, PAGE))
        assert index.is_near_duplicate(_sig(hasher, NEAR_COPY))
        assert index.near_duplicates(_sig(hasher, NEAR_COPY)) == ["p1"]

    def test_unrelated_not_flagged(self, index, hasher):
        index.add("p1", _sig(hasher, PAGE))
        assert not index.is_near_duplicate(_sig(hasher, UNRELATED))
        assert index.max_similarity(_sig(hasher, UNRELATED)) < 0.5

    def test_exact_copy_max_similarity_one(self, index, hasher):
        index.add("p1", _sig(hasher, PAGE))
        assert index.max_similarity(_sig(hasher, PAGE)) == 1.0

    def test_empty_index_similarity_zero(self, index, hasher):
        assert index.max_similarity(_sig(hasher, PAGE)) == 0.0
        assert not index.is_near_duplicate(_sig(hasher, PAGE))

    def test_insertion_order_independent(self, hasher):
        texts = {"a": PAGE, "b": NEAR_COPY, "c": UNRELATED}
        forward = NearDuplicateIndex(num_bands=32, similarity_threshold=0.5)
        backward = NearDuplicateIndex(num_bands=32, similarity_threshold=0.5)
        for page_id in sorted(texts):
            forward.add(page_id, _sig(hasher, texts[page_id]))
        for page_id in sorted(texts, reverse=True):
            backward.add(page_id, _sig(hasher, texts[page_id]))
        probe = _sig(hasher, PAGE)
        assert forward.max_similarity(probe) == backward.max_similarity(probe)
        assert forward.near_duplicates(probe) == backward.near_duplicates(probe)

    def test_version_bumps_on_insert(self, index, hasher):
        assert index.version == 0
        index.add("p1", _sig(hasher, PAGE))
        index.add("p2", _sig(hasher, UNRELATED))
        assert index.version == 2

    def test_signature_length_must_divide_into_bands(self, index):
        with pytest.raises(ValueError):
            index.add("bad", (1, 2, 3))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NearDuplicateIndex(num_bands=0)
        with pytest.raises(ValueError):
            NearDuplicateIndex(similarity_threshold=0.0)
        with pytest.raises(ValueError):
            NearDuplicateIndex(similarity_threshold=1.5)
