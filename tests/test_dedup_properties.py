"""Property tests for the dedup subsystem (ISSUE 4 acceptance).

1. The MinHash index flags pages injected by
   :class:`~repro.scenarios.perturbations.NearDuplicateInjection` at a
   true-positive rate above threshold, with zero false positives on a
   clean corpus (clean pages flagged against earlier clean pages).
2. ``dedup_penalty = 0.0`` reproduces the historical harvest behaviour
   bit-for-bit on every execution backend — the zero-penalty path must not
   fingerprint, index or discount anything.
"""

import pytest

from repro.core.config import L2QConfig
from repro.corpus.synthetic import build_corpus
from repro.dedup import MinHasher, NearDuplicateIndex, shingle_hashes
from repro.eval.runner import ExperimentRunner
from repro.scenarios import make_scenario

from tests.helpers import harvest_signature

#: Fraction of injected near-copies the index must flag (measured ~0.78 on
#: researcher, ~0.81 on car at the default knobs; pinned with margin).
MIN_TRUE_POSITIVE_RATE = 0.7


def _signatures(corpus, config):
    hasher = MinHasher(num_hashes=config.dedup_num_hashes,
                       seed=config.dedup_hash_seed)
    return {
        page.page_id: hasher.signature(
            shingle_hashes(page.tokens, config.dedup_shingle_size))
        for page in corpus.iter_pages()
    }


def _index(config):
    return NearDuplicateIndex(
        num_bands=config.dedup_bands,
        similarity_threshold=config.dedup_similarity_threshold)


class TestInjectedDuplicateDetection:
    @pytest.mark.parametrize("domain", ["researcher", "car"])
    def test_true_positive_rate_above_threshold(self, domain):
        config = L2QConfig()
        corpus = make_scenario("near-duplicates").corpus_for(
            domain, num_entities=20, pages_per_entity=10, seed=7)
        signatures = _signatures(corpus, config)
        index = _index(config)
        injected = [pid for pid in sorted(signatures) if "_dup" in pid]
        assert injected, "scenario injected no duplicates"
        for page_id in sorted(signatures):
            if "_dup" not in page_id:
                index.add(page_id, signatures[page_id])
        flagged = sum(1 for page_id in injected
                      if index.is_near_duplicate(signatures[page_id]))
        assert flagged / len(injected) >= MIN_TRUE_POSITIVE_RATE

    def test_zero_false_positives_on_clean_corpus(self):
        config = L2QConfig()
        corpus = build_corpus("researcher", num_entities=20,
                              pages_per_entity=10, seed=7)
        signatures = _signatures(corpus, config)
        index = _index(config)
        false_positives = []
        for page_id in sorted(signatures):
            if index.is_near_duplicate(signatures[page_id]):
                false_positives.append(page_id)
            index.add(page_id, signatures[page_id])
        assert false_positives == []


class TestZeroPenaltyBackendEquivalence:
    @pytest.fixture(scope="class")
    def dup_corpus(self):
        return make_scenario("near-duplicates").corpus_for(
            "researcher", num_entities=12, pages_per_entity=8, seed=11)

    def _signatures_on(self, corpus, backend, workers):
        config = L2QConfig(dedup_penalty=0.0)
        runner = ExperimentRunner(corpus, config=config, base_seed=5)
        prepared = runner.prepare(runner.default_split(0))
        entities = list(prepared.split.test_entities)[:2]
        jobs = [runner.build_job(prepared, method, entity_id, "RESEARCH", 2)
                for method in ("L2QBAL", "L2QP", "L2QR")
                for entity_id in entities]
        results = runner.harvester_for(prepared).harvest_many(
            jobs, workers=workers, backend=backend)
        return [harvest_signature(r) for r in results]

    def test_zero_penalty_identical_on_all_backends(self, dup_corpus):
        serial = self._signatures_on(dup_corpus, "serial", 1)
        assert serial  # the batch must not be empty
        for backend in ("thread", "process"):
            assert self._signatures_on(dup_corpus, backend, 4) == serial
