"""Tests for the Dirichlet-smoothed query-likelihood language model."""

import math

import pytest

from repro.search.index import InvertedIndex
from repro.search.language_model import DirichletLanguageModel


@pytest.fixture()
def index():
    return InvertedIndex.from_documents({
        "research_page": ["parallel", "hpc", "research", "parallel", "systems"],
        "contact_page": ["email", "office", "phone", "contact"],
        "mixed_page": ["parallel", "office", "visit"],
    })


@pytest.fixture()
def model(index):
    return DirichletLanguageModel(index, mu=10.0)


class TestTermProbability:
    def test_probabilities_form_distribution_over_vocabulary(self, model, index):
        for doc_id in index.document_ids():
            total = sum(model.term_probability(t, doc_id) for t in index.vocabulary())
            assert total == pytest.approx(1.0, rel=1e-9)

    def test_term_present_scores_higher_than_absent(self, model):
        assert model.term_probability("parallel", "research_page") > \
            model.term_probability("parallel", "contact_page")

    def test_unseen_term_gets_small_probability(self, model):
        assert 0 < model.term_probability("banana", "research_page") < 1e-6

    def test_invalid_mu(self, index):
        with pytest.raises(ValueError):
            DirichletLanguageModel(index, mu=0.0)


class TestScoring:
    def test_score_is_sum_of_log_probabilities(self, model):
        score = model.score(["parallel", "hpc"], "research_page")
        expected = (math.log(model.term_probability("parallel", "research_page"))
                    + math.log(model.term_probability("hpc", "research_page")))
        assert score == pytest.approx(expected)

    def test_empty_query_scores_minus_infinity(self, model):
        assert model.score([], "research_page") == float("-inf")


class TestRanking:
    def test_most_relevant_document_first(self, model):
        ranked = model.rank(["parallel", "research"])
        assert ranked[0][0] == "research_page"

    def test_require_match_excludes_non_matching(self, model):
        ranked = model.rank(["email"])
        assert [doc for doc, _ in ranked] == ["contact_page"]

    def test_rank_without_match_requirement_includes_all(self, model, index):
        ranked = model.rank(["email"], require_match=False)
        assert len(ranked) == index.num_documents

    def test_top_k_truncation(self, model):
        ranked = model.rank(["parallel"], top_k=1)
        assert len(ranked) == 1

    def test_scores_descending(self, model):
        ranked = model.rank(["parallel", "office"])
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_empty_query_returns_nothing(self, model):
        assert model.rank([]) == []


class TestRetrievalScores:
    def test_scores_normalised(self, model):
        scores = model.retrieval_scores(["parallel"])
        assert set(scores) == {"research_page", "mixed_page"}
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_unknown_query_returns_empty(self, model):
        assert model.retrieval_scores(["banana"]) == {}
