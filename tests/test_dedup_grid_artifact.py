"""The committed dedup-grid matrix must show the headline improvement.

``benchmarks/results/BENCH_dedup_grid.json`` is the committed evidence for
ISSUE 4's acceptance criteria: on the near-duplicates and hostile-mix
scenarios, turning the dedup penalty on reduces ``duplicate_waste`` while
the L2Q selectors' mean F-score does not degrade.  The artifact is
regenerated (deterministically) by ``benchmarks/test_dedup_benchmark.py``,
which the CI smoke-benchmark job runs at smoke scale with a
``git diff --exit-code`` staleness check; this test pins the relationship
on whatever is committed.
"""

import json
from pathlib import Path

import pytest

ARTIFACT = (Path(__file__).parent.parent / "benchmarks" / "results"
            / "BENCH_dedup_grid.json")
SCENARIOS = ("near-duplicates", "hostile-mix")


@pytest.fixture(scope="module")
def report():
    assert ARTIFACT.exists(), "committed dedup grid artifact missing"
    return json.loads(ARTIFACT.read_text(encoding="utf-8"))


def _cell_means(report, label):
    f_scores, wastes = [], []
    for block in report["domains"].values():
        cell = block["scenarios"][label]
        for method in report["methods"]:
            f_scores.append(cell["metrics"][method]["f_score"])
            wastes.append(cell["duplicate_waste"][method])
    return sum(f_scores) / len(f_scores), sum(wastes) / len(wastes)


class TestCommittedDedupGrid:
    def test_schema_and_grid_shape(self, report):
        assert report["schema"] == "BENCH_scenarios/v3"
        assert report["param_grid"]["param"] == "dedup_penalty"
        assert report["param_grid"]["target"] == "config"
        assert set(report["param_grid"]["scenarios"]) == set(SCENARIOS)
        assert set(report["methods"]) == {"L2QP", "L2QR", "L2QBAL"}

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_penalty_reduces_waste(self, report, scenario):
        values = report["param_grid"]["values"]
        off_label = f"{scenario}@dedup_penalty={values[0]}"
        on_label = f"{scenario}@dedup_penalty={values[-1]}"
        _, waste_off = _cell_means(report, off_label)
        _, waste_on = _cell_means(report, on_label)
        assert waste_on < waste_off

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_penalty_f_delta_non_negative(self, report, scenario):
        values = report["param_grid"]["values"]
        off_label = f"{scenario}@dedup_penalty={values[0]}"
        on_label = f"{scenario}@dedup_penalty={values[-1]}"
        f_off, _ = _cell_means(report, off_label)
        f_on, _ = _cell_means(report, on_label)
        assert f_on - f_off >= 0.0

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_grid_points_share_corpus(self, report, scenario):
        # A config grid varies the learner, never the corpus condition.
        values = report["param_grid"]["values"]
        for block in report["domains"].values():
            digests = {
                block["scenarios"][f"{scenario}@dedup_penalty={v}"]["corpus_digest"]
                for v in values
            }
            assert len(digests) == 1
