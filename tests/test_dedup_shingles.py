"""Tests for w-shingling and its stable hashing."""

import pytest

from repro.dedup.shingles import shingle_hashes


class TestShingleHashes:
    def test_counts_contiguous_windows(self):
        shingles = shingle_hashes(("a", "b", "c", "d"), size=2)
        assert len(shingles) == 3  # ab, bc, cd

    def test_set_semantics_deduplicate_repeats(self):
        assert shingle_hashes(("a", "b", "a", "b"), size=2) == \
            shingle_hashes(("a", "b", "a", "b", "a", "b"), size=2)

    def test_short_sequence_falls_back_to_whole_sequence(self):
        short = shingle_hashes(("only", "two"), size=3)
        assert len(short) == 1
        assert short != shingle_hashes(("other", "pair"), size=3)

    def test_empty_sequence_yields_empty_set(self):
        assert shingle_hashes((), size=3) == frozenset()

    def test_separator_safe(self):
        # Token boundaries must matter: ("ab", "c") != ("a", "bc").
        assert shingle_hashes(("ab", "c"), size=2) != \
            shingle_hashes(("a", "bc"), size=2)

    def test_deterministic_across_calls(self):
        tokens = tuple("the quick brown fox jumps over".split())
        assert shingle_hashes(tokens, 3) == shingle_hashes(tokens, 3)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            shingle_hashes(("a",), size=0)
