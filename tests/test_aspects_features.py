"""Tests for the bag-of-words feature extractor."""

import pytest

from repro.aspects.features import BagOfWordsExtractor


class TestTransform:
    def test_counts_tokens(self):
        extractor = BagOfWordsExtractor(remove_stopwords=False)
        assert extractor.transform(["a", "b", "a"]) == {"a": 2, "b": 1}

    def test_removes_stopwords_by_default(self):
        extractor = BagOfWordsExtractor()
        features = extractor.transform(["the", "parallel", "of", "hpc"])
        assert features == {"parallel": 1, "hpc": 1}

    def test_custom_stopwords(self):
        extractor = BagOfWordsExtractor(stopwords={"parallel"})
        assert "parallel" not in extractor.transform(["parallel", "hpc"])


class TestFitting:
    def test_vocabulary_requires_fit(self):
        with pytest.raises(RuntimeError):
            _ = BagOfWordsExtractor().vocabulary

    def test_min_document_frequency_filters_rare_terms(self):
        extractor = BagOfWordsExtractor(min_document_frequency=2)
        extractor.fit([["rare", "common"], ["common"], ["common", "other"]])
        assert "common" in extractor.vocabulary
        assert "rare" not in extractor.vocabulary

    def test_transform_respects_fitted_vocabulary(self):
        extractor = BagOfWordsExtractor(min_document_frequency=2)
        extractor.fit([["keep", "drop"], ["keep"]])
        assert extractor.transform(["keep", "drop", "unseen"]) == {"keep": 1}

    def test_invalid_min_document_frequency(self):
        with pytest.raises(ValueError):
            BagOfWordsExtractor(min_document_frequency=0)

    def test_transform_many_length(self):
        extractor = BagOfWordsExtractor()
        docs = [["a", "b"], ["c"]]
        assert len(extractor.transform_many(docs)) == 2

    def test_fit_returns_self(self):
        extractor = BagOfWordsExtractor()
        assert extractor.fit([["a"]]) is extractor
